"""Model-checking the Figure 4 protocol (the paper's Section 6 claim)."""

import pytest

from repro.mc import LauberhornProtocolSpec, ModelChecker, ProtocolConfig


def test_correct_protocol_verifies():
    spec = LauberhornProtocolSpec(ProtocolConfig(total_packets=3))
    result = ModelChecker(spec).run()
    assert result.ok, result.summary()
    # "relatively easily": the state space is tiny.
    assert result.states_explored < 10_000


def test_correct_protocol_with_preemption_verifies():
    spec = LauberhornProtocolSpec(
        ProtocolConfig(total_packets=3, preemption=True)
    )
    result = ModelChecker(spec).run()
    assert result.ok, result.summary()


def test_state_space_grows_with_packets():
    sizes = []
    for n in (1, 2, 4):
        result = ModelChecker(
            LauberhornProtocolSpec(ProtocolConfig(total_packets=n))
        ).run()
        assert result.ok
        sizes.append(result.states_explored)
    assert sizes[0] < sizes[1] < sizes[2]


def test_skip_store_bug_caught():
    """If the CPU can move on without writing its response, the NIC's
    fetch-exclusive would ship a stale line — the checker must see it."""
    spec = LauberhornProtocolSpec(
        ProtocolConfig(total_packets=2, bug="skip_store")
    )
    result = ModelChecker(spec).run()
    assert not result.ok
    assert result.violation.kind == "invariant"
    assert result.violation.name == "NoStaleResponseExtraction"
    assert "cpu_skip_store" in result.violation.trace


def test_tryagain_unpark_bug_caught():
    """If Tryagain answers the fill but forgets to unpark it, the same
    load could be answered twice / the state machine desyncs."""
    spec = LauberhornProtocolSpec(
        ProtocolConfig(total_packets=2, bug="tryagain_keeps_parked")
    )
    result = ModelChecker(spec).run()
    assert not result.ok
    assert result.violation.name in (
        "ParkedLineAtHome", "WaitingImpliesParked", "RequestConservation",
    )


def test_preemption_does_not_lose_requests():
    """Exhaustively: with IPIs firing at arbitrary points, conservation
    still holds in every reachable state (checked by the invariant set;
    this test just confirms the run covers IPI interleavings)."""
    spec = LauberhornProtocolSpec(
        ProtocolConfig(total_packets=2, preemption=True)
    )
    result = ModelChecker(spec).run()
    assert result.ok
    baseline = ModelChecker(
        LauberhornProtocolSpec(ProtocolConfig(total_packets=2))
    ).run()
    assert result.states_explored > baseline.states_explored


def test_describe_is_readable():
    spec = LauberhornProtocolSpec()
    state = next(iter(spec.initial_states()))
    text = LauberhornProtocolSpec.describe(state)
    assert "cpu=ready@0" in text
