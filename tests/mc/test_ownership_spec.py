"""Model-checking end-point ownership (the bug the stress test found)."""

from repro.mc import ModelChecker
from repro.mc.ownership_spec import OwnershipConfig, OwnershipSpec


def test_correct_ownership_protocol_verifies():
    result = ModelChecker(OwnershipSpec(OwnershipConfig())).run()
    assert result.ok, result.summary()
    assert result.states_explored < 1000


def test_historical_overwrite_bug_caught():
    """The exact defect fixed in commit history: the second consumer's
    fill overwrote the parked one, orphaning the first CPU."""
    result = ModelChecker(
        OwnershipSpec(OwnershipConfig(bug="overwrite_park"))
    ).run()
    assert not result.ok
    assert result.violation.kind == "invariant"
    assert result.violation.name == "NoOrphanedLoad"
    # The counterexample requires both CPUs to have issued loads.
    trace = result.violation.trace
    assert any("cpu0_load" in step for step in trace)
    assert any("cpu1_load" in step for step in trace)
    assert any("overwrites" in step for step in trace)


def test_bounce_keeps_both_cpus_live():
    """In the correct protocol, from every reachable state, each CPU is
    either idle, served, or the one legitimately parked."""
    spec = OwnershipSpec(OwnershipConfig(total_packets=3))
    result = ModelChecker(spec).run()
    assert result.ok
    assert result.transitions > result.states_explored  # real branching
