"""Unit tests for the explicit-state model checker."""

import pytest

from repro.mc import ModelChecker, Spec


class Counter(Spec):
    """A toy spec: count 0..limit, wrap around."""

    name = "counter"

    def __init__(self, limit=5, wrap=True, bad_at=None):
        self.limit = limit
        self.wrap = wrap
        self.bad_at = bad_at

    def initial_states(self):
        return [0]

    def actions(self, state):
        if state < self.limit:
            return [("inc", state + 1)]
        if self.wrap:
            return [("reset", 0)]
        return []

    def invariants(self):
        if self.bad_at is None:
            return [("InRange", lambda s: 0 <= s <= self.limit)]
        return [("NotBad", lambda s: s != self.bad_at)]

    def is_terminal(self, state):
        return not self.wrap and state == self.limit


def test_exhaustive_exploration_counts_states():
    result = ModelChecker(Counter(limit=5)).run()
    assert result.ok
    assert result.states_explored == 6
    assert result.transitions == 6  # includes the wrap edge
    assert result.max_depth == 5


def test_invariant_violation_found_with_trace():
    result = ModelChecker(Counter(limit=5, bad_at=3)).run()
    assert not result.ok
    assert result.violation.kind == "invariant"
    assert result.violation.name == "NotBad"
    assert result.violation.state == 3
    assert result.violation.trace == ("inc", "inc", "inc")


def test_deadlock_detected():
    result = ModelChecker(Counter(limit=3, wrap=False, bad_at=99)).run()
    # state 3 has no actions and is_terminal says it's fine...
    assert result.ok

    class NoTerminal(Counter):
        def is_terminal(self, state):
            return False

    result = ModelChecker(NoTerminal(limit=3, wrap=False, bad_at=99)).run()
    assert not result.ok
    assert result.violation.kind == "deadlock"
    assert result.violation.state == 3


def test_max_states_truncation():
    result = ModelChecker(Counter(limit=1000), max_states=10).run()
    assert result.truncated
    assert not result.ok
    assert result.states_explored == 10


def test_initial_state_violation():
    class BadStart(Counter):
        def invariants(self):
            return [("NeverZero", lambda s: s != 0)]

    result = ModelChecker(BadStart()).run()
    assert result.violation.name == "NeverZero"
    assert result.violation.trace == ()


def test_multiple_initial_states_deduped():
    class TwoStarts(Counter):
        def initial_states(self):
            return [0, 0, 1]

    result = ModelChecker(TwoStarts(limit=3)).run()
    assert result.ok
    assert result.states_explored == 4


def test_summary_strings():
    ok = ModelChecker(Counter()).run()
    assert "OK" in ok.summary()
    bad = ModelChecker(Counter(bad_at=2)).run()
    assert "VIOLATION" in bad.summary()
