"""Unit + property tests for argument marshalling and its cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rpc import (
    MarshalError,
    count_fields,
    marshal_args,
    software_marshal_instructions,
    software_unmarshal_instructions,
    unmarshal_args,
)


def test_roundtrip_scalars():
    args = [1, -5, 3.5, "hello", b"\x00\x01", True, False, None]
    assert unmarshal_args(marshal_args(args)) == args


def test_roundtrip_nested_list():
    args = [[1, 2, [3, "x"]], b"tail"]
    assert unmarshal_args(marshal_args(args)) == [[1, 2, [3, "x"]], b"tail"]


def test_roundtrip_empty():
    assert unmarshal_args(marshal_args([])) == []


def test_bool_not_confused_with_int():
    out = unmarshal_args(marshal_args([True, 1]))
    assert out[0] is True and out[1] == 1 and not isinstance(out[1], bool)


def test_unsupported_type_rejected():
    with pytest.raises(MarshalError):
        marshal_args([{"a": 1}])


def test_empty_payload_rejected():
    with pytest.raises(MarshalError):
        unmarshal_args(b"")


def test_truncated_payload_rejected():
    raw = marshal_args([12345678])
    with pytest.raises(MarshalError):
        unmarshal_args(raw[:-2])


def test_trailing_garbage_rejected():
    raw = marshal_args([1])
    with pytest.raises(MarshalError):
        unmarshal_args(raw + b"\x00")


def test_unknown_tag_rejected():
    with pytest.raises(MarshalError):
        unmarshal_args(bytes([1, 200]))


def test_count_fields_flattens_lists():
    assert count_fields([1, "a", [2, 3, [4]]]) == 5
    assert count_fields([]) == 0


def test_unicode_strings():
    args = ["héllo wörld ☃"]
    assert unmarshal_args(marshal_args(args)) == args


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)
args_strategy = st.lists(
    st.one_of(scalars, st.lists(scalars, max_size=5)), max_size=8
)


@given(args_strategy)
def test_roundtrip_property(args):
    assert unmarshal_args(marshal_args(args)) == args


def test_cost_model_monotone_in_bytes_and_fields():
    assert software_unmarshal_instructions(1, 64) < software_unmarshal_instructions(1, 6400)
    assert software_unmarshal_instructions(1, 64) < software_unmarshal_instructions(10, 64)
    assert software_marshal_instructions(2, 100) < software_unmarshal_instructions(2, 100)


def test_cost_model_small_message_regime():
    # A small RPC (3 fields, 64B) should cost a few hundred instructions,
    # i.e. O(100ns) on a GHz-class core — the regime the accelerator
    # papers report.
    cost = software_unmarshal_instructions(3, 64)
    assert 200 < cost < 2000
