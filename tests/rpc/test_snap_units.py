"""Unit tests for the Snap stack's channel plumbing."""

import pytest

from repro.rpc.snap import SnapChannel, SnapEngine
from repro.rpc.server import UserNetContext
from repro.rpc.service import ServiceRegistry
from repro.net.headers import MacAddress
from repro.sim import Simulator


def make_engine():
    sim = Simulator()
    netctx = UserNetContext(ip=1, mac=MacAddress(2), arp={})
    return sim, SnapEngine(sim, ServiceRegistry(), netctx)


def test_channel_push_then_pop():
    sim = Simulator()
    channel = SnapChannel(sim)
    channel.push("a")
    channel.push("b")
    first = channel.pop_event()
    second = channel.pop_event()
    assert first.triggered and first._value == "a"
    assert second.triggered and second._value == "b"
    assert channel.enqueued == 2


def test_channel_pop_blocks_until_push():
    sim = Simulator()
    channel = SnapChannel(sim)
    event = channel.pop_event()
    assert not event.triggered
    channel.push("late")
    assert event.triggered and event._value == "late"


def test_channel_waiters_fifo():
    sim = Simulator()
    channel = SnapChannel(sim)
    first = channel.pop_event()
    second = channel.pop_event()
    channel.push(1)
    channel.push(2)
    assert first._value == 1 and second._value == 2


def test_engine_channel_per_service():
    _sim, engine = make_engine()
    a = engine.channel_for(1)
    b = engine.channel_for(2)
    assert a is not b
    assert engine.channel_for(1) is a


def test_engine_response_queue_wakes_gate():
    sim, engine = make_engine()
    woke = []

    def waiter():
        yield engine.wake_gate.wait()
        woke.append(sim.now)

    sim.process(waiter())
    sim.run(until=10)
    engine.push_response("frame")
    sim.run(until=20)
    assert woke
    assert engine.response_frames == ["frame"]
