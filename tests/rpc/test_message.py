"""Unit + property tests for the RPC wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rpc import RpcError, RpcHeader, RpcMessage, RpcType


def test_header_roundtrip():
    hdr = RpcHeader(RpcType.REQUEST, 7, 3, 0xDEADBEEF, 100)
    assert RpcHeader.unpack(hdr.pack()) == hdr
    assert len(hdr.pack()) == RpcHeader.SIZE == 24


def test_header_bad_magic():
    raw = bytearray(RpcHeader(RpcType.REQUEST, 1, 1, 1, 0).pack())
    raw[0] = 0x00
    with pytest.raises(RpcError):
        RpcHeader.unpack(bytes(raw))


def test_header_bad_type():
    raw = bytearray(RpcHeader(RpcType.REQUEST, 1, 1, 1, 0).pack())
    raw[3] = 99
    with pytest.raises(RpcError):
        RpcHeader.unpack(bytes(raw))


def test_header_truncated():
    with pytest.raises(RpcError):
        RpcHeader.unpack(b"\x00" * 10)


def test_message_roundtrip():
    msg = RpcMessage.request(5, 2, 42, b"args-bytes")
    out = RpcMessage.unpack(msg.pack())
    assert out == msg
    assert out.header.rpc_type is RpcType.REQUEST


def test_response_constructor():
    msg = RpcMessage.response(5, 2, 42, b"result")
    assert msg.header.rpc_type is RpcType.RESPONSE
    assert msg.header.payload_len == 6


def test_message_payload_length_mismatch():
    msg = RpcMessage(RpcHeader(RpcType.REQUEST, 1, 1, 1, 99), b"short")
    with pytest.raises(RpcError):
        msg.pack()


def test_message_truncated_payload():
    msg = RpcMessage.request(1, 1, 1, b"0123456789")
    with pytest.raises(RpcError):
        RpcMessage.unpack(msg.pack()[:-3])


@given(
    st.sampled_from(list(RpcType)),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.binary(max_size=256),
)
def test_message_roundtrip_property(rpc_type, service, method, req_id, payload):
    msg = RpcMessage(
        RpcHeader(rpc_type, service, method, req_id, len(payload)), payload
    )
    assert RpcMessage.unpack(msg.pack()) == msg
