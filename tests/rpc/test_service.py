"""Unit tests for the service registry."""

import pytest

from repro.rpc import ServiceError, ServiceRegistry


def echo(args):
    return list(args)


def test_create_service_assigns_ids_and_pointers():
    reg = ServiceRegistry()
    a = reg.create_service("a", udp_port=9000)
    b = reg.create_service("b", udp_port=9001)
    assert a.service_id != b.service_id
    assert a.data_ptr != b.data_ptr
    assert len(reg) == 2


def test_port_collision_rejected():
    reg = ServiceRegistry()
    reg.create_service("a", udp_port=9000)
    with pytest.raises(ValueError):
        reg.create_service("b", udp_port=9000)


def test_add_method_and_resolve():
    reg = ServiceRegistry()
    svc = reg.create_service("kv", udp_port=9000)
    get = reg.add_method(svc, "get", echo, cost_instructions=500)
    put = reg.add_method(svc, "put", echo, cost_instructions=800)
    assert get.method_id != put.method_id
    assert get.code_ptr != put.code_ptr
    s, m = reg.resolve(svc.service_id, get.method_id)
    assert s is svc and m is get


def test_method_id_collision_rejected():
    reg = ServiceRegistry()
    svc = reg.create_service("kv", udp_port=9000)
    reg.add_method(svc, "get", echo, method_id=1)
    with pytest.raises(ValueError):
        reg.add_method(svc, "put", echo, method_id=1)


def test_lookup_by_port():
    reg = ServiceRegistry()
    svc = reg.create_service("kv", udp_port=9000)
    assert reg.by_port(9000) is svc
    with pytest.raises(ServiceError):
        reg.by_port(9999)


def test_unknown_service_and_method():
    reg = ServiceRegistry()
    svc = reg.create_service("kv", udp_port=9000)
    with pytest.raises(ServiceError):
        reg.by_id(999)
    with pytest.raises(ServiceError):
        svc.method(42)


def test_cost_model_constant_and_callable():
    reg = ServiceRegistry()
    svc = reg.create_service("kv", udp_port=9000)
    const = reg.add_method(svc, "a", echo, cost_instructions=700)
    scaled = reg.add_method(
        svc, "b", echo, cost_instructions=lambda args: 100 * len(args)
    )
    assert const.cost_for([1, 2, 3]) == 700
    assert scaled.cost_for([1, 2, 3]) == 300


def test_handler_executes():
    reg = ServiceRegistry()
    svc = reg.create_service("math", udp_port=9000)
    add = reg.add_method(svc, "add", lambda args: [sum(args)])
    assert add.handler([1, 2, 3]) == [6]


def test_registry_iteration():
    reg = ServiceRegistry()
    names = {"a", "b", "c"}
    for i, name in enumerate(sorted(names)):
        reg.create_service(name, udp_port=9000 + i)
    assert {svc.name for svc in reg} == names
