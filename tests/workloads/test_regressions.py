"""Regression pins for generator/mix bugfixes (PR 9 satellite batch)."""

import random

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.workloads import ClosedLoopGenerator, OpenLoopGenerator, ServiceMix


class _FakeTarget:
    pass


def _gen(cls):
    bed = build_lauberhorn_testbed()
    mix = ServiceMix([_FakeTarget()])
    return cls(bed.clients[0], mix, bed.server_mac, bed.server_ip,
               random.Random(0))


def test_deferrals_readable_before_any_run():
    """``deferrals`` is initialised in ``__init__``: a report reading it
    off a generator that never ran (or a closed-loop one, which never
    consults an admission gate) must see 0, not AttributeError."""
    for cls in (OpenLoopGenerator, ClosedLoopGenerator):
        assert _gen(cls).deferrals == 0


def test_service_mix_rejects_negative_weights():
    targets = [_FakeTarget(), _FakeTarget()]
    with pytest.raises(ValueError, match="negative"):
        ServiceMix(targets, weights=[1.0, -0.5])
    mix = ServiceMix(targets)
    with pytest.raises(ValueError, match="negative"):
        mix.set_hot_set([0], hot_weight=1.0, cold_weight=-1.0)
    # Valid weights still work, including all-zero cold traffic.
    mix.set_hot_set([1], hot_weight=2.0, cold_weight=0.0)
    assert mix.weights == [0.0, 2.0]
