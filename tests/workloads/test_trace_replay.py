"""Tests for synthetic trace generation and replay."""

import random

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import NicScheduler
from repro.sim import MS, SEC
from repro.workloads.generator import Target
from repro.workloads.trace_replay import TraceReplayer, generate_trace


def test_trace_rate_approximately_honoured():
    trace = generate_trace(
        n_targets=4, duration_ns=0.1 * SEC, mean_rate_per_sec=10_000, seed=1,
        burst_factor=1.0,  # no bursts: pure Poisson
    )
    # ~1000 arrivals expected.
    assert 800 < len(trace) < 1200
    times = [e.time_ns for e in trace]
    assert times == sorted(times)
    assert times[-1] < 0.1 * SEC


def test_trace_popularity_skewed():
    trace = generate_trace(
        n_targets=16, duration_ns=0.05 * SEC, mean_rate_per_sec=50_000, seed=2
    )
    counts = {}
    for entry in trace:
        counts[entry.target_index] = counts.get(entry.target_index, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    # Zipf: the hottest service dominates the coldest by a wide margin.
    assert ordered[0] > 5 * ordered[-1]


def test_trace_bursts_increase_local_rate():
    calm = generate_trace(4, 0.1 * SEC, 10_000, seed=3, burst_factor=1.0)
    bursty = generate_trace(4, 0.1 * SEC, 10_000, seed=3, burst_factor=8.0,
                            burst_fraction=0.2)
    assert len(bursty) > len(calm) * 1.2


def test_trace_deterministic():
    a = generate_trace(4, 0.01 * SEC, 10_000, seed=9)
    b = generate_trace(4, 0.01 * SEC, 10_000, seed=9)
    assert a == b
    c = generate_trace(4, 0.01 * SEC, 10_000, seed=10)
    assert a != c


def test_trace_validation():
    with pytest.raises(ValueError):
        generate_trace(0, 1e6, 1000)
    with pytest.raises(ValueError):
        generate_trace(1, 0, 1000)


def test_replay_against_lauberhorn():
    bed = build_lauberhorn_testbed()
    targets = []
    for index in range(3):
        service = bed.registry.create_service(f"s{index}", udp_port=9000 + index)
        method = bed.registry.add_method(service, "m", lambda a: list(a),
                                         cost_instructions=400)
        process = bed.kernel.spawn_process(f"s{index}")
        bed.nic.register_service(service, process.pid)
        bed.nic.create_endpoint(EndpointKind.USER, service=service)
        targets.append(Target(service, method))
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=2,
                 promote=True)

    trace = generate_trace(
        n_targets=3, duration_ns=5 * MS, mean_rate_per_sec=20_000, seed=4
    )
    replayer = TraceReplayer(
        bed.clients[0], targets, bed.server_mac, bed.server_ip
    )
    done = bed.sim.process(replayer.run(trace, random.Random(0)))
    bed.machine.run(until=done)
    assert replayer.completed == len(trace) == replayer.sent
    assert replayer.recorder.summary().p50 > 0
    # All three services saw traffic.
    assert len(replayer.per_target) == 3
