"""Integration tests for open/closed-loop generators over a testbed."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import lauberhorn_user_loop
from repro.sim import MS
from repro.workloads import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    ServiceMix,
    Target,
)


def lauberhorn_echo(bed, port=9000, name="echo", core=0):
    service = bed.registry.create_service(name, udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=500
    )
    process = bed.kernel.spawn_process(f"{name}-server")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, ep, bed.registry),
        name=f"{name}-loop",
        pinned_core=core,
    )
    return Target(service=service, method=method)


def test_open_loop_completes_all():
    bed = build_lauberhorn_testbed()
    target = lauberhorn_echo(bed)
    gen = OpenLoopGenerator(
        bed.clients[0],
        ServiceMix([target]),
        bed.server_mac,
        bed.server_ip,
        rng=bed.machine.rng.stream("gen"),
    )
    proc = bed.sim.process(gen.run(rate_per_sec=50_000, n_requests=50))
    bed.machine.run(until=proc)
    assert gen.completed == 50
    assert len(gen.recorder) == 50
    summary = gen.recorder.summary()
    assert summary.p50 > 0


def test_closed_loop_completes_all():
    bed = build_lauberhorn_testbed()
    target = lauberhorn_echo(bed)
    gen = ClosedLoopGenerator(
        bed.clients[0],
        ServiceMix([target]),
        bed.server_mac,
        bed.server_ip,
        rng=bed.machine.rng.stream("gen"),
    )
    proc = bed.sim.process(gen.run(concurrency=4, n_requests=40))
    bed.machine.run(until=proc)
    assert gen.completed == 40
    assert gen.sent == 40


def test_mix_splits_traffic_between_services():
    bed = build_lauberhorn_testbed()
    t1 = lauberhorn_echo(bed, port=9000, name="a", core=0)
    t2 = lauberhorn_echo(bed, port=9001, name="b", core=1)
    mix = ServiceMix([t1, t2], weights=[1.0, 1.0])
    gen = ClosedLoopGenerator(
        bed.clients[0], mix, bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("gen"),
    )
    proc = bed.sim.process(gen.run(concurrency=2, n_requests=40))
    bed.machine.run(until=proc)
    a = bed.nic.load.service(t1.service.service_id).arrivals
    b = bed.nic.load.service(t2.service.service_id).arrivals
    assert a + b == 40
    assert a > 5 and b > 5


def test_hot_set_weights():
    bed = build_lauberhorn_testbed()
    t1 = lauberhorn_echo(bed, port=9000, name="a", core=0)
    t2 = lauberhorn_echo(bed, port=9001, name="b", core=1)
    mix = ServiceMix([t1, t2])
    mix.set_hot_set([1])
    rng = bed.machine.rng.stream("pick")
    assert all(mix.choose(rng) is t2 for _ in range(20))
    with pytest.raises(ValueError):
        mix.set_hot_set([])


def test_generator_validation():
    bed = build_lauberhorn_testbed()
    target = lauberhorn_echo(bed)
    gen = OpenLoopGenerator(
        bed.clients[0], ServiceMix([target]), bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("gen"),
    )
    with pytest.raises(ValueError):
        bed.machine.run(until=bed.sim.process(gen.run(rate_per_sec=0, n_requests=1)))
