"""Unit + property tests for workload distributions and schedules."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rpc.marshal import marshal_args
from repro.workloads import (
    CLOUD_RPC_SIZES,
    BimodalServiceTime,
    BurstSchedule,
    ExponentialServiceTime,
    FixedServiceTime,
    HotSetSchedule,
    RpcSizeDistribution,
    args_for_payload,
)


@given(st.integers(min_value=6, max_value=5000))
def test_args_for_payload_exact(nbytes):
    assert len(marshal_args(args_for_payload(nbytes))) == nbytes


def test_args_for_payload_too_small():
    with pytest.raises(ValueError):
        args_for_payload(3)


def test_cloud_sizes_mostly_small():
    rng = random.Random(1)
    samples = [CLOUD_RPC_SIZES.sample(rng) for _ in range(5000)]
    small = sum(1 for s in samples if s <= 512)
    assert small / len(samples) > 0.7  # the paper's premise
    assert max(samples) > 16384  # but a real tail exists


def test_size_distribution_bounds_respected():
    rng = random.Random(2)
    dist = RpcSizeDistribution(buckets=((1.0, 100, 200),))
    for _ in range(200):
        assert 100 <= dist.sample(rng) <= 200


def test_size_distribution_validation():
    with pytest.raises(ValueError):
        RpcSizeDistribution(buckets=((0.5, 10, 20),))  # weights != 1
    with pytest.raises(ValueError):
        RpcSizeDistribution(buckets=((1.0, 2, 20),))  # below marshal min


def test_fixed_service_time():
    assert FixedServiceTime(123).sample(random.Random(0)) == 123


def test_exponential_service_time_mean():
    rng = random.Random(3)
    dist = ExponentialServiceTime(mean_instructions=2000)
    mean = sum(dist.sample(rng) for _ in range(20_000)) / 20_000
    assert mean == pytest.approx(2000, rel=0.05)


def test_bimodal_service_time():
    rng = random.Random(4)
    dist = BimodalServiceTime(short_instructions=100, long_instructions=10_000,
                              long_fraction=0.1)
    samples = [dist.sample(rng) for _ in range(5000)]
    longs = sum(1 for s in samples if s == 10_000)
    assert 0.05 < longs / len(samples) < 0.15
    assert set(samples) == {100, 10_000}


def test_hot_set_schedule_stable_within_epoch():
    sched = HotSetSchedule(n_services=16, hot_count=4, period_ns=1e6, seed=7)
    assert sched.hot_set_at(0) == sched.hot_set_at(999_999)
    assert len(sched.hot_set_at(0)) == 4


def test_hot_set_schedule_changes_across_epochs():
    sched = HotSetSchedule(n_services=32, hot_count=4, period_ns=1e6, seed=7)
    sets = {sched.hot_set_at(i * 1e6) for i in range(10)}
    assert len(sets) > 1


def test_hot_set_epochs_cover_duration():
    sched = HotSetSchedule(n_services=8, hot_count=2, period_ns=1e6)
    epochs = list(sched.epochs(3.5e6))
    assert len(epochs) == 4
    assert epochs[0][0] == 0.0 and epochs[-1][0] == 3e6


def test_hot_set_validation():
    with pytest.raises(ValueError):
        HotSetSchedule(n_services=4, hot_count=5, period_ns=1e6)
    with pytest.raises(ValueError):
        HotSetSchedule(n_services=4, hot_count=1, period_ns=0)


def test_burst_schedule():
    sched = BurstSchedule(burst_service=0, interval_ns=1e6, burst_ns=2e5)
    assert sched.in_burst(0)
    assert sched.in_burst(1.9e5)
    assert not sched.in_burst(5e5)
    assert sched.in_burst(1.1e6)


def test_burst_schedule_validation():
    with pytest.raises(ValueError):
        BurstSchedule(0, interval_ns=1e5, burst_ns=2e5)
