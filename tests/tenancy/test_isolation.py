"""Tenanted-NIC integration: byte-identity, enforcement, check teeth."""

import random

import pytest

from repro.check import install_checks
from repro.experiments.testbed import build_lauberhorn_testbed, deploy_service
from repro.sim import MS
from repro.tenancy import TenantTable
from repro.workloads import OpenLoopGenerator, ServiceMix, Target

HORIZON = 20 * MS


def _drive(bed, service, method, rate=100_000.0, n=60, seed=1, client=0):
    gen = OpenLoopGenerator(
        bed.clients[client], ServiceMix([Target(service, method)]),
        bed.server_mac, bed.server_ip, random.Random(seed))
    bed.sim.process(gen.run(rate, n))
    bed.sim.run(until=HORIZON)
    return gen


def test_single_budgetless_tenant_is_byte_identical():
    """Property (a): one weight-1 tenant with no budget and no rate
    limit must take the exact historical code path — same RTT sequence,
    same NIC counters, event for event."""
    plain = build_lauberhorn_testbed()
    ps, pm = deploy_service(plain, "lauberhorn")
    pg = _drive(plain, ps, pm)

    tenanted = build_lauberhorn_testbed()
    table = TenantTable()
    table.create("only", weight=1.0)
    tenanted.nic.attach_tenants(table)
    ts, tm = deploy_service(tenanted, "lauberhorn", tenant="only")
    tg = _drive(tenanted, ts, tm)

    assert pg.completed == tg.completed == 60
    assert pg.recorder.samples == tg.recorder.samples
    assert plain.sim.now == tenanted.sim.now
    assert vars(plain.nic.lstats) == vars(tenanted.nic.lstats)
    # ...and the tenant ledger still accounted every frame.
    stats = table.stats_for("only")
    assert stats.arrivals == stats.admitted == 60
    assert stats.completed == 60 and stats.held_now == 0


def test_register_with_tenant_requires_attached_table():
    bed = build_lauberhorn_testbed()
    with pytest.raises(RuntimeError, match="attach_tenants"):
        deploy_service(bed, "lauberhorn", tenant="ghost")


def test_attach_refuses_mid_run():
    bed = build_lauberhorn_testbed()
    service, method = deploy_service(bed, "lauberhorn")
    _drive(bed, service, method, n=5)
    bed.nic.global_backlog.append(object())
    with pytest.raises(RuntimeError, match="before traffic"):
        bed.nic.attach_tenants(TenantTable())


def test_rate_limit_polices_and_conserves():
    """An over-rate tenant is policed at demux; the ledger accounts
    every frame and the isolation invariants stay clean."""
    bed = build_lauberhorn_testbed(n_clients=2)
    table = TenantTable()
    table.create("calm", weight=1.0)
    table.create("greedy", weight=1.0, rate_limit_rps=50_000.0,
                 rate_burst=8.0)
    bed.nic.attach_tenants(table)
    cs, cm = deploy_service(bed, "lauberhorn", name="calm", udp_port=9000,
                            core=0, tenant="calm")
    gs, gm = deploy_service(bed, "lauberhorn", name="greedy", udp_port=9100,
                            core=1, tenant="greedy")
    checks = install_checks(bed)
    checks.start(HORIZON)
    calm_gen = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(cs, cm)]),
        bed.server_mac, bed.server_ip, random.Random(1))
    greedy_gen = OpenLoopGenerator(
        bed.clients[1], ServiceMix([Target(gs, gm)]),
        bed.server_mac, bed.server_ip, random.Random(2))
    bed.sim.process(calm_gen.run(50_000.0, 40))

    def greedy_blast():
        # Fire-and-forget: policed requests never complete, so the
        # OpenLoopGenerator's final AllOf barrier would hang.
        for _ in range(300):
            greedy_gen._fire(greedy_gen.mix.choose(greedy_gen.rng))
            yield bed.sim.timeout(500.0)  # 2 Mrps, far over the limit

    bed.sim.process(greedy_blast())
    bed.sim.run(until=HORIZON)
    assert checks.finish() == []
    greedy = table.stats_for("greedy")
    assert greedy.rate_dropped > 0
    assert greedy.arrivals == 300
    assert greedy.admitted + greedy.rate_dropped == 300
    calm = table.stats_for("calm")
    assert calm.rate_dropped == 0 and calm.completed == 40
    assert calm_gen.completed == 40


def test_budget_cap_is_enforced_live():
    """A ctrl_budget=1 tenant never holds two CONTROL lines at once,
    even with concurrent traffic — checked by the armed invariants."""
    bed = build_lauberhorn_testbed()
    table = TenantTable()
    table.create("capped", ctrl_budget=1)
    bed.nic.attach_tenants(table)
    service, method = deploy_service(bed, "lauberhorn", tenant="capped")
    checks = install_checks(bed, interval_ns=10_000.0)
    checks.start(HORIZON)
    gen = _drive(bed, service, method, rate=400_000.0, n=50)
    assert checks.finish() == []
    assert gen.completed == 50
    stats = table.stats_for("capped")
    assert stats.held_now == 0 and stats.completed == 50


def test_budget_check_has_teeth():
    """Satellite (c): a corrupted held ledger must trip tenant-budget —
    both the cap bound and the endpoint reconciliation."""
    bed = build_lauberhorn_testbed()
    table = TenantTable()
    table.create("capped", ctrl_budget=2)
    bed.nic.attach_tenants(table)
    service, method = deploy_service(bed, "lauberhorn", tenant="capped")
    checks = install_checks(bed)
    _drive(bed, service, method, n=10)
    assert not checks.violations
    table.stats_for("capped").held_now = 3  # over budget, nothing in flight
    checks.check_now()
    names = {v.name for v in checks.violations}
    assert "tenant-budget" in names
    details = "\n".join(v.detail for v in checks.violations)
    assert "budget is 2" in details
    assert "end-points show 0" in details


def test_conservation_check_has_teeth():
    bed = build_lauberhorn_testbed()
    table = TenantTable()
    table.create("t")
    bed.nic.attach_tenants(table)
    service, method = deploy_service(bed, "lauberhorn", tenant="t")
    checks = install_checks(bed)
    _drive(bed, service, method, n=10)
    table.stats_for("t").admitted -= 1  # arrivals != admitted + policed
    checks.check_now()
    assert any(v.name == "tenant-conservation" for v in checks.violations)


def test_fairness_check_has_teeth():
    """Satellite (c): a biased arbiter surfaces through the quiesce
    fairness check installed on the NIC's own DWRR instance."""
    bed = build_lauberhorn_testbed()
    table = TenantTable()
    a = table.create("a")
    b = table.create("b")
    bed.nic.attach_tenants(table)
    deploy_service(bed, "lauberhorn", name="a", udp_port=9000, tenant="a")
    deploy_service(bed, "lauberhorn", name="b", udp_port=9100, tenant="b")
    checks = install_checks(bed)
    dwrr = bed.nic._tenant_backlog
    for k in range(12):
        dwrr.push(a.tenant_id, k)
        dwrr.push(b.tenant_id, k)
    for _ in range(12):
        dwrr.force_serve(a.tenant_id)
    violations = checks.finish()
    assert any(v.name == "tenant-fairness" for v in violations)


def test_tenant_metrics_probe_appears_only_when_tenanted():
    from repro.obs.metrics import MetricsRegistry

    plain = build_lauberhorn_testbed()
    registry = MetricsRegistry()
    plain.nic.bind_metrics(registry)
    assert not any("tenants" in name for name in registry.snapshot())

    bed = build_lauberhorn_testbed()
    table = TenantTable()
    table.create("t")
    bed.nic.attach_tenants(table)
    service, method = deploy_service(bed, "lauberhorn", tenant="t")
    registry = MetricsRegistry()
    bed.nic.bind_metrics(registry)
    _drive(bed, service, method, n=8)
    snap = registry.snapshot()
    tenant_keys = [k for k in snap if "tenants" in k]
    assert tenant_keys
    assert any(k.endswith("t.completed") and snap[k] == 8
               for k in tenant_keys)
