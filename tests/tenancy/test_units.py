"""Unit tests for the tenancy primitives: specs, table, bucket, DWRR."""

import pytest

from repro.tenancy import DeficitRoundRobin, TenantSpec, TenantTable, TokenBucket


# -- TenantSpec / TenantTable ---------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError, match="weight"):
        TenantSpec(1, "t", weight=0.0)
    with pytest.raises(ValueError, match="weight"):
        TenantSpec(1, "t", weight=-1.0)
    with pytest.raises(ValueError, match="ctrl_budget"):
        TenantSpec(1, "t", ctrl_budget=0)
    with pytest.raises(ValueError, match="rate_limit_rps"):
        TenantSpec(1, "t", rate_limit_rps=0.0)


def test_table_create_assign_lookup():
    table = TenantTable()
    a = table.create("a", weight=2.0)
    b = table.create("b", ctrl_budget=3, rate_limit_rps=1000.0)
    assert a.tenant_id != b.tenant_id
    with pytest.raises(ValueError, match="already exists"):
        table.create("a")
    table.assign(7, "a")
    table.assign(8, b)
    assert table.tenant_for_service(7) is a
    assert table.tenant_for_service(8) is b
    assert sorted(table.services_of("a")) == [7]
    assert table.get(a.tenant_id) is a
    with pytest.raises(KeyError, match="no tenant named"):
        table.get("nope")
    # A budgetless tenant has no bucket; a rate-limited one does.
    assert table.bucket_for(a.tenant_id) is None
    assert table.bucket_for(b.tenant_id) is not None


def test_unassigned_services_fall_into_default_tenant():
    table = TenantTable()
    table.create("a")
    spec = table.tenant_for_service(42)
    assert spec.name == TenantTable.DEFAULT_NAME
    assert spec.weight == 1.0 and spec.ctrl_budget is None
    # The default tenant shows up in iteration/snapshot once created.
    assert any(s.name == TenantTable.DEFAULT_NAME for s in table)


def test_snapshot_is_flat_and_numeric():
    table = TenantTable()
    table.create("a")
    table.stats_for("a").arrivals = 3
    snap = table.snapshot()
    assert snap["a.arrivals"] == 3
    assert all(isinstance(v, (int, float)) for v in snap.values())


def test_set_rate_limit_actuation():
    table = TenantTable()
    table.create("a")
    tid = table.get("a").tenant_id
    table.set_rate_limit("a", 100.0, burst=2.0)
    bucket = table.bucket_for(tid)
    assert bucket is not None and bucket.rate_per_sec == 100.0
    table.set_rate_limit("a", 500.0)
    assert table.bucket_for(tid) is bucket  # retuned in place
    assert bucket.rate_per_sec == 500.0
    table.set_rate_limit("a", None)
    assert table.bucket_for(tid) is None


# -- TokenBucket ----------------------------------------------------------


def test_bucket_polices_beyond_burst_and_refills():
    bucket = TokenBucket(1e6, burst=2.0)  # 1 token/us
    assert bucket.allow(0.0)
    assert bucket.allow(0.0)      # burst of 2 spent
    assert not bucket.allow(0.0)  # policed
    assert bucket.next_ready_ns(0.0) == pytest.approx(1000.0)
    assert not bucket.allow(999.0)
    assert bucket.allow(1000.0)   # exactly one token accrued


def test_bucket_is_deterministic_in_timestamps():
    a, b = TokenBucket(5e5, burst=4.0), TokenBucket(5e5, burst=4.0)
    stamps = [0.0, 100.0, 2000.0, 2000.0, 2001.0, 9000.0, 9001.0]
    assert [a.allow(t) for t in stamps] == [b.allow(t) for t in stamps]
    assert a.tokens == b.tokens


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(0.0)
    with pytest.raises(ValueError):
        TokenBucket(100.0, burst=0.5)
    with pytest.raises(ValueError):
        TokenBucket(100.0).set_rate(-1.0)


# -- DeficitRoundRobin ----------------------------------------------------


def test_dwrr_equal_weights_alternate():
    dwrr = DeficitRoundRobin()
    dwrr.add_tenant(1, 1.0)
    dwrr.add_tenant(2, 1.0)
    for k in range(4):
        dwrr.push(1, f"a{k}")
        dwrr.push(2, f"b{k}")
    order = [dwrr.pop()[0] for _ in range(8)]
    assert order == [1, 2, 1, 2, 1, 2, 1, 2]
    assert len(dwrr) == 0 and dwrr.pop() is None


def test_dwrr_shares_converge_to_weights():
    """Satellite (b): under sustained backlog, service shares track the
    configured weights — here 3:1 within one item over any window."""
    dwrr = DeficitRoundRobin()
    dwrr.add_tenant(1, 3.0)
    dwrr.add_tenant(2, 1.0)
    for k in range(300):
        dwrr.push(1, k)
        dwrr.push(2, k)
    for _ in range(200):
        assert dwrr.pop() is not None
    assert dwrr.served[1] == 150
    assert dwrr.served[2] == 50
    # Fractional weights work too (deficit accumulates across rounds).
    frac = DeficitRoundRobin()
    frac.add_tenant(1, 1.0)
    frac.add_tenant(2, 0.25)
    for k in range(200):
        frac.push(1, k)
        frac.push(2, k)
    for _ in range(100):
        assert frac.pop() is not None
    assert frac.served[1] == 80
    assert frac.served[2] == 20


def test_dwrr_eligibility_veto_skips_tenants():
    dwrr = DeficitRoundRobin()
    dwrr.add_tenant(1, 1.0)
    dwrr.add_tenant(2, 1.0)
    dwrr.push(1, "a")
    dwrr.push(2, "b")
    got = dwrr.pop(eligible=lambda tid: tid == 2)
    assert got == (2, "b")
    assert dwrr.pop(eligible=lambda tid: tid == 2) is None
    assert dwrr.queued(1) == 1  # vetoed work stays queued


def test_dwrr_steal_removes_without_charging():
    dwrr = DeficitRoundRobin()
    dwrr.add_tenant(1, 1.0)
    dwrr.push(1, ("x", 1))
    dwrr.push(1, ("y", 2))
    item = dwrr.steal(1, lambda it: it[0] == "y")
    assert item == ("y", 2)
    assert dwrr.served[1] == 0
    assert dwrr.queued(1) == 1
    assert dwrr.steal(1, lambda it: it[0] == "z") is None


def test_dwrr_fairness_span_flags_biased_service():
    """Satellite (c), arbiter half: a biased arbiter (force_serve) must
    trip the weighted-fairness evidence; a fair drain must not."""
    fair = DeficitRoundRobin()
    fair.add_tenant(1, 1.0)
    fair.add_tenant(2, 1.0)
    for k in range(20):
        fair.push(1, k)
        fair.push(2, k)
    while fair.pop() is not None:
        pass
    assert fair.check_fairness() == []

    biased = DeficitRoundRobin()
    biased.add_tenant(1, 1.0)
    biased.add_tenant(2, 1.0)
    for k in range(20):
        biased.push(1, k)
        biased.push(2, k)
    for _ in range(20):
        biased.force_serve(1)  # tenant 2 starves inside the span
    problems = biased.check_fairness()
    assert problems and "diverged" in problems[0]
