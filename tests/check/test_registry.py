"""CheckRegistry mechanics: recording, sampling, quiesce, capping."""

import math

import pytest

from repro.check import CheckRegistry, InvariantViolation
from repro.sim.engine import Simulator


def test_clean_registry_asserts_clean():
    sim = Simulator()
    reg = CheckRegistry(sim)
    reg.add("ok", lambda: [])
    reg.add_quiesce("ok-q", lambda drained: None)
    reg.assert_clean()
    assert reg.finished


def test_violations_collected_not_raised_until_assert():
    sim = Simulator()
    reg = CheckRegistry(sim)
    reg.add("a", lambda: ["first problem"])
    reg.add("b", lambda: ["second problem"])
    reg.check_now()  # must not raise
    assert len(reg.violations) == 2
    with pytest.raises(InvariantViolation) as excinfo:
        reg.assert_clean()
    message = str(excinfo.value)
    assert "first problem" in message and "second problem" in message


def test_violation_cap_prevents_unbounded_growth():
    from repro.check.registry import MAX_VIOLATIONS

    sim = Simulator()
    reg = CheckRegistry(sim)
    reg.add("noisy", lambda: ["boom"] * 50)
    for _ in range(20):
        reg.check_now()
    assert len(reg.violations) == MAX_VIOLATIONS


def test_sampler_is_bounded_by_horizon():
    sim = Simulator()
    reg = CheckRegistry(sim, interval_ns=1000.0)
    reg.start(horizon_ns=10_500.0)
    sim.run(until=1_000_000.0)
    # The sampler must not outlive the horizon (else runs never drain).
    assert sim.peek() == math.inf
    assert reg.samples == 10


def test_quiesce_sees_drained_flag():
    sim = Simulator()
    seen = []
    reg = CheckRegistry(sim)
    reg.add_quiesce("probe", lambda drained: seen.append(drained) or [])
    reg.finish()
    assert seen == [True]

    sim2 = Simulator()
    def ticker():
        while True:
            yield sim2.timeout(100.0)
    sim2.process(ticker())
    sim2.run(until=1000.0)
    reg2 = CheckRegistry(sim2)
    seen2 = []
    reg2.add_quiesce("probe", lambda drained: seen2.append(drained) or [])
    reg2.finish()
    assert seen2 == [False]
