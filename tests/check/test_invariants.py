"""The invariants themselves: clean systems pass, broken states fail."""

import pytest

from repro.check import InvariantViolation, install_checks
from repro.experiments.four_stacks import STACKS, _build_stack
from repro.experiments.testbed import build_lauberhorn_testbed, build_linux_testbed
from repro.hw.coherence import LineState


def _drive(bed, service, method, n=10, horizon=20_000_000.0):
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(n):
            client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            yield bed.sim.timeout(200_000)

    bed.sim.process(driver())
    bed.machine.run(until=horizon)


@pytest.mark.parametrize("stack", STACKS)
def test_healthy_stacks_pass_all_invariants(stack):
    bed, service, method = _build_stack(stack)
    reg = install_checks(bed)
    reg.start(20_000_000.0)
    _drive(bed, service, method)
    reg.assert_clean()
    assert reg.samples > 10


def _home_some_lines(bed, n_bytes=256):
    from repro.hw.coherence import MemoryHome

    fabric = bed.machine.fabric
    region = bed.machine.alloc.allocate(n_bytes, "test-lines")
    fabric.register_home(region, MemoryHome(bed.sim))
    return fabric


def test_mesi_scan_catches_double_owner():
    bed = build_lauberhorn_testbed()
    fabric = _home_some_lines(bed)
    reg = install_checks(bed)
    addr, line = next(iter(fabric._lines.items()))
    line.holders[0] = LineState.MODIFIED
    line.holders[1] = LineState.MODIFIED
    reg.check_now()
    assert any(v.name == "mesi:scan" and "multiple writers" in v.detail
               for v in reg.violations)


def test_mesi_wrap_catches_illegal_transition():
    bed = build_lauberhorn_testbed()
    fabric = _home_some_lines(bed)
    reg = install_checks(bed)
    addr = next(iter(fabric._lines))

    def run(gen):
        proc = bed.sim.process(gen)
        bed.sim.run(until=proc)

    run(fabric.load(0, addr))   # I -> E (legal)
    run(fabric.load(1, addr))   # demotes: both SHARED (legal)
    assert not reg.violations
    # Forge S -> E behind the fabric's back; the next wrapped op on the
    # line observes the transition.
    fabric._lines[addr].holders[1] = LineState.EXCLUSIVE
    run(fabric.load(0, addr))   # hit for core 0, but the wrap validates
    assert any("illegal transition S->E" in v.detail
               for v in reg.violations) or any(
        "coexists" in v.detail or "multiple" in v.detail
        for v in reg.violations
    )


def test_packet_conservation_catches_unaccounted_frames():
    bed = build_linux_testbed()
    reg = install_checks(bed)
    link = bed.switch.ports[bed.server_mac.value].ingress
    link.stats.delivered += 3  # frames from nowhere
    reg.finish()
    assert any(v.name == "packet-conservation" for v in reg.violations)
    with pytest.raises(InvariantViolation):
        reg.assert_clean()


def test_ring_check_catches_overflow():
    bed = build_linux_testbed()
    reg = install_checks(bed)
    queue = bed.nic.queues[0]
    queue.completed.extend([object()] * (queue.capacity + 1))
    reg.check_now()
    assert any(v.name == "ring" and "exceeds capacity" in v.detail
               for v in reg.violations)


def test_scheduler_check_catches_mispinned_thread():
    from repro.os import ops

    bed = build_linux_testbed()
    reg = install_checks(bed)

    def body():
        yield ops.Exec(100)

    thread = bed.kernel.spawn_thread(
        bed.kernel.spawn_process("p"), body(), pinned_core=1,
    )
    # Shove it onto the wrong core's queue behind the scheduler's back.
    bed.kernel.scheduler.remove(thread)
    bed.kernel.scheduler._queues[0].append(thread)
    reg.check_now()
    assert any(v.name == "scheduler" and "pinned" in v.detail
               for v in reg.violations)


def test_lauberhorn_accounting_catches_dropped_fill():
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    bed.registry.add_method(service, "m", lambda a: list(a),
                            cost_instructions=100)
    from repro.nic.lauberhorn import EndpointKind

    proc = bed.kernel.spawn_process("srv")
    bed.nic.register_service(service, proc.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    reg = install_checks(bed)
    # Claim a CONTROL fill happened that was never answered or parked.
    ep.stats.ctrl_loads += 1
    bed.machine.run(until=1_000_000.0)
    reg.finish()
    assert any(v.name == "lauberhorn-accounting" for v in reg.violations)


def test_tryagain_ledger_mismatch_detected():
    bed = build_lauberhorn_testbed()
    reg = install_checks(bed)
    bed.nic.lstats.tryagains += 1  # nic-level counter desyncs
    reg.finish()
    assert any("tryagain ledger mismatch" in v.detail
               for v in reg.violations)
