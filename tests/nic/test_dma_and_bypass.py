"""Unit/integration tests for DMA-NIC internals and bypass multiplexing."""

import pytest

from repro.experiments import build_bypass_testbed, build_linux_testbed
from repro.os import ops
from repro.rpc.server import bypass_worker
from repro.sim import MS


def test_dma_nic_rss_spreads_flows_across_queues():
    bed = build_linux_testbed(n_queues=4, n_clients=1)
    socket = bed.netstack.bind(9000)
    client = bed.clients[0]
    # Many distinct source ports -> distinct RSS hashes.
    for i in range(32):
        client.send_request(
            bed.server_mac, bed.server_ip, 9000, 1, 1, [i]
        )
    bed.machine.run(until=5 * MS)
    # Data arrived (socket has no worker; datagrams queue).
    assert socket.stats.enqueued > 0
    # Interrupts went to more than one core.
    irq_cores = {q.core_id for q in bed.nic.queues}
    assert len(irq_cores) == 4


def test_dma_nic_interrupt_moderation():
    """Under a burst, NAPI keeps the IRQ disabled: far fewer interrupts
    than frames."""
    bed = build_linux_testbed(n_queues=1)
    bed.netstack.bind(9000)
    client = bed.clients[0]
    for i in range(64):
        client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [i])
    bed.machine.run(until=10 * MS)
    assert bed.nic.stats.rx_frames == 64
    assert bed.machine.link.stats.interrupts < 64


def test_dma_queue_overflow_drops():
    bed = build_linux_testbed(n_queues=1)
    bed.nic.queues[0].capacity = 4
    # No NAPI consumer (no kernel IRQ handling on the queue's completed
    # list consuming fast enough): flood it.
    bed.netstack.bind(9000)
    # Suppress kernel drain by pointing the IRQ at a core we stall?
    # Simpler: detach the kernel so no NAPI poll ever runs.
    bed.nic.kernel = None
    client = bed.clients[0]
    for i in range(16):
        client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [i])
    bed.machine.run(until=5 * MS)
    assert bed.nic.stats.rx_dropped == 12
    assert bed.nic.queues[0].drops == 12


def test_bypass_poll_many_serves_multiple_queues():
    bed = build_bypass_testbed(n_queues=4)
    services = []
    for i in range(4):
        service = bed.registry.create_service(f"s{i}", udp_port=9000 + i)
        method = bed.registry.add_method(
            service, "m", lambda args: list(args), cost_instructions=200
        )
        bed.nic.steer_port(9000 + i, i)
        services.append((service, method))
    process = bed.kernel.spawn_process("pmd")
    bed.kernel.spawn_thread(
        process,
        bypass_worker(bed.nic, list(bed.nic.queues), bed.user_netctx,
                      bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        for service, method in services:
            result = yield from client.call(
                args=[service.name], **bed.call_args(service, method)
            )
            results.append(result.results[0])

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results == ["s0", "s1", "s2", "s3"]


def test_poll_many_sweep_costs_scale_with_queue_count():
    """Popping an already-available frame charges one sweep across all
    polled queues: 8 queues cost ~8x the per-queue check of 1 queue."""
    from repro.net.packet import Frame

    def busy_for(n_queues):
        bed = build_bypass_testbed(n_queues=n_queues)
        # Pre-fill queue 0 so the poll finds a frame immediately (no
        # spin segment, just the sweep + rx charge).
        bed.nic.queues[0].ring.append(Frame(b"\x00" * 64))
        core = bed.machine.cores[0]
        state = {}

        def body():
            before = core.counters.busy_ns
            frame = yield bed.nic.poll_many_op(list(bed.nic.queues))
            state["busy"] = core.counters.busy_ns - before
            assert frame is not None

        process = bed.kernel.spawn_process("pmd")
        bed.kernel.spawn_thread(process, body(), pinned_core=0)
        bed.machine.run(until=1 * MS)
        return state["busy"]

    narrow = busy_for(1)
    wide = busy_for(8)
    rx = build_bypass_testbed().machine.params.nic.pmd_rx_instructions
    # wide - narrow == 7 extra per-queue checks' worth of work.
    assert wide > narrow * 1.5
    assert wide - narrow == pytest.approx(
        build_bypass_testbed().machine.cores[0].instructions_ns(60 * 7)
    )


def test_poll_many_rejects_empty():
    bed = build_bypass_testbed()
    with pytest.raises(ValueError):
        bed.nic.poll_many_op([])


def test_bypass_tx_counts():
    bed = build_bypass_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda args: list(args))
    bed.nic.steer_port(9000, 0)
    process = bed.kernel.spawn_process("pmd")
    bed.kernel.spawn_thread(
        process,
        bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx,
                      bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[1], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert bed.nic.stats.tx_frames == 1
    assert bed.machine.link.stats.mmio_writes == 1  # one doorbell
