"""ServiceLoad EWMA seeding regression + the per-tenant aggregate view."""

import pytest

from repro.nic.lauberhorn.loadstats import LoadStats, ServiceLoad


def test_zero_gap_seed_is_not_mistaken_for_unset():
    """Regression: a same-instant burst seeds the EWMA at 0.0 ns, which
    used to be indistinguishable from "never seeded" — the next nonzero
    gap silently re-seeded the estimate instead of decaying into it."""
    load = ServiceLoad(1)
    load.note_arrival(0.0)
    load.note_arrival(0.0)          # zero gap: seeded at 0.0
    assert load.ewma_seeded
    assert load.arrival_rate_per_sec() == float("inf")
    load.note_arrival(100.0)        # decays: 0 + 0.2 * (100 - 0)
    assert load.ewma_interarrival_ns == pytest.approx(20.0)
    assert load.arrival_rate_per_sec() == pytest.approx(1e9 / 20.0)


def test_unseeded_load_reports_zero_rate():
    load = ServiceLoad(1)
    assert load.arrival_rate_per_sec() == 0.0
    load.note_arrival(50.0)         # first arrival: no gap yet
    assert not load.ewma_seeded
    assert load.arrival_rate_per_sec() == 0.0


def test_aggregate_sums_over_a_tenants_services():
    stats = LoadStats()
    a, b = stats.service(1), stats.service(2)
    a.arrivals, a.completed, a.backlog_now = 5, 4, 1
    b.arrivals, b.dropped = 3, 2
    totals = stats.aggregate([1, 2, 99])   # unknown ids are ignored
    assert totals["arrivals"] == 8
    assert totals["completed"] == 4
    assert totals["dropped"] == 2
    assert totals["backlog_now"] == 1
