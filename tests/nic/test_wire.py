"""Unit + property tests for Lauberhorn CONTROL line encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nic.lauberhorn import wire


LINE = 128  # Enzian ECI line size


def test_small_request_fits_inline():
    ctrl, aux = wire.encode_request(
        LINE, service_id=3, method_id=7, code_ptr=0x4000, data_ptr=0x7000,
        tag=99, payload=b"args",
    )
    assert len(ctrl) == LINE
    assert aux == []
    line = wire.decode_request_line(ctrl)
    assert line.is_request and not line.is_tryagain
    assert line.service_id == 3 and line.method_id == 7
    assert line.code_ptr == 0x4000 and line.data_ptr == 0x7000
    assert line.tag == 99
    assert line.inline == b"args"
    assert line.n_aux == 0


def test_request_spills_to_aux_lines():
    payload = bytes(range(256)) * 2  # 512 B
    ctrl, aux = wire.encode_request(
        LINE, 1, 1, 0, 0, 5, payload,
    )
    line = wire.decode_request_line(ctrl)
    expected_aux = wire.lines_needed(len(payload), LINE)
    assert line.n_aux == len(aux) == expected_aux
    assert wire.assemble_request_payload(line, aux) == payload


def test_lines_needed_boundaries():
    inline = wire.max_inline_payload(LINE)
    assert wire.lines_needed(inline, LINE) == 0
    assert wire.lines_needed(inline + 1, LINE) == 1
    assert wire.lines_needed(inline + LINE, LINE) == 1
    assert wire.lines_needed(inline + LINE + 1, LINE) == 2


def test_dma_fallback_has_no_aux():
    ctrl, aux = wire.encode_request(
        LINE, 1, 1, 0, 0, 5, b"x" * 10_000,
        flags=wire.FLAG_VALID_REQ | wire.FLAG_DMA_FALLBACK,
        dma_addr=0xCAFE000,
    )
    assert aux == []
    line = wire.decode_request_line(ctrl)
    assert line.is_dma
    assert line.dma_addr == 0xCAFE000
    assert line.payload_len == 10_000
    assert line.inline == b""


def test_assemble_dma_rejected():
    ctrl, _ = wire.encode_request(
        LINE, 1, 1, 0, 0, 5, b"x" * 100,
        flags=wire.FLAG_VALID_REQ | wire.FLAG_DMA_FALLBACK, dma_addr=1,
    )
    line = wire.decode_request_line(ctrl)
    with pytest.raises(wire.WireFormatError):
        wire.assemble_request_payload(line, [])


def test_tryagain_retire_sched_hint_lines():
    ta = wire.decode_request_line(wire.tryagain_line(LINE))
    assert ta.is_tryagain and not ta.is_request and not ta.is_retire
    rt = wire.decode_request_line(wire.retire_line(LINE))
    assert rt.is_retire and not rt.is_request
    sh = wire.decode_request_line(wire.sched_hint_line(LINE, 42, backlog=9))
    assert sh.is_sched_hint
    assert sh.service_id == 42 and sh.payload_len == 9


def test_response_roundtrip_inline():
    ctrl, aux = wire.encode_response(LINE, tag=77, payload=b"result!")
    assert aux == []
    line, payload = wire.decode_response(ctrl, [])
    assert line.is_valid and line.tag == 77
    assert payload == b"result!"


def test_response_roundtrip_with_aux():
    big = b"z" * 500
    ctrl, aux = wire.encode_response(LINE, tag=1, payload=big)
    assert len(aux) == -(-(500 - (LINE - wire.RESP_INLINE_OFFSET)) // LINE)
    line, payload = wire.decode_response(ctrl, aux)
    assert payload == big


def test_response_truncated_aux_rejected():
    big = b"z" * 500
    ctrl, aux = wire.encode_response(LINE, tag=1, payload=big)
    with pytest.raises(wire.WireFormatError):
        wire.decode_response(ctrl, aux[:-1])


def test_kernel_dispatch_flag():
    ctrl, _ = wire.encode_request(
        LINE, 1, 1, 0, 0, 1, b"",
        flags=wire.FLAG_VALID_REQ | wire.FLAG_KERNEL_DISPATCH,
    )
    assert wire.decode_request_line(ctrl).is_kernel_dispatch


def test_short_line_rejected():
    with pytest.raises(wire.WireFormatError):
        wire.decode_request_line(b"\x00" * 10)
    with pytest.raises(wire.WireFormatError):
        wire.decode_response(b"\x00" * 4, [])


@given(st.binary(max_size=1500), st.integers(min_value=0, max_value=2**64 - 1))
def test_request_roundtrip_property(payload, tag):
    ctrl, aux = wire.encode_request(LINE, 9, 2, 0x40, 0x70, tag, payload)
    line = wire.decode_request_line(ctrl)
    assert line.tag == tag
    assert wire.assemble_request_payload(line, aux) == payload


@given(st.binary(max_size=1500))
def test_response_roundtrip_property(payload):
    ctrl, aux = wire.encode_response(LINE, 3, payload)
    _line, out = wire.decode_response(ctrl, aux)
    assert out == payload


@given(st.binary(max_size=300))
def test_cxl_64b_lines_roundtrip(payload):
    ctrl, aux = wire.encode_request(64, 1, 1, 0, 0, 1, payload)
    line = wire.decode_request_line(ctrl)
    assert wire.assemble_request_payload(line, aux) == payload
