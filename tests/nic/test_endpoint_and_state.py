"""Unit tests for endpoints, the sched table, load stats, and RSS."""

import pytest

from repro.hw import Region
from repro.nic import rss_hash, rss_queue_index
from repro.nic.lauberhorn import Endpoint, EndpointKind, SchedTable
from repro.nic.lauberhorn.endpoint import PendingRequest
from repro.nic.lauberhorn.loadstats import LoadStats


def make_endpoint(n_aux=4, line=128, backlog=2):
    region = Region(0x10000, Endpoint.region_size(line, n_aux))
    return Endpoint(
        endpoint_id=0,
        kind=EndpointKind.USER,
        region=region,
        line_bytes=line,
        n_aux=n_aux,
        service=None,
        backlog_capacity=backlog,
    )


def make_request(service=None, tag=1):
    class _Svc:
        service_id = 1
        name = "s"

    return PendingRequest(
        service=service or _Svc(),
        method_id=1,
        tag=tag,
        payload=b"",
        reply_ip=0,
        reply_port=0,
        reply_mac=None,
        born_ns=0.0,
        arrived_ns=0.0,
    )


def test_endpoint_line_layout_disjoint():
    ep = make_endpoint(n_aux=4)
    all_addrs = set(ep.ctrl_addrs) | set(ep.aux_addrs) | set(ep.resp_aux_addrs)
    assert len(all_addrs) == 2 + 4 + 4
    assert all(addr in ep.region for addr in all_addrs)


def test_region_size_covers_lines():
    assert Endpoint.region_size(128, 4) == (2 + 8) * 128


def test_parity_of():
    ep = make_endpoint()
    assert ep.parity_of(ep.ctrl_addrs[0]) == 0
    assert ep.parity_of(ep.ctrl_addrs[1]) == 1
    assert ep.parity_of(ep.ctrl_addrs[1] + 5) == 1
    with pytest.raises(ValueError):
        ep.parity_of(ep.aux_addrs[0])


def test_is_ctrl():
    ep = make_endpoint()
    assert ep.is_ctrl(ep.ctrl_addrs[0])
    assert not ep.is_ctrl(ep.aux_addrs[0])


def test_max_line_payload():
    ep = make_endpoint(n_aux=4, line=128)
    from repro.nic.lauberhorn.wire import max_inline_payload

    assert ep.max_line_payload() == max_inline_payload(128) + 4 * 128


def test_backlog_capacity_enforced():
    ep = make_endpoint(backlog=2)
    assert ep.push_backlog(make_request(tag=1))
    assert ep.push_backlog(make_request(tag=2))
    assert not ep.push_backlog(make_request(tag=3))
    assert ep.stats.backlog_peak == 2


def test_sched_table_tracks_switches():
    table = SchedTable()
    table.record_switch(0, 10)
    table.record_switch(1, 10)
    assert table.is_running(10)
    assert table.cores_of(10) == frozenset({0, 1})
    table.record_switch(0, 20)  # core 0 now runs pid 20
    assert table.cores_of(10) == frozenset({1})
    table.record_switch(1, 20)
    assert not table.is_running(10)
    assert table.updates == 4


def test_load_stats_ewma_rate():
    load = LoadStats()
    svc = load.service(1)
    for t in (0, 1000, 2000, 3000):
        svc.note_arrival(float(t))
    # 1 arrival per 1000ns = 1e6/s
    assert svc.arrival_rate_per_sec() == pytest.approx(1e6, rel=0.01)
    assert svc.arrivals == 4


def test_load_stats_hottest():
    load = LoadStats()
    slow = load.service(1)
    fast = load.service(2)
    for t in (0, 10_000):
        slow.note_arrival(float(t))
    for t in (0, 100):
        fast.note_arrival(float(t))
    assert load.hottest(1)[0].service_id == 2


def test_load_stats_most_backlogged():
    load = LoadStats()
    load.service(1).backlog_now = 3
    load.service(2).backlog_now = 9
    assert load.most_backlogged().service_id == 2
    load.service(2).backlog_now = 0
    load.service(1).backlog_now = 0
    assert load.most_backlogged() is None


def test_rss_deterministic_and_spread():
    h1 = rss_hash(1, 2, 3, 4)
    assert h1 == rss_hash(1, 2, 3, 4)
    assert h1 != rss_hash(1, 2, 3, 5)
    # Spread: many flows over 8 queues should touch most queues.
    queues = {
        rss_queue_index(0x0A000001, 0x0A000002, 40000 + i, 9000, 8)
        for i in range(64)
    }
    assert len(queues) >= 6


def test_rss_rejects_zero_queues():
    with pytest.raises(ValueError):
        rss_queue_index(1, 2, 3, 4, 0)
