"""Unit tests for the DMA-staged response CONTROL line format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nic.lauberhorn import wire

LINE = 128


def test_dma_response_roundtrip():
    ctrl = wire.encode_response_dma(LINE, tag=42, resp_len=9000,
                                    dma_addr=0xABCD000)
    line, payload = wire.decode_response(ctrl, [])
    assert line.is_valid and line.is_dma
    assert line.tag == 42
    assert line.resp_len == 9000
    assert line.dma_addr == 0xABCD000
    assert payload == b""


def test_dma_response_has_no_aux():
    ctrl = wire.encode_response_dma(LINE, tag=1, resp_len=100, dma_addr=1)
    line, _ = wire.decode_response(ctrl, [])
    assert line.n_aux == 0


def test_inline_response_not_flagged_dma():
    ctrl, aux = wire.encode_response(LINE, tag=1, payload=b"small")
    line, payload = wire.decode_response(ctrl, aux)
    assert not line.is_dma
    assert payload == b"small"


def test_dma_response_on_cxl_lines():
    ctrl = wire.encode_response_dma(64, tag=7, resp_len=5000, dma_addr=0x1000)
    line, _ = wire.decode_response(ctrl, [])
    assert line.dma_addr == 0x1000


@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_dma_response_roundtrip_property(tag, resp_len, dma_addr):
    ctrl = wire.encode_response_dma(LINE, tag=tag, resp_len=resp_len,
                                    dma_addr=dma_addr)
    line, _ = wire.decode_response(ctrl, [])
    assert (line.tag, line.resp_len, line.dma_addr) == (tag, resp_len, dma_addr)
