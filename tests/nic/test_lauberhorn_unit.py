"""Direct unit tests of LauberhornNic internals (no full testbed)."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.sim import MS


def test_create_endpoint_requires_service_for_user():
    bed = build_lauberhorn_testbed()
    with pytest.raises(ValueError):
        bed.nic.create_endpoint(EndpointKind.USER)


def test_create_endpoint_registers_all_lines():
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service, n_aux=4)
    for addr in (*ep.ctrl_addrs, *ep.aux_addrs, *ep.resp_aux_addrs):
        assert bed.machine.fabric.is_homed(addr)
        assert bed.nic._by_line[addr - addr % ep.line_bytes] is ep


def test_kernel_endpoint_needs_no_service():
    bed = build_lauberhorn_testbed()
    ep = bed.nic.create_endpoint(EndpointKind.KERNEL)
    assert ep.service is None
    assert ep in bed.nic._kernel_endpoints


def test_lauberhorn_requires_coherent_machine():
    from repro.hw import ENZIAN_PCIE, Machine
    from repro.net.headers import MacAddress
    from repro.net.link import SwitchFabric
    from repro.nic.lauberhorn import LauberhornNic
    from repro.rpc.service import ServiceRegistry

    machine = Machine(ENZIAN_PCIE)
    switch = SwitchFabric(machine.sim)
    port = switch.attach(MacAddress(1), "x")
    with pytest.raises(ValueError):
        LauberhornNic(machine, port, ServiceRegistry(), mac=MacAddress(1), ip=1)


def test_send_tryagain_and_retire_noop_when_not_parked():
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    assert not bed.nic.send_tryagain(ep)
    assert not bed.nic.retire(ep)


def test_completion_signal_noop_without_inflight():
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    assert not bed.nic.completion_signal(ep)


def test_aux_line_fill_answers_immediately():
    """AUX lines are ordinary device-homed data: a fill must not park."""
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.machine.fabric.device_write(ep.aux_addrs[0], b"AUXDATA")
    got = []

    def loader():
        data = yield from bed.machine.cores[0].load_line(ep.aux_addrs[0])
        got.append((bed.sim.now, data[:7]))

    bed.sim.process(loader())
    bed.machine.run(until=1 * MS)
    time, data = got[0]
    assert data == b"AUXDATA"
    assert time < 2000  # one fill round trip, not a parked load


def test_sched_push_cost_declared():
    bed = build_lauberhorn_testbed()
    assert bed.nic.sched_push_instructions > 0


def test_dma_threshold_boundary():
    """Payloads exactly at the threshold take DMA; one byte under stays
    on lines (given enough AUX capacity)."""
    bed = build_lauberhorn_testbed(n_aux=64, dma_threshold_bytes=2048)
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: ["ok"])
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service, n_aux=64)
    from repro.os.nicsched import lauberhorn_user_loop

    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    from repro.workloads.distributions import args_for_payload

    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=args_for_payload(2047),
                               **bed.call_args(service, method))
        assert bed.nic.lstats.dma_fallbacks == 0
        yield from client.call(args=args_for_payload(2048),
                               **bed.call_args(service, method))
        assert bed.nic.lstats.dma_fallbacks == 1

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert bed.nic.lstats.responses_sent == 2
