"""Unit tests for the shared NIC TX engine."""

from repro.hw import ENZIAN, Machine
from repro.net.headers import MacAddress
from repro.net.link import SwitchFabric
from repro.net.packet import build_udp_frame
from repro.nic.base import BaseNic
from repro.sim import MS

MAC_A = MacAddress.from_string("02:00:00:00:00:01")
MAC_B = MacAddress.from_string("02:00:00:00:00:02")


class _TxOnlyNic(BaseNic):
    """Minimal concrete NIC: no RX, fixed per-frame TX pipeline cost."""

    def __init__(self, machine, port, tx_cost_ns=100.0):
        super().__init__(machine, port, name="txnic")
        self.tx_cost_ns = tx_cost_ns

    def _rx_loop(self):
        yield self.sim.timeout(0)

    def _tx_frame(self, frame):
        yield self.sim.timeout(self.tx_cost_ns)


def _frame(tag):
    return build_udp_frame(MAC_A, MAC_B, 1, 2, 10, 20, bytes([tag]) * 10)


def test_tx_engine_preserves_order_and_counts():
    machine = Machine(ENZIAN)
    switch = SwitchFabric(machine.sim)
    port = switch.attach(MAC_A)
    peer = switch.attach(MAC_B)
    nic = _TxOnlyNic(machine, port)
    nic.start()
    nic.start()  # idempotent

    for tag in (1, 2, 3):
        nic.queue_tx(_frame(tag))
    received = []

    def receiver():
        for _ in range(3):
            frame = yield from peer.receive()
            received.append(frame.data[-1])

    machine.sim.process(receiver())
    machine.run(until=1 * MS)
    assert received == [1, 2, 3]
    assert nic.stats.tx_frames == 3


def test_tx_pipeline_cost_spaces_frames():
    machine = Machine(ENZIAN)
    switch = SwitchFabric(machine.sim)
    port = switch.attach(MAC_A)
    peer = switch.attach(MAC_B)
    nic = _TxOnlyNic(machine, port, tx_cost_ns=5000.0)
    nic.start()
    nic.queue_tx(_frame(1))
    nic.queue_tx(_frame(2))
    times = []

    def receiver():
        for _ in range(2):
            yield from peer.receive()
            times.append(machine.sim.now)

    machine.sim.process(receiver())
    machine.run(until=1 * MS)
    assert times[1] - times[0] >= 5000.0
