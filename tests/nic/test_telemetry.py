"""Unit tests for the NIC telemetry ring."""

import pytest

from repro.nic.lauberhorn.telemetry import RpcTimeline, TelemetryRing


def test_timeline_stage_math():
    timeline = RpcTimeline(tag=1, service_id=1, arrived_ns=100,
                           delivered_ns=150, completed_ns=650, sent_ns=700)
    assert timeline.queueing_ns == 50
    assert timeline.service_ns == 500
    assert timeline.egress_ns == 50
    assert timeline.total_ns == 600


def test_timeline_partial_stages_none():
    timeline = RpcTimeline(tag=1, service_id=1, arrived_ns=0)
    assert timeline.queueing_ns is None
    assert timeline.service_ns is None
    assert timeline.total_ns is None


def test_ring_lifecycle():
    ring = TelemetryRing()
    ring.on_arrival(7, service_id=3, now_ns=10)
    ring.on_delivery(7, now_ns=20, via_kernel=True)
    ring.on_completion(7, now_ns=120)
    ring.on_sent(7, now_ns=130)
    assert len(ring.completed) == 1
    timeline = ring.completed[0]
    assert timeline.via_kernel
    assert timeline.total_ns == 120
    assert ring.kernel_dispatch_fraction() == 1.0


def test_ring_ignores_unknown_tags():
    ring = TelemetryRing()
    ring.on_delivery(99, 1.0, False)
    ring.on_completion(99, 2.0)
    ring.on_sent(99, 3.0)
    assert not ring.completed


def test_ring_capacity_eviction():
    ring = TelemetryRing(capacity=2)
    for tag in range(4):
        ring.on_arrival(tag, 1, float(tag))
        ring.on_delivery(tag, float(tag) + 1, False)
        ring.on_completion(tag, float(tag) + 2)
        ring.on_sent(tag, float(tag) + 3)
    assert len(ring.completed) == 2
    assert ring.dropped == 2
    assert [t.tag for t in ring.completed] == [2, 3]


def test_ring_tag_reuse_retires_stale_timeline():
    ring = TelemetryRing()
    ring.on_arrival(5, 1, 0.0)
    ring.on_delivery(5, 1.0, False)
    # A retransmission reuses the tag before the original completed:
    # the stale timeline must be retired, not silently overwritten.
    ring.on_arrival(5, 1, 10.0)
    assert ring.reused == 1
    assert len(ring.completed) == 1
    stale = ring.completed[0]
    assert stale.arrived_ns == 0.0 and stale.sent_ns is None
    # The fresh timeline is intact and completes normally.
    ring.on_delivery(5, 11.0, True)
    ring.on_completion(5, 12.0)
    ring.on_sent(5, 13.0)
    assert len(ring.completed) == 2
    fresh = ring.completed[-1]
    assert fresh.arrived_ns == 10.0 and fresh.total_ns == 3.0
    assert ring.dropped == 0


def test_ring_reuse_eviction_keeps_dropped_exact():
    ring = TelemetryRing(capacity=1)
    ring.on_arrival(1, 1, 0.0)
    ring.on_arrival(1, 1, 5.0)   # retires the stale entry (ring now full)
    ring.on_arrival(2, 1, 6.0)
    ring.on_sent(2, 7.0)          # retiring tag 2 evicts the stale entry
    ring.on_sent(1, 8.0)          # retiring tag 1 evicts tag 2's
    assert ring.reused == 1
    assert ring.dropped == 2
    assert len(ring.completed) == 1
    assert ring.completed[0].tag == 1


def test_ring_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TelemetryRing(capacity=0)


def test_breakdown_filters_by_service():
    ring = TelemetryRing()
    for tag, service in ((1, 10), (2, 20)):
        ring.on_arrival(tag, service, 0.0)
        ring.on_delivery(tag, 10.0 * service, False)
        ring.on_completion(tag, 10.0 * service + 5)
        ring.on_sent(tag, 10.0 * service + 6)
    assert len(ring.for_service(10)) == 1
    breakdown = ring.breakdown(10)
    assert breakdown["queueing"].p50 == 100.0
    assert ring.breakdown(20)["queueing"].p50 == 200.0
    # Combined view covers both.
    assert ring.breakdown()["queueing"].count == 2
