"""Failure-injection tests: corrupted frames, unknown methods,
malformed payloads, and backlog overflow must degrade gracefully —
counted and answered (or dropped), never crashing a worker or wedging
an end-point.
"""

import pytest

from repro.experiments import build_lauberhorn_testbed, build_linux_testbed
from repro.net.packet import Frame, build_udp_frame
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import lauberhorn_user_loop
from repro.rpc.message import RpcHeader, RpcMessage, RpcType
from repro.rpc.server import linux_udp_worker
from repro.sim import MS


def lauberhorn_echo(bed, port=9000, backlog_capacity=None):
    service = bed.registry.create_service("echo", udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=300
    )
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    kwargs = {}
    if backlog_capacity is not None:
        kwargs["backlog_capacity"] = backlog_capacity
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service, **kwargs)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    return service, method, ep


def raw_send(bed, payload, port=9000):
    client = bed.clients[0]
    frame = build_udp_frame(
        client.mac, bed.server_mac, client.ip, bed.server_ip,
        40_000, port, payload, born_ns=bed.sim.now,
    )
    bed.sim.process(client.port.send(frame))


def test_garbage_frame_dropped_not_fatal():
    bed = build_lauberhorn_testbed()
    service, method, _ep = lauberhorn_echo(bed)
    raw_send(bed, b"\xde\xad\xbe\xef" * 4)  # not an RPC message
    bed.machine.run(until=5 * MS)
    assert bed.nic.stats.rx_dropped == 1
    # The end-point still serves real traffic afterwards.
    client = bed.clients[0]
    results = []

    def driver():
        result = yield from client.call(args=[1], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=20 * MS)
    assert results and results[0].results == [1]


def test_unknown_method_gets_error_response():
    bed = build_lauberhorn_testbed()
    service, _method, _ep = lauberhorn_echo(bed)
    from repro.rpc.marshal import marshal_args

    message = RpcMessage.request(service.service_id, 99, 7, marshal_args([1]))
    raw_send(bed, message.pack())
    bed.machine.run(until=20 * MS)
    # The worker answered (with an error marker) instead of dying.
    assert bed.nic.lstats.responses_sent == 1
    client = bed.clients[0]
    assert client.parse_errors == 0


def test_malformed_args_payload_answered_with_error():
    bed = build_lauberhorn_testbed()
    service, method, ep = lauberhorn_echo(bed)
    message = RpcMessage.request(
        service.service_id, method.method_id, 8, b"\xff\xff\xff"
    )
    raw_send(bed, message.pack())
    bed.machine.run(until=20 * MS)
    assert bed.nic.lstats.responses_sent == 1
    assert ep.stats.completed == 1
    # And the loop still works for well-formed traffic.
    client = bed.clients[0]
    done = []

    def driver():
        result = yield from client.call(args=["ok"], **bed.call_args(service, method))
        done.append(result.results)

    bed.sim.process(driver())
    bed.machine.run(until=40 * MS)
    assert done == [["ok"]]


def test_linux_worker_survives_malformed_args():
    bed = build_linux_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda args: list(args))
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("echo")
    bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
    message = RpcMessage.request(service.service_id, method.method_id, 3, b"\x01\x99")
    raw_send(bed, message.pack())
    bed.machine.run(until=20 * MS)
    # Error response went back out through the kernel TX path.
    assert bed.nic.stats.tx_frames == 1
    client = bed.clients[0]
    done = []

    def driver():
        result = yield from client.call(args=[5], **bed.call_args(service, method))
        done.append(result.results)

    bed.sim.process(driver())
    bed.machine.run(until=40 * MS)
    assert done == [[5]]


def test_endpoint_backlog_overflow_spills_to_kernel_queue():
    """When an end-point's backlog fills while the worker is stuck in a
    long handler, further requests spill to the global queue (and the
    load stats record the pressure) instead of being lost silently."""
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("slow", udp_port=9000)
    method = bed.registry.add_method(
        service, "m", lambda args: list(args), cost_instructions=5_000_000
    )
    process = bed.kernel.spawn_process("slow")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(
        EndpointKind.USER, service=service, backlog_capacity=2
    )
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(6):
            client.send_request(
                bed.server_mac, bed.server_ip, 9000,
                service.service_id, method.method_id, [i],
            )

    bed.sim.process(driver())
    bed.machine.run(until=3 * MS)
    # 1 delivered (in the slow handler), 2 in the endpoint backlog, the
    # rest spilled to the global queue.
    assert len(ep.backlog) == 2
    assert len(bed.nic.global_backlog) == 3
    assert bed.nic.lstats.queued_global == 3
    load = bed.nic.load.service(service.service_id)
    assert load.backlog_now == 5


def test_truncated_rpc_header_dropped():
    bed = build_lauberhorn_testbed()
    lauberhorn_echo(bed)
    raw_send(bed, RpcHeader(RpcType.REQUEST, 1, 1, 1, 0).pack()[:10])
    bed.machine.run(until=5 * MS)
    assert bed.nic.stats.rx_dropped == 1


def test_request_to_unregistered_port_counted():
    bed = build_lauberhorn_testbed()
    lauberhorn_echo(bed, port=9000)
    message = RpcMessage.request(1, 1, 1, b"")
    raw_send(bed, message.pack(), port=9999)
    bed.machine.run(until=5 * MS)
    assert bed.nic.lstats.dropped_no_service == 1
