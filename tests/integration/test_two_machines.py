"""Two fully-simulated machines: a Linux client host calling a
Lauberhorn server host through the switch.

Unlike the ClientNode (an infinitely fast traffic source), the client
here is a complete machine: its worker thread pays syscalls, its DMA
NIC pays doorbells and descriptor DMA, its kernel takes interrupts for
the response.  This validates that the two OS/NIC stacks interoperate
over byte-exact wire frames.
"""

import pytest

from repro.hw import ENZIAN, ENZIAN_PCIE, Machine
from repro.net.headers import MacAddress
from repro.net.link import SwitchFabric
from repro.net.packet import ip_address
from repro.nic.dma import DmaNic
from repro.nic.lauberhorn import EndpointKind, LauberhornNic
from repro.os import Kernel, NetStack, ops
from repro.os.nicsched import lauberhorn_user_loop
from repro.rpc.marshal import marshal_args, unmarshal_args
from repro.rpc.message import RpcMessage, RpcType
from repro.rpc.service import ServiceRegistry
from repro.sim import MS, Simulator

SERVER_MAC = MacAddress.from_string("02:00:00:00:00:01")
SERVER_IP = ip_address("10.0.0.1")
CLIENT_MAC = MacAddress.from_string("02:00:00:00:00:02")
CLIENT_IP = ip_address("10.0.0.2")


def build_two_machines():
    sim = Simulator()
    switch = SwitchFabric(sim)

    # Server: Enzian + Lauberhorn.
    server = Machine(ENZIAN, sim=sim)
    server_kernel = Kernel(server)
    registry = ServiceRegistry()
    server_port = switch.attach(SERVER_MAC, "server")
    lauberhorn = LauberhornNic(
        server, server_port, registry, mac=SERVER_MAC, ip=SERVER_IP
    )
    server_kernel.register_nic(lauberhorn)
    lauberhorn.start()
    server_kernel.start()

    # Client: modern PCIe box with the conventional stack.
    client = Machine(ENZIAN_PCIE, sim=sim)
    client_kernel = Kernel(client)
    client_net = NetStack(client_kernel, ip=CLIENT_IP, mac=CLIENT_MAC)
    client_net.add_neighbor(SERVER_IP, SERVER_MAC)
    client_port = switch.attach(CLIENT_MAC, "client")
    client_nic = DmaNic(client, client_port, n_queues=2)
    client_nic.attach_kernel(client_kernel)
    client_nic.start()
    client_kernel.start()

    return sim, (server, server_kernel, registry, lauberhorn), (
        client, client_kernel, client_net
    )


def client_caller(client_net, socket, service, method, n, results):
    """Thread body on the client machine: n sequential RPCs."""
    for i in range(n):
        request = RpcMessage.request(
            service.service_id, method.method_id, i + 1, marshal_args([i])
        )
        yield ops.SendDatagram(
            socket, dst_ip=SERVER_IP, dst_port=service.udp_port,
            payload=request.pack(),
        )
        datagram = yield ops.RecvFromSocket(socket)
        response = RpcMessage.unpack(datagram.payload)
        assert response.header.rpc_type is RpcType.RESPONSE
        assert response.header.request_id == i + 1
        results.append(unmarshal_args(response.payload))


def test_linux_client_calls_lauberhorn_server():
    sim, (server, server_kernel, registry, lauberhorn), (
        client, client_kernel, client_net
    ) = build_two_machines()

    service = registry.create_service("echo", udp_port=9000)
    method = registry.add_method(
        service, "echo", lambda args: [args[0] * 2], cost_instructions=400
    )
    server_proc = server_kernel.spawn_process("echo")
    lauberhorn.register_service(service, server_proc.pid)
    endpoint = lauberhorn.create_endpoint(EndpointKind.USER, service=service)
    server_kernel.spawn_thread(
        server_proc, lauberhorn_user_loop(lauberhorn, endpoint, registry),
        pinned_core=0,
    )

    socket = client_net.bind(40_000)
    client_proc = client_kernel.spawn_process("caller")
    results = []
    thread = client_kernel.spawn_thread(
        client_proc,
        client_caller(client_net, socket, service, method, 5, results),
    )
    sim.run(until=200 * MS)
    assert thread.exit_event.triggered
    assert results == [[0], [2], [4], [6], [8]]
    assert lauberhorn.lstats.delivered_fast == 5
    # Both machines did real work.
    assert client.total_busy_ns() > 0
    assert server.total_busy_ns() > 0
    # The client paid the conventional stack's costs.
    assert client_kernel.stats.syscalls >= 10  # send+recv per RPC
    assert client.link.stats.interrupts >= 1
    # The server's data path stayed out of its kernel.
    assert server_kernel.stats.syscalls == 0


def test_two_lauberhorn_machines_rpc_each_other():
    """Symmetric deployment: both hosts run Lauberhorn; host A's worker
    uses a continuation end-point to call host B."""
    sim = Simulator()
    switch = SwitchFabric(sim)

    machines = {}
    for name, mac, ip in (("a", CLIENT_MAC, CLIENT_IP),
                          ("b", SERVER_MAC, SERVER_IP)):
        machine = Machine(ENZIAN, sim=sim)
        kernel = Kernel(machine)
        registry = ServiceRegistry()
        port = switch.attach(mac, name)
        nic = LauberhornNic(machine, port, registry, mac=mac, ip=ip)
        kernel.register_nic(nic)
        nic.start()
        kernel.start()
        machines[name] = (machine, kernel, registry, nic)

    _machine_b, kernel_b, registry_b, nic_b = machines["b"]
    service_b = registry_b.create_service("backend", udp_port=9001)
    method_b = registry_b.add_method(
        service_b, "m", lambda args: [f"b:{args[0]}"], cost_instructions=300
    )
    proc_b = kernel_b.spawn_process("backend")
    nic_b.register_service(service_b, proc_b.pid)
    ep_b = nic_b.create_endpoint(EndpointKind.USER, service=service_b)
    kernel_b.spawn_thread(
        proc_b, lauberhorn_user_loop(nic_b, ep_b, registry_b), pinned_core=0
    )

    _machine_a, kernel_a, _registry_a, nic_a = machines["a"]
    nic_a.create_continuation_pool(2)
    results = []

    def caller_body():
        from repro.os.nicsched import lauberhorn_nested_call
        from repro.net.packet import build_udp_frame

        # Cross-host call: the continuation machinery sends to B's MAC.
        tag, cont = nic_a.acquire_continuation()
        payload = marshal_args(["ping"])
        message = RpcMessage.request(
            service_b.service_id, method_b.method_id, tag, payload
        )
        frame = build_udp_frame(
            src_mac=CLIENT_MAC, dst_mac=SERVER_MAC,
            src_ip=CLIENT_IP, dst_ip=SERVER_IP,
            src_port=50_001, dst_port=9001, payload=message.pack(),
        )

        def _tx(core, thread):
            yield from nic_a.transmit(frame, core)
            return None

        yield ops.Call(_tx)
        from repro.nic.lauberhorn import wire
        from repro.os.nicsched import _gather_payload

        while True:
            line_data = yield ops.LoadLine(cont.ctrl_addrs[0])
            line = wire.decode_request_line(line_data)
            if line.is_request:
                break
            yield ops.EvictLine(cont.ctrl_addrs[0])
        reply_payload = yield from _gather_payload(nic_a, cont, line)
        yield ops.EvictLine(cont.ctrl_addrs[0])
        nic_a.release_continuation(tag, cont)
        results.append(unmarshal_args(reply_payload))

    proc_a = kernel_a.spawn_process("caller")
    kernel_a.spawn_thread(proc_a, caller_body(), pinned_core=0)
    sim.run(until=100 * MS)
    assert results == [["b:ping"]]
