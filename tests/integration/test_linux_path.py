"""End-to-end tests of the conventional kernel-stack RPC path.

Client -> switch -> DMA NIC -> IRQ -> softirq -> socket -> worker
thread -> handler -> sendmsg -> DMA TX -> switch -> client.
"""

import pytest

from repro.experiments import build_linux_testbed
from repro.rpc.server import linux_udp_worker
from repro.sim import MS, US


def setup_echo(bed, n_workers=1, port=9000, handler_cost=500):
    service = bed.registry.create_service("echo", udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    socket = bed.netstack.bind(port)
    process = bed.kernel.spawn_process("echo-server")
    process.service = service
    for i in range(n_workers):
        bed.kernel.spawn_thread(
            process,
            linux_udp_worker(socket, bed.registry),
            name=f"echo-w{i}",
        )
    return service, method, socket


def test_single_rpc_roundtrip():
    bed = build_linux_testbed()
    service, method, _sock = setup_echo(bed)
    client = bed.clients[0]
    results = []

    def driver():
        result = yield from client.call(
            args=[42, "ping"], **bed.call_args(service, method)
        )
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert len(results) == 1
    assert results[0].results == [42, "ping"]
    # RTT through kernel stack: several microseconds at least, < 1ms idle.
    assert 2 * US < results[0].rtt_ns < 1 * MS


def test_sequential_rpcs_all_complete():
    bed = build_linux_testbed()
    service, method, sock = setup_echo(bed)
    client = bed.clients[0]
    rtts = []

    def driver():
        for i in range(20):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            rtts.append(result.rtt_ns)
            assert result.results == [i]

    bed.sim.process(driver())
    bed.machine.run(until=200 * MS)
    assert len(rtts) == 20
    assert sock.stats.enqueued + sock.stats.delivered >= 20


def test_concurrent_rpcs_with_multiple_workers():
    bed = build_linux_testbed(n_clients=4)
    service, method, _sock = setup_echo(bed, n_workers=4)
    done = []

    def driver(client, n):
        for i in range(n):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            done.append(result)

    for client in bed.clients:
        bed.sim.process(driver(client, 10))
    bed.machine.run(until=500 * MS)
    assert len(done) == 40


def test_interrupts_and_softirq_observed():
    bed = build_linux_testbed()
    service, method, _sock = setup_echo(bed)
    client = bed.clients[0]

    def driver():
        yield from client.call(args=[1], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert bed.kernel.stats.irqs >= 1
    assert bed.machine.link.stats.dma_writes >= 2  # payload + descriptor
    assert bed.machine.link.stats.interrupts >= 1


def test_unknown_port_counted_and_dropped():
    bed = build_linux_testbed()
    setup_echo(bed, port=9000)
    client = bed.clients[0]
    # Send to a port nobody bound.
    client.send_request(
        bed.server_mac, bed.server_ip, 9999, service_id=1, method_id=1, args=[1]
    )
    bed.machine.run(until=10 * MS)
    assert bed.netstack.rx_no_socket == 1
    assert client.outstanding == 1  # never answered


def test_two_services_demultiplexed():
    bed = build_linux_testbed()
    s1, m1, _ = setup_echo(bed, port=9000)
    s2 = bed.registry.create_service("upper", udp_port=9001)
    m2 = bed.registry.add_method(
        s2, "upper", lambda args: [str(args[0]).upper()], cost_instructions=300
    )
    sock2 = bed.netstack.bind(9001)
    proc2 = bed.kernel.spawn_process("upper-server")
    bed.kernel.spawn_thread(proc2, linux_udp_worker(sock2, bed.registry))
    client = bed.clients[0]
    out = {}

    def driver():
        r1 = yield from client.call(args=["abc"], **bed.call_args(s1, m1))
        r2 = yield from client.call(args=["abc"], **bed.call_args(s2, m2))
        out["echo"] = r1.results
        out["upper"] = r2.results

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert out == {"echo": ["abc"], "upper": ["ABC"]}


def test_worker_blocks_idle_between_requests():
    bed = build_linux_testbed()
    service, method, _sock = setup_echo(bed)
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(5 * MS)
        yield from client.call(args=[1], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=20 * MS)
    # During the 5ms idle gap the worker is blocked, not spinning:
    # total busy time must be far below one core-5ms.
    assert bed.machine.total_busy_ns() < 1 * MS
