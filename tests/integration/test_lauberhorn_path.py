"""End-to-end tests of the Lauberhorn fast path and kernel dispatch.

These exercise the Figure 4 protocol against the coherence fabric:
blocked loads, delivery-by-fill, completion via the alternate CONTROL
line, fetch-exclusive response extraction, Tryagain, Retire, promotion,
and the DMA fallback for large messages.
"""

import pytest

from repro.experiments import (
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import NicScheduler, lauberhorn_user_loop
from repro.rpc.server import bypass_worker, linux_udp_worker
from repro.sim import MS, US


def setup_service(bed, name="echo", port=9000, handler_cost=500, user_loop=True,
                  pinned_core=0, max_requests=None):
    service = bed.registry.create_service(name, udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    process = bed.kernel.spawn_process(f"{name}-server")
    process.service = service
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    thread = None
    if user_loop:
        thread = bed.kernel.spawn_thread(
            process,
            lauberhorn_user_loop(
                bed.nic, endpoint, bed.registry, max_requests=max_requests
            ),
            name=f"{name}-lbloop",
            pinned_core=pinned_core,
        )
    return service, method, endpoint, process, thread


def test_single_rpc_fast_path():
    bed = build_lauberhorn_testbed()
    service, method, ep, _proc, _t = setup_service(bed)
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)  # let the loop arm first
        result = yield from client.call(
            args=[11, "ping"], **bed.call_args(service, method)
        )
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=20 * MS)
    assert len(results) == 1
    assert results[0].results == [11, "ping"]
    assert bed.nic.lstats.delivered_fast == 1
    assert bed.nic.lstats.responses_sent == 1


def test_fast_path_rtt_beats_bypass_and_linux():
    """The headline claim: Lauberhorn < bypass < Linux for small RPCs."""

    def run_lauberhorn():
        bed = build_lauberhorn_testbed()
        service, method, *_ = setup_service(bed)
        return _measure(bed, service, method, n=10)

    def run_bypass():
        bed = build_bypass_testbed()
        service = bed.registry.create_service("echo", udp_port=9000)
        method = bed.registry.add_method(
            service, "echo", lambda args: list(args), cost_instructions=500
        )
        process = bed.kernel.spawn_process("echo-server")
        bed.kernel.spawn_thread(
            process,
            bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx, bed.registry),
            pinned_core=0,
        )
        bed.nic.steer_port(9000, 0)
        return _measure(bed, service, method, n=10)

    def run_linux():
        bed = build_linux_testbed()
        service = bed.registry.create_service("echo", udp_port=9000)
        method = bed.registry.add_method(
            service, "echo", lambda args: list(args), cost_instructions=500
        )
        socket = bed.netstack.bind(9000)
        process = bed.kernel.spawn_process("echo-server")
        bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
        return _measure(bed, service, method, n=10)

    def _measure(bed, service, method, n):
        client = bed.clients[0]
        rtts = []

        def driver():
            yield bed.sim.timeout(10_000)
            for i in range(n):
                result = yield from client.call(
                    args=[i], **bed.call_args(service, method)
                )
                rtts.append(result.rtt_ns)

        bed.sim.process(driver())
        bed.machine.run(until=500 * MS)
        assert len(rtts) == n
        return sum(rtts[1:]) / (n - 1)

    lauberhorn_rtt = run_lauberhorn()
    bypass_rtt = run_bypass()
    linux_rtt = run_linux()
    assert lauberhorn_rtt < bypass_rtt < linux_rtt


def test_pipelined_requests_alternate_control_lines():
    bed = build_lauberhorn_testbed()
    service, method, ep, *_ = setup_service(bed)
    client = bed.clients[0]
    done = []

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(8):
            result = yield from client.call(
                args=[i], **bed.call_args(service, method)
            )
            done.append(result.results[0])

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert done == list(range(8))
    assert ep.stats.delivered == 8
    assert ep.stats.completed == 8
    # The fabric saw recalls (fetch-exclusive response extraction).
    assert bed.machine.fabric.stats.recalls >= 8


def test_blocked_load_is_stall_not_busy():
    """The energy story: an idle Lauberhorn worker stalls, it does not
    spin.  (Compare test_spinning_burns_cpu_while_idle for bypass.)"""
    bed = build_lauberhorn_testbed()
    setup_service(bed)
    bed.machine.run(until=10 * MS)
    core0 = bed.machine.cores[0]
    assert core0.stall_ns_now() > 9 * MS
    assert core0.counters.busy_ns < 0.5 * MS


def test_tryagain_fires_at_timeout():
    bed = build_lauberhorn_testbed(tryagain_timeout_ns=2 * MS)
    service, method, ep, *_ = setup_service(bed)
    bed.machine.run(until=7 * MS)
    # ~3 tryagains in 7ms at a 2ms timeout: the loop re-arms each time.
    assert 2 <= ep.stats.tryagains <= 4
    assert bed.nic.lstats.tryagains == ep.stats.tryagains


def test_request_after_tryagain_still_served():
    bed = build_lauberhorn_testbed(tryagain_timeout_ns=1 * MS)
    service, method, ep, *_ = setup_service(bed)
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(5 * MS)  # several tryagain cycles pass
        result = yield from client.call(args=["late"], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=20 * MS)
    assert results and results[0].results == ["late"]


def test_kernel_dispatch_when_no_user_loop():
    bed = build_lauberhorn_testbed()
    service, method, ep, process, _ = setup_service(bed, user_loop=False)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1, promote=False)
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        result = yield from client.call(args=[5], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert results and results[0].results == [5]
    assert bed.nic.lstats.delivered_kernel == 1
    assert bed.nic.lstats.delivered_fast == 0


def test_promotion_moves_service_to_fast_path():
    bed = build_lauberhorn_testbed()
    # Service with a user endpoint but no thread arming it: the kernel
    # dispatcher should serve request 1, then promote into the user loop.
    service, method, ep, process, _ = setup_service(bed, user_loop=False)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1, promote=True)
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(5):
            result = yield from client.call(args=[i], **bed.call_args(service, method))
            results.append(result.results[0])

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results == [0, 1, 2, 3, 4]
    assert bed.nic.lstats.delivered_kernel >= 1
    # After promotion, later requests ride the fast path.
    assert bed.nic.lstats.delivered_fast >= 3


def test_backlog_served_on_next_load():
    """A request arriving while the worker is mid-handler queues on the
    end-point and is delivered by the *next* CONTROL load, with no
    kernel involvement."""
    bed = build_lauberhorn_testbed()
    service, method, ep, *_ = setup_service(bed, handler_cost=200_000)  # slow
    client = bed.clients[0]
    done = []

    def driver():
        yield bed.sim.timeout(10_000)
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, 9000,
                service.service_id, method.method_id, [i],
            )
            for i in range(4)
        ]
        for event in events:
            result = yield event
            done.append(result.results[0])

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert sorted(done) == [0, 1, 2, 3]
    assert bed.nic.lstats.queued_endpoint >= 1
    assert bed.kernel.stats.syscalls == 0  # never touched the kernel


def test_dma_fallback_for_large_payload():
    bed = build_lauberhorn_testbed(dma_threshold_bytes=1024)
    service, method, ep, *_ = setup_service(bed)
    client = bed.clients[0]
    big = b"x" * 3000
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        result = yield from client.call(args=[big], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results and results[0].results == [big]
    # An echo above the threshold takes the DMA fallback both ways:
    # request delivery and response staging.
    assert bed.nic.lstats.dma_fallbacks == 2
    assert bed.machine.link.stats.dma_writes >= 1
    assert bed.machine.link.stats.dma_reads >= 1


def test_aux_lines_for_medium_payload():
    bed = build_lauberhorn_testbed()  # threshold 4096
    service, method, ep, *_ = setup_service(bed)
    client = bed.clients[0]
    medium = b"y" * 600  # > 80 B inline, < 4 KiB: AUX lines
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        result = yield from client.call(args=[medium], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results and results[0].results == [medium]
    assert bed.nic.lstats.dma_fallbacks == 0


def test_retire_reclaims_dispatcher():
    bed = build_lauberhorn_testbed()
    sched = NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1)
    handle = sched.dispatchers[0]
    bed.machine.run(until=1 * MS)  # dispatcher parks
    assert handle.endpoint.armed
    assert sched.retire_dispatcher()
    bed.machine.run(until=2 * MS)
    assert handle.thread.exit_event.triggered
    assert bed.nic.lstats.retires == 1


def test_preempt_on_backlog_reclaims_idle_user_loop():
    """Dynamic adaptation: service B's request arrives while only
    service A's user loop is armed; the NIC tryagains A's loop so the
    kernel can serve B."""
    bed = build_lauberhorn_testbed()
    svc_a, m_a, ep_a, *_ = setup_service(bed, name="hot", port=9000, pinned_core=0)
    svc_b = bed.registry.create_service("cold", udp_port=9001)
    m_b = bed.registry.add_method(svc_b, "work", lambda args: list(args))
    proc_b = bed.kernel.spawn_process("cold-server")
    bed.nic.register_service(svc_b, proc_b.pid)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=0)
    # No dispatcher is parked; B's request must preempt A's armed loop
    # ... but with no dispatcher nothing serves B.  Add one busy-able
    # dispatcher pinned to core 0?  No: the point is the tryagain path.
    # Spawn a dispatcher that is currently *inside* A's promoted loop is
    # complex; here we verify the NIC-side preemption trigger fires.
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        client.send_request(
            bed.server_mac, bed.server_ip, 9001,
            svc_b.service_id, m_b.method_id, ["x"],
        )

    bed.sim.process(driver())
    bed.machine.run(until=5 * MS)
    assert bed.nic.lstats.preempt_requests == 1
    assert bed.nic.lstats.tryagains >= 1
    assert len(bed.nic.global_backlog) == 1


def test_sched_state_pushed_on_context_switch():
    bed = build_lauberhorn_testbed()
    setup_service(bed)
    bed.machine.run(until=1 * MS)
    assert bed.nic.sched.updates >= 1
    # The user-loop process shows as running on core 0.
    pid = bed.kernel.processes[-1].pid
    assert bed.nic.sched.is_running(pid)
