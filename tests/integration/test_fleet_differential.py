"""Differential harness: a 1-host fleet IS the legacy testbed.

The fleet builder promises that one host on a degenerate 1-ToR
topology replays the single-machine testbeds *byte-identically* —
same construction order, same names (so the same name-derived fault
streams), same seed draws.  This pins that promise for all four
stacks, calm and under an active loss+stall fault plan, comparing
full per-request RTT vectors and complete metrics snapshots.

(The E1-E18 golden corpus and the E19-E21 digest pins ride on the
same refactored testbed assembly, so `tests/golden` extends this
differential back over every experiment's recorded outputs.)
"""

import pytest

from repro.experiments.four_stacks import HANDLER_COST, STACKS, _build_stack
from repro.faults.context import active
from repro.faults.plan import FaultPlan
from repro.fleet import HostSpec, build_fleet
from repro.obs import bind_testbed_metrics
from repro.sim.clock import MS

FAULT_SPEC = "seed=3,loss=0.02,stall=0.02"


def _drive(bed, run, service, method, n_requests):
    """The four-stacks driver, generic over Testbed and Host."""
    client = bed.clients[0]
    rtts = []

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[0], **bed.call_args(service, method))
        for i in range(n_requests):
            result = yield client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            rtts.append(result.rtt_ns)

    bed.sim.process(driver())
    run(until=500 * MS)
    return rtts


def _legacy_run(stack, n_requests):
    bed, service, method = _build_stack(stack)
    rtts = _drive(bed, bed.machine.run, service, method, n_requests)
    return rtts, bind_testbed_metrics(bed).snapshot()


def _fleet_run(stack, n_requests):
    fleet = build_fleet([HostSpec(stack=stack)])
    [deployment] = fleet.deploy(cost_instructions=HANDLER_COST)
    rtts = _drive(fleet.hosts[0], fleet.run,
                  deployment.service, deployment.method, n_requests)
    # A Host is a Testbed: binding it uses the legacy prefixes, so the
    # snapshot is comparable key-for-key with the single-machine bed.
    return rtts, bind_testbed_metrics(fleet.hosts[0]).snapshot()


@pytest.mark.parametrize("stack", STACKS)
def test_one_host_fleet_is_byte_identical_calm(stack):
    legacy_rtts, legacy_metrics = _legacy_run(stack, 30)
    fleet_rtts, fleet_metrics = _fleet_run(stack, 30)
    assert len(legacy_rtts) == 30
    assert fleet_rtts == legacy_rtts
    assert fleet_metrics == legacy_metrics


@pytest.mark.parametrize("stack", STACKS)
def test_one_host_fleet_is_byte_identical_faulted(stack):
    with active(FaultPlan.from_spec(FAULT_SPEC)):
        legacy_rtts, legacy_metrics = _legacy_run(stack, 40)
    with active(FaultPlan.from_spec(FAULT_SPEC)):
        fleet_rtts, fleet_metrics = _fleet_run(stack, 40)
    assert len(legacy_rtts) == 40
    assert fleet_rtts == legacy_rtts
    assert fleet_metrics == legacy_metrics


def test_differential_would_catch_a_perturbation():
    """Sanity that RTT-vector equality is a sharp instrument: a fleet
    whose switch is 50 ns slower does NOT replay the legacy bed."""
    legacy_rtts, _ = _legacy_run("lauberhorn", 20)
    fleet = build_fleet([HostSpec(stack="lauberhorn")],
                        switch_latency_ns=300.0)
    [deployment] = fleet.deploy(cost_instructions=HANDLER_COST)
    perturbed = _drive(fleet.hosts[0], fleet.run,
                       deployment.service, deployment.method, 20)
    assert perturbed != legacy_rtts
