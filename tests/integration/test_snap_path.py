"""End-to-end tests of the Snap-style dedicated-engine stack."""

import pytest

from repro.experiments import build_bypass_testbed
from repro.rpc.snap import SnapEngine, snap_engine_body, snap_worker_body
from repro.sim import MS


def build_snap(bed, n_services=1, handler_cost=500):
    engine = SnapEngine(bed.sim, bed.registry, bed.user_netctx)
    services = []
    for index in range(n_services):
        service = bed.registry.create_service(f"s{index}", udp_port=9000 + index)
        method = bed.registry.add_method(
            service, "m", lambda args: list(args), cost_instructions=handler_cost
        )
        bed.nic.steer_port(9000 + index, 0)
        services.append((service, method))
    engine_proc = bed.kernel.spawn_process("snap-engine")
    bed.kernel.spawn_thread(
        engine_proc,
        snap_engine_body(bed.nic, [bed.nic.queues[0]], engine),
        name="snap-engine",
        pinned_core=0,
    )
    for index, (service, _method) in enumerate(services):
        worker_proc = bed.kernel.spawn_process(f"s{index}-worker")
        bed.kernel.spawn_thread(
            worker_proc,
            snap_worker_body(engine, service),
            name=f"s{index}-worker",
            pinned_core=1 + (index % 2),
        )
    return engine, services


def test_snap_single_rpc():
    bed = build_bypass_testbed()
    engine, services = build_snap(bed)
    service, method = services[0]
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        result = yield from client.call(
            args=[3, "snap"], **bed.call_args(service, method)
        )
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results and results[0].results == [3, "snap"]


def test_snap_multiple_services_one_engine():
    bed = build_bypass_testbed()
    engine, services = build_snap(bed, n_services=3)
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        for service, method in services:
            result = yield from client.call(
                args=[service.name], **bed.call_args(service, method)
            )
            results.append(result.results[0])

    bed.sim.process(driver())
    bed.machine.run(until=200 * MS)
    assert results == ["s0", "s1", "s2"]
    assert all(
        engine.channel_for(s.service_id).enqueued == 1 for s, _m in services
    )


def test_snap_workers_block_engine_spins():
    """The deployment's shape: one hot engine core, schedulable workers."""
    bed = build_bypass_testbed()
    build_snap(bed)
    bed.machine.run(until=5 * MS)
    engine_core = bed.machine.cores[0]
    worker_core = bed.machine.cores[1]
    assert engine_core.counters.busy_ns > 4 * MS   # spinning
    assert worker_core.counters.busy_ns < 0.1 * MS  # blocked


def test_snap_latency_between_bypass_and_linux():
    """The cross-core hop puts Snap behind pure bypass but ahead of the
    syscall/softirq stack."""
    from repro.experiments import build_linux_testbed
    from repro.rpc.server import bypass_worker, linux_udp_worker

    def measure(bed, service, method, n=8):
        client = bed.clients[0]
        rtts = []

        def driver():
            yield bed.sim.timeout(10_000)
            for i in range(n):
                result = yield from client.call(
                    args=[i], **bed.call_args(service, method)
                )
                rtts.append(result.rtt_ns)

        bed.sim.process(driver())
        bed.machine.run(until=500 * MS)
        return sum(rtts[1:]) / (len(rtts) - 1)

    bed = build_bypass_testbed()
    engine, services = build_snap(bed)
    snap_rtt = measure(bed, *services[0])

    bed = build_bypass_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=500)
    bed.nic.steer_port(9000, 0)
    proc = bed.kernel.spawn_process("pmd")
    bed.kernel.spawn_thread(
        proc, bypass_worker(bed.nic, bed.nic.queues[0], bed.user_netctx,
                            bed.registry),
        pinned_core=0,
    )
    bypass_rtt = measure(bed, service, method)

    bed = build_linux_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=500)
    socket = bed.netstack.bind(9000)
    proc = bed.kernel.spawn_process("srv")
    bed.kernel.spawn_thread(proc, linux_udp_worker(socket, bed.registry))
    linux_rtt = measure(bed, service, method)

    assert bypass_rtt < snap_rtt < linux_rtt


def test_snap_error_response_for_bad_method():
    bed = build_bypass_testbed()
    engine, services = build_snap(bed)
    service, _method = services[0]
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        done = client.send_request(
            bed.server_mac, bed.server_ip, 9000,
            service.service_id, 99, [1],  # unknown method
        )
        result = yield done
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert results
    assert results[0].results[0] == "__rpc_error__"
