"""End-to-end tests of the kernel-bypass RPC path.

Client -> switch -> bypass NIC -> user-space ring -> pinned busy-poll
worker -> handler -> PMD TX -> client.  No interrupts, no syscalls.
"""

import pytest

from repro.experiments import build_bypass_testbed, build_linux_testbed
from repro.rpc.server import bypass_worker, linux_udp_worker
from repro.sim import MS, US


def setup_echo(bed, n_workers=1, port=9000, handler_cost=500):
    service = bed.registry.create_service("echo", udp_port=port)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=handler_cost
    )
    process = bed.kernel.spawn_process("echo-server")
    process.service = service
    for i in range(n_workers):
        queue = bed.nic.queues[i % len(bed.nic.queues)]
        bed.kernel.spawn_thread(
            process,
            bypass_worker(bed.nic, queue, bed.user_netctx, bed.registry),
            name=f"echo-pmd{i}",
            pinned_core=i,
        )
    bed.nic.steer_port(port, 0)
    return service, method


def test_single_rpc_roundtrip():
    bed = build_bypass_testbed()
    service, method = setup_echo(bed)
    client = bed.clients[0]
    results = []

    def driver():
        result = yield from client.call(
            args=[7, "hi"], **bed.call_args(service, method)
        )
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert len(results) == 1
    assert results[0].results == [7, "hi"]


def test_no_interrupts_no_syscalls_on_data_path():
    bed = build_bypass_testbed()
    service, method = setup_echo(bed)
    client = bed.clients[0]

    def driver():
        for i in range(5):
            yield from client.call(args=[i], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)
    assert bed.machine.link.stats.interrupts == 0
    assert bed.kernel.stats.syscalls == 0


def test_bypass_faster_than_linux_when_static():
    """The premise the paper grants bypass: for a static pinned
    workload, bypass beats the kernel stack."""

    def measure(bed, setup):
        service, method = setup(bed)
        client = bed.clients[0]
        rtts = []

        def driver():
            for i in range(10):
                result = yield from client.call(
                    args=[i], **bed.call_args(service, method)
                )
                rtts.append(result.rtt_ns)

        bed.sim.process(driver())
        bed.machine.run(until=500 * MS)
        assert len(rtts) == 10
        # Skip the first (cold) request.
        return sum(rtts[1:]) / len(rtts[1:])

    bypass_rtt = measure(build_bypass_testbed(), setup_echo)

    def setup_linux(bed):
        service = bed.registry.create_service("echo", udp_port=9000)
        method = bed.registry.add_method(
            service, "echo", lambda args: list(args), cost_instructions=500
        )
        socket = bed.netstack.bind(9000)
        process = bed.kernel.spawn_process("echo-server")
        bed.kernel.spawn_thread(process, linux_udp_worker(socket, bed.registry))
        return service, method

    linux_rtt = measure(build_linux_testbed(), setup_linux)
    assert bypass_rtt < linux_rtt


def test_spinning_burns_cpu_while_idle():
    bed = build_bypass_testbed()
    setup_echo(bed)
    bed.machine.run(until=10 * MS)
    # One pinned worker spinning for 10ms with no traffic: its core
    # shows ~10ms busy.  (This is the energy cost the paper attacks.)
    core0 = bed.machine.cores[0]
    assert core0.counters.busy_ns > 9 * MS


def test_flow_steering_to_specific_queue():
    bed = build_bypass_testbed(n_queues=4)
    service, method = setup_echo(bed, n_workers=1)
    bed.nic.steer_port(9000, 0)
    client = bed.clients[0]
    results = []

    def driver():
        result = yield from client.call(args=[1], **bed.call_args(service, method))
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert results
    assert bed.nic.queues[0].drops == 0


def test_pipelined_throughput():
    bed = build_bypass_testbed()
    service, method = setup_echo(bed, handler_cost=2000)
    client = bed.clients[0]
    done = []

    def driver():
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, 9000,
                service.service_id, method.method_id, [i],
            )
            for i in range(50)
        ]
        for event in events:
            result = yield event
            done.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=500 * MS)
    assert len(done) == 50
