"""Stress tests: many clients, mixed services, high concurrency —
everything completes, fairness holds, and the NIC drains clean."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import NicScheduler, lauberhorn_user_loop
from repro.sim import MS
from repro.workloads.generator import ClosedLoopGenerator, ServiceMix, Target


def test_eight_clients_four_services_all_complete():
    bed = build_lauberhorn_testbed(n_clients=8)
    targets = []
    for index in range(4):
        service = bed.registry.create_service(f"s{index}", udp_port=9000 + index)
        method = bed.registry.add_method(
            service, "m", lambda args: list(args), cost_instructions=800
        )
        process = bed.kernel.spawn_process(f"s{index}")
        bed.nic.register_service(service, process.pid)
        endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
        bed.kernel.spawn_thread(
            process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
            pinned_core=index,
        )
        targets.append(Target(service, method))
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=2,
                 promote=True, dispatcher_cores=[4, 5])

    generators = []
    processes = []
    for client in bed.clients:
        generator = ClosedLoopGenerator(
            client, ServiceMix(targets), bed.server_mac, bed.server_ip,
            rng=bed.machine.rng.stream(f"stress-{client.name}"),
        )
        generators.append(generator)
        processes.append(
            bed.sim.process(generator.run(concurrency=4, n_requests=60))
        )

    for process in processes:
        bed.machine.run(until=process)

    # Every client finished its full quota (fairness: nobody starved).
    assert all(g.completed == 60 for g in generators)
    total = sum(g.completed for g in generators)
    assert bed.nic.lstats.responses_sent == total
    # Latency stayed sane under the pile-up.
    for generator in generators:
        assert generator.recorder.summary().p99 < 1 * MS
    # The NIC drained completely.
    assert bed.nic.check_quiescent() == []


def test_quiescence_check_reports_leaks():
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("s", udp_port=9000)
    bed.registry.add_method(service, "m", lambda a: list(a))
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    # No worker loop: a request must strand in a queue somewhere.
    client = bed.clients[0]
    client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [1])
    bed.machine.run(until=5 * MS)
    problems = bed.nic.check_quiescent()
    assert problems  # the stranded request is reported
    assert any("backlog" in p for p in problems)


def test_mixed_hot_cold_under_load_drains_clean():
    bed = build_lauberhorn_testbed(n_clients=4)
    hot = bed.registry.create_service("hot", udp_port=9000)
    hot_m = bed.registry.add_method(hot, "m", lambda a: list(a),
                                    cost_instructions=500)
    hot_proc = bed.kernel.spawn_process("hot")
    bed.nic.register_service(hot, hot_proc.pid)
    hot_ep = bed.nic.create_endpoint(EndpointKind.USER, service=hot)
    bed.kernel.spawn_thread(
        hot_proc, lauberhorn_user_loop(bed.nic, hot_ep, bed.registry),
        pinned_core=0,
    )
    cold = bed.registry.create_service("cold", udp_port=9001)
    cold_m = bed.registry.add_method(cold, "m", lambda a: list(a),
                                     cost_instructions=500)
    cold_proc = bed.kernel.spawn_process("cold")
    bed.nic.register_service(cold, cold_proc.pid)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=2,
                 promote=False)

    mix = ServiceMix([Target(hot, hot_m), Target(cold, cold_m)])
    generator = ClosedLoopGenerator(
        bed.clients[0], mix, bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("mixed"),
    )
    done = bed.sim.process(generator.run(concurrency=8, n_requests=120))
    bed.machine.run(until=done)
    assert generator.completed == 120
    assert bed.nic.lstats.delivered_fast > 0
    assert bed.nic.lstats.delivered_kernel > 0
    assert bed.nic.check_quiescent() == []
