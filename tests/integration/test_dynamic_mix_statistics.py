"""Statistical confidence for the headline claim: across independent
seeds, Lauberhorn's latency and efficiency advantages are not noise."""

import pytest

from repro.experiments.dynamic_mix import run_dynamic_mix
from repro.metrics import t_confidence_interval

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def multiseed_results():
    rows = {"lauberhorn": [], "bypass": [], "linux": []}
    for seed in SEEDS:
        results = run_dynamic_mix(
            service_counts=(8,), n_requests=120, seed=seed, verbose=False
        )
        for result in results:
            rows[result.stack].append(result)
    return rows


def test_p50_advantage_statistically_clear(multiseed_results):
    lauberhorn = t_confidence_interval(
        [r.p50_ns for r in multiseed_results["lauberhorn"]]
    )
    bypass = t_confidence_interval(
        [r.p50_ns for r in multiseed_results["bypass"]]
    )
    linux = t_confidence_interval(
        [r.p50_ns for r in multiseed_results["linux"]]
    )
    # Non-overlapping 95% CIs across seeds: the ordering is robust.
    assert not lauberhorn.overlaps(bypass)
    assert not bypass.overlaps(linux)
    assert lauberhorn.high < bypass.low < linux.low


def test_efficiency_advantage_statistically_clear(multiseed_results):
    lauberhorn = t_confidence_interval(
        [r.busy_ns_per_request for r in multiseed_results["lauberhorn"]]
    )
    bypass = t_confidence_interval(
        [r.busy_ns_per_request for r in multiseed_results["bypass"]]
    )
    assert lauberhorn.high * 10 < bypass.low


def test_all_seeds_completed(multiseed_results):
    for stack_rows in multiseed_results.values():
        assert all(r.completed == 120 for r in stack_rows)
