"""Property-based end-to-end test: random payload sequences survive the
inline / AUX / DMA delivery paths intact and in order."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import lauberhorn_user_loop
from repro.sim import MS
from repro.workloads.distributions import args_for_payload

# Sizes chosen to land in all three delivery regimes on 128 B lines
# with the default 4 KiB DMA threshold: inline (<=80 B), AUX
# (81 B..4 KiB), DMA fallback (>4 KiB).
payload_sizes = st.lists(
    st.sampled_from([16, 64, 80, 81, 200, 1024, 3000, 4096, 5000, 9000]),
    min_size=1,
    max_size=6,
)


@given(sizes=payload_sizes)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mixed_payload_sequence_roundtrips(sizes):
    bed = build_lauberhorn_testbed(n_aux=64)
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service, "echo", lambda args: list(args), cost_instructions=200
    )
    process = bed.kernel.spawn_process("echo")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(
        EndpointKind.USER, service=service, n_aux=64
    )
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]
    echoed = []

    def driver():
        yield bed.sim.timeout(10_000)
        for size in sizes:
            args = args_for_payload(size)
            result = yield from client.call(
                args=args, **bed.call_args(service, method)
            )
            echoed.append(result.results == args)

    bed.sim.process(driver())
    bed.machine.run(until=500 * MS)
    assert echoed == [True] * len(sizes)
    # Echo payloads above the threshold take the DMA path in *both*
    # directions (request delivery + response staging).
    expected_dma = 2 * sum(1 for s in sizes if s >= 4096)
    assert bed.nic.lstats.dma_fallbacks == expected_dma
