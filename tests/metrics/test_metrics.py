"""Unit + property tests for latency, energy, and cycle metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import ENZIAN, Machine
from repro.metrics import (
    CycleWindow,
    LatencyRecorder,
    PowerParams,
    core_energy,
    machine_energy,
    percentile,
)


def test_percentile_simple():
    samples = sorted([10.0, 20.0, 30.0, 40.0])
    assert percentile(samples, 0) == 10
    assert percentile(samples, 100) == 40
    assert percentile(samples, 50) == 25  # interpolated


def test_percentile_single_sample():
    assert percentile([5.0], 99) == 5.0


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 120)


@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=200))
def test_percentile_monotone_property(samples):
    ordered = sorted(samples)
    values = [percentile(ordered, p) for p in (0, 25, 50, 75, 90, 99, 100)]
    tolerance = 1e-9 * max(1.0, ordered[-1])
    assert all(b >= a - tolerance for a, b in zip(values, values[1:]))
    assert ordered[0] <= values[0] + tolerance
    assert values[-1] <= ordered[-1] + tolerance


def test_latency_recorder_summary():
    recorder = LatencyRecorder("t")
    recorder.extend(float(v) for v in range(1, 101))
    summary = recorder.summary()
    assert summary.count == 100
    assert summary.mean == pytest.approx(50.5)
    assert summary.minimum == 1 and summary.maximum == 100
    assert summary.p50 == pytest.approx(50.5)
    assert summary.p99 > summary.p90 > summary.p50
    assert set(summary.row()) == {
        "count", "mean", "p50", "p90", "p99", "p999", "min", "max"
    }


def test_latency_recorder_empty_summary_raises():
    with pytest.raises(ValueError):
        LatencyRecorder().summary()


def test_latency_recorder_summary_or_none():
    recorder = LatencyRecorder("t")
    assert recorder.summary_or_none() is None
    recorder.record(5.0)
    summary = recorder.summary_or_none()
    assert summary is not None and summary.count == 1


def test_latency_recorder_sort_cache_invalidated_on_insert():
    recorder = LatencyRecorder("t")
    recorder.extend([3.0, 1.0, 2.0])
    first = recorder.summary()
    assert (first.minimum, first.maximum) == (1.0, 3.0)
    # Repeated summaries reuse the cached sorted view...
    assert recorder.summary() == first
    # ...and both insertion paths invalidate it.
    recorder.record(0.5)
    assert recorder.summary().minimum == 0.5
    recorder.extend([10.0])
    assert recorder.summary().maximum == 10.0
    # Direct appends to .samples (legacy callers) are also caught.
    recorder.samples.append(20.0)
    assert recorder.summary().maximum == 20.0


def test_core_energy_states_ordered():
    machine = Machine(ENZIAN)
    core = machine.cores[0]
    window = 1e6  # 1 ms

    idle = core_energy(core, window)  # all idle
    core.counters.stall_ns = window
    stalled = core_energy(core, window)
    core.counters.stall_ns = 0
    core.counters.busy_ns = window
    busy = core_energy(core, window)
    assert idle.total_j < stalled.total_j < busy.total_j


def test_core_energy_breakdown_adds_up():
    machine = Machine(ENZIAN)
    core = machine.cores[0]
    core.counters.busy_ns = 300_000
    core.counters.stall_ns = 200_000
    energy = core_energy(core, 1_000_000, PowerParams(2.0, 1.0, 0.1))
    # 300 us busy at 2 W = 600 uJ, etc.
    assert energy.busy_j == pytest.approx(300_000e-9 * 2.0)
    assert energy.stall_j == pytest.approx(200_000e-9 * 1.0)
    assert energy.idle_j == pytest.approx(500_000e-9 * 0.1)
    assert energy.total_j == pytest.approx(
        energy.busy_j + energy.stall_j + energy.idle_j
    )


def test_machine_energy_sums_cores():
    machine = Machine(ENZIAN)
    machine.cores[0].counters.busy_ns = 1000
    machine.cores[1].counters.busy_ns = 1000
    total = machine_energy(machine.cores[:2], 2000)
    single = core_energy(machine.cores[0], 2000)
    assert total.total_j == pytest.approx(2 * single.total_j)


def test_energy_window_validation():
    machine = Machine(ENZIAN)
    with pytest.raises(ValueError):
        core_energy(machine.cores[0], 0)


def test_cycle_window_per_request():
    machine = Machine(ENZIAN)
    window = CycleWindow(machine)
    window.begin()

    def work(core):
        yield from core.execute(10_000)

    machine.sim.process(work(machine.cores[0]))
    machine.sim.process(work(machine.cores[1]))
    machine.run()
    cost = window.end(requests=4)
    assert cost.instructions_per_request == pytest.approx(5000)
    assert cost.busy_ns_per_request > 0
    assert cost.cycles_per_request(2.0) == pytest.approx(
        cost.busy_ns_per_request * 2.0
    )


def test_cycle_window_requires_begin():
    machine = Machine(ENZIAN)
    with pytest.raises(RuntimeError):
        CycleWindow(machine).end(1)
