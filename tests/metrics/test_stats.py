"""Unit tests for the small-sample statistics helpers."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (
    MeanCI,
    bootstrap_ci,
    mean,
    stddev,
    t_confidence_interval,
)


def test_mean_and_stddev():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
        2.138, rel=1e-3
    )


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        stddev([1.0])


def test_t_interval_contains_mean():
    ci = t_confidence_interval([10.0, 12.0, 11.0, 13.0, 9.0])
    assert ci.low < ci.mean < ci.high
    assert ci.mean == pytest.approx(11.0)
    assert ci.half_width > 0


def test_t_interval_narrows_with_samples():
    tight = t_confidence_interval([10.0, 10.1] * 10)
    loose = t_confidence_interval([10.0, 10.1])
    assert tight.half_width < loose.half_width


def test_t_interval_needs_two():
    with pytest.raises(ValueError):
        t_confidence_interval([1.0])


def test_ci_overlap():
    a = MeanCI(mean=10.0, half_width=1.0)
    b = MeanCI(mean=11.5, half_width=1.0)
    c = MeanCI(mean=20.0, half_width=1.0)
    assert a.overlaps(b) and b.overlaps(a)
    assert not a.overlaps(c)


def test_ci_str():
    assert "±" in str(MeanCI(mean=3.0, half_width=0.5))


def test_bootstrap_deterministic_and_bracketing():
    samples = [1.0, 2.0, 3.0, 4.0, 100.0]
    point, low, high = bootstrap_ci(samples, mean, seed=7)
    point2, low2, high2 = bootstrap_ci(samples, mean, seed=7)
    assert (point, low, high) == (point2, low2, high2)
    assert low <= point <= high


def test_bootstrap_percentile_indices_symmetric():
    """Regression: the upper percentile index must drop as many
    resamples from the top tail as the lower drops from the bottom.

    A counting statistic makes the sorted estimates a known sequence:
    the first call (point estimate) returns 0, the 2000 resamples
    return 1..2000, so the pinned bounds expose the exact indices.
    """
    counter = itertools.count()

    def stat(_resample):
        return float(next(counter))

    point, low, high = bootstrap_ci([1.0, 2.0], stat, n_resamples=2000)
    assert point == 0.0
    assert low == 51.0  # estimates[50]: 50 estimates dropped below
    assert high == 1950.0  # estimates[1949]: 50 dropped above, not 49


def test_bootstrap_indices_symmetric_small_n():
    counter = itertools.count()

    def stat(_resample):
        return float(next(counter))

    _, low, high = bootstrap_ci([1.0], stat, n_resamples=40)
    # One estimate dropped from each tail (floored index would drop
    # none from the top and return 40.0).
    assert (low, high) == (2.0, 39.0)


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([], mean)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], mean, confidence=1.5)


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=40))
def test_t_interval_bracketing_property(samples):
    ci = t_confidence_interval(samples)
    assert ci.low <= ci.mean <= ci.high
