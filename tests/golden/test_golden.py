"""Golden regression corpus: E1-E23 at the default seed, frozen.

Every deterministic experiment's structured results are pinned:
E1-E18 as full JSON under ``tests/golden/<name>.json``, E19-E23 (whose
payloads are large) as SHA-256 digests in ``tests/golden/hashes.json``.
With E24 in the tree, these pins are also the tenancy layer's
no-regression contract: a build with :mod:`repro.tenancy` present but
unconfigured must reproduce every historical experiment byte for byte.
Any code change that shifts any number in any table fails here with a
readable per-path diff — which is the point: behaviour changes must be
*intentional*, reviewed via ``make regen-golden`` and a git diff.

The whole corpus runs under an **inert ambient policy spec**
(``PolicySpec.from_spec("none")``), so these pins double as the
control plane's no-regression contract: a disabled controller must
leave every experiment byte-identical to a build that predates
``repro.ctrl``.  The goldens were recorded without the spec armed; if
an inert controller ever perturbs a result, the diff fails.
"""

import io
import json
import os
import pathlib
from contextlib import redirect_stdout

import pytest

from repro.ctrl import PolicySpec
from repro.ctrl import active as policy_active
from repro.exp.golden import HASHED_EXPERIMENTS, golden_digest
from repro.exp.jobs import run_experiments

GOLDEN_DIR = pathlib.Path(__file__).parent
GOLDEN_EXPERIMENTS = tuple(f"e{i}" for i in range(1, 19))

_MAX_DIFFS_SHOWN = 12


def _diff_paths(expected, actual, path="", out=None):
    """Collect human-readable 'path: expected != actual' lines."""
    if out is None:
        out = []
    if len(out) >= _MAX_DIFFS_SHOWN:
        return out
    if type(expected) is not type(actual):
        out.append(f"{path or '<root>'}: type {type(expected).__name__} "
                   f"-> {type(actual).__name__}")
    elif isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in actual:
                out.append(f"{path}.{key}: missing from new results")
            elif key not in expected:
                out.append(f"{path}.{key}: new key (not in golden)")
            else:
                _diff_paths(expected[key], actual[key], f"{path}.{key}", out)
    elif isinstance(expected, list):
        if len(expected) != len(actual):
            out.append(f"{path}: length {len(expected)} -> {len(actual)}")
        for index, (e, a) in enumerate(zip(expected, actual)):
            _diff_paths(e, a, f"{path}[{index}]", out)
    elif expected != actual:
        out.append(f"{path or '<root>'}: {expected!r} -> {actual!r}")
    return out


def _run_under_inert_policy(names):
    """Serial, cache-free run with the inert policy spec armed."""
    with policy_active(PolicySpec.from_spec("none")):
        with redirect_stdout(io.StringIO()):
            outcome = run_experiments(list(names), jobs=1,
                                      cache=None, root_seed=0)
    assert not outcome.failed, "experiment job failed; see job results"
    # Round-trip through JSON so float/tuple representations match the
    # files exactly.
    return {
        name: json.loads(json.dumps(value, sort_keys=True))
        for name, value in outcome.values.items()
    }


@pytest.fixture(scope="module")
def fresh_values():
    """One serial, cache-free run of all JSON-pinned experiments."""
    return _run_under_inert_policy(GOLDEN_EXPERIMENTS)


@pytest.fixture(scope="module")
def hashed_values(tmp_path_factory):
    """One run of the digest-pinned experiments, artifacts in a tmp cwd.

    E20/E21 write ``results/*`` artifacts as part of their assembly;
    running in a temporary directory keeps the checkout clean.
    """
    keep = os.getcwd()
    os.chdir(tmp_path_factory.mktemp("golden-artifacts"))
    try:
        return _run_under_inert_policy(HASHED_EXPERIMENTS)
    finally:
        os.chdir(keep)


@pytest.mark.parametrize("name", GOLDEN_EXPERIMENTS)
def test_experiment_matches_golden(name, fresh_values):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"{path} missing — run `make regen-golden` to create the corpus"
    )
    golden = json.loads(path.read_text())
    actual = fresh_values[name]
    if golden == actual:
        return
    diffs = _diff_paths(golden, actual)
    shown = "\n".join(f"  {line}" for line in diffs[:_MAX_DIFFS_SHOWN])
    pytest.fail(
        f"{name} results diverged from tests/golden/{name}.json "
        f"({len(diffs)}+ difference(s)):\n{shown}\n"
        "If this change is intentional, regenerate with `make regen-golden` "
        "and review the JSON diff."
    )


@pytest.mark.parametrize("name", HASHED_EXPERIMENTS)
def test_experiment_matches_hash_pin(name, hashed_values):
    path = GOLDEN_DIR / "hashes.json"
    assert path.exists(), (
        f"{path} missing — run `python tools/regen_golden.py --hashes`"
    )
    pins = json.loads(path.read_text())
    assert name in pins, (
        f"{name} has no pin in tests/golden/hashes.json — regenerate with "
        "`python tools/regen_golden.py --hashes`"
    )
    actual = golden_digest(hashed_values[name])
    if actual != pins[name]:
        pytest.fail(
            f"{name} results diverged from the pinned digest "
            f"({pins[name][:12]}… -> {actual[:12]}…).\n"
            "Digest-pinned experiments have no per-path diff; rerun the "
            "experiment to inspect, and if the change is intentional "
            "regenerate with `python tools/regen_golden.py --hashes`."
        )
