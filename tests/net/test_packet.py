"""Unit + property tests for frame building/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    Frame,
    HeaderError,
    MacAddress,
    build_udp_frame,
    ip_address,
    parse_udp_frame,
)
from repro.net.packet import MIN_WIRE_BYTES, WIRE_OVERHEAD_BYTES

SRC_MAC = MacAddress.from_string("02:00:00:00:00:01")
DST_MAC = MacAddress.from_string("02:00:00:00:00:02")
SRC_IP = ip_address("10.0.0.1")
DST_IP = ip_address("10.0.0.2")


def make(payload=b"hello", **kw):
    return build_udp_frame(
        SRC_MAC, DST_MAC, SRC_IP, DST_IP, 7000, 9000, payload, **kw
    )


def test_ip_address_parse():
    assert ip_address("10.0.0.1") == 0x0A000001
    assert ip_address("255.255.255.255") == 0xFFFFFFFF
    with pytest.raises(HeaderError):
        ip_address("1.2.3")
    with pytest.raises(HeaderError):
        ip_address("1.2.3.999")


def test_build_and_parse_roundtrip():
    frame = make(b"RPC-PAYLOAD")
    parsed = parse_udp_frame(frame)
    assert parsed.payload == b"RPC-PAYLOAD"
    assert parsed.eth.dst == DST_MAC
    assert parsed.ip.src == SRC_IP and parsed.ip.dst == DST_IP
    assert parsed.udp.src_port == 7000 and parsed.udp.dst_port == 9000


def test_frame_wire_bytes_minimum():
    frame = make(b"")
    assert frame.wire_bytes == MIN_WIRE_BYTES + WIRE_OVERHEAD_BYTES


def test_frame_wire_bytes_large():
    frame = make(b"\x00" * 1400)
    assert frame.wire_bytes == len(frame.data) + WIRE_OVERHEAD_BYTES


def test_parse_rejects_corrupted_udp_checksum():
    frame = make(b"payload!")
    raw = bytearray(frame.data)
    raw[-1] ^= 0xFF  # corrupt payload; UDP checksum now wrong
    with pytest.raises(HeaderError):
        parse_udp_frame(Frame(bytes(raw)))


def test_parse_rejects_truncation():
    frame = make(b"payload!")
    with pytest.raises(HeaderError):
        parse_udp_frame(Frame(frame.data[:30]))


def test_parse_rejects_non_ipv4():
    frame = make()
    raw = bytearray(frame.data)
    raw[12:14] = b"\x86\xdd"  # IPv6 ethertype
    with pytest.raises(HeaderError):
        parse_udp_frame(Frame(bytes(raw)))


def test_frame_meta_and_born_ns():
    frame = make(b"x", born_ns=123.0, meta={"req": 7})
    assert frame.born_ns == 123.0
    assert frame.meta["req"] == 7


@given(st.binary(max_size=2000))
def test_roundtrip_any_payload(payload):
    frame = make(payload)
    assert parse_udp_frame(frame).payload == payload


@given(
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
)
def test_roundtrip_any_ports(sport, dport):
    frame = build_udp_frame(SRC_MAC, DST_MAC, SRC_IP, DST_IP, sport, dport, b"p")
    parsed = parse_udp_frame(frame)
    assert (parsed.udp.src_port, parsed.udp.dst_port) == (sport, dport)


def test_frame_meta_is_lazily_allocated():
    # Unarmed data-plane frames must not pay for a metadata dict.
    frame = make(b"x")
    assert frame._meta is None
    assert frame.peek_meta("obs") is None
    assert frame.pop_meta("obs", "fallback") == "fallback"
    assert frame.copy_meta() == {}
    # None of the read-side helpers may have materialised the dict.
    assert frame._meta is None
    # Writing through the property allocates exactly then.
    frame.meta["req"] = 7
    assert frame._meta == {"req": 7}
    assert frame.peek_meta("req") == 7
    assert frame.pop_meta("req") == 7
    assert frame._meta == {}


def test_frame_empty_meta_dict_is_normalised():
    assert Frame(b"x", meta={})._meta is None
    assert make(b"x", meta={})._meta is None


def test_frame_equality_ignores_meta():
    a = make(b"x", born_ns=5.0, meta={"req": 1})
    b = make(b"x", born_ns=5.0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != make(b"y", born_ns=5.0)
