"""Unit tests for the encryption cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.crypto import (
    CryptoParams,
    nic_crypto_ns,
    software_crypto_instructions,
)


def test_software_cost_has_fixed_floor():
    assert software_crypto_instructions(0) == 400
    assert software_crypto_instructions(1000) == 400 + 1200


def test_nic_cost_rounds_to_64b_blocks():
    params = CryptoParams(nic_fixed_ns=30, nic_ns_per_64b=3)
    assert nic_crypto_ns(1, params) == 33
    assert nic_crypto_ns(64, params) == 33
    assert nic_crypto_ns(65, params) == 36


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        software_crypto_instructions(-1)
    with pytest.raises(ValueError):
        nic_crypto_ns(-1)


@given(st.integers(min_value=0, max_value=1 << 20))
def test_costs_monotone(nbytes):
    assert software_crypto_instructions(nbytes + 64) >= software_crypto_instructions(nbytes)
    assert nic_crypto_ns(nbytes + 64) >= nic_crypto_ns(nbytes)


def test_crossover_regime():
    """For kilobyte records, software crypto costs ~a microsecond of a
    2 GHz core while the NIC pipeline adds well under 100 ns."""
    sw_ns = software_crypto_instructions(1024) / 2.0  # 2 GHz, CPI 1
    assert sw_ns > 500
    assert nic_crypto_ns(1024) < 100
