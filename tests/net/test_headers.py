"""Unit + property tests for wire headers and checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    MacAddress,
    UdpHeader,
    internet_checksum,
    verify_checksum,
)


# -- checksum ---------------------------------------------------------------

def test_checksum_known_vector():
    # Classic RFC 1071 worked example.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_checksum_zero_data():
    assert internet_checksum(b"\x00" * 10) == 0xFFFF


@given(st.binary(min_size=0, max_size=200))
def test_checksum_verifies_after_append(data):
    checksum = internet_checksum(data)
    # Appending the checksum makes the whole buffer verify.
    padded = data + b"\x00" if len(data) % 2 else data
    assert verify_checksum(padded + checksum.to_bytes(2, "big"))


@given(st.binary(min_size=2, max_size=64))
def test_checksum_detects_single_byte_corruption(data):
    checksum = internet_checksum(data)
    corrupted = bytearray(data)
    corrupted[0] ^= 0xFF
    assert internet_checksum(bytes(corrupted)) != checksum


# -- MAC ---------------------------------------------------------------------

def test_mac_roundtrip_string():
    mac = MacAddress.from_string("02:00:00:00:00:2a")
    assert mac.value == 0x02_00_00_00_00_2A
    assert str(mac) == "02:00:00:00:00:2a"


def test_mac_roundtrip_bytes():
    mac = MacAddress(0x0A0B0C0D0E0F)
    assert MacAddress.from_bytes(mac.to_bytes()) == mac


def test_mac_rejects_out_of_range():
    with pytest.raises(HeaderError):
        MacAddress(1 << 48)
    with pytest.raises(HeaderError):
        MacAddress.from_bytes(b"\x00" * 5)


@given(st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_mac_bytes_roundtrip_property(value):
    assert MacAddress.from_bytes(MacAddress(value).to_bytes()).value == value


# -- Ethernet ------------------------------------------------------------------

def test_ethernet_pack_unpack():
    hdr = EthernetHeader(
        dst=MacAddress(0x1122_3344_5566),
        src=MacAddress(0xAABB_CCDD_EEFF),
        ethertype=ETHERTYPE_IPV4,
    )
    raw = hdr.pack()
    assert len(raw) == EthernetHeader.SIZE
    assert EthernetHeader.unpack(raw) == hdr


def test_ethernet_truncated():
    with pytest.raises(HeaderError):
        EthernetHeader.unpack(b"\x00" * 13)


# -- IPv4 ------------------------------------------------------------------------

def test_ipv4_pack_unpack_roundtrip():
    hdr = Ipv4Header(src=0x0A000001, dst=0x0A000002, total_length=100, ttl=17)
    out = Ipv4Header.unpack(hdr.pack())
    assert out.src == hdr.src and out.dst == hdr.dst
    assert out.total_length == 100 and out.ttl == 17


def test_ipv4_checksum_detects_corruption():
    raw = bytearray(Ipv4Header(src=1, dst=2, total_length=40).pack())
    raw[8] ^= 0x40  # flip a TTL bit
    with pytest.raises(HeaderError):
        Ipv4Header.unpack(bytes(raw))


def test_ipv4_unverified_parse_allows_corruption():
    raw = bytearray(Ipv4Header(src=1, dst=2, total_length=40).pack())
    raw[8] ^= 0x40
    hdr = Ipv4Header.unpack(bytes(raw), verify=False)
    assert hdr.ttl != 64


def test_ipv4_rejects_wrong_version():
    raw = bytearray(Ipv4Header(src=1, dst=2, total_length=40).pack())
    raw[0] = (6 << 4) | 5
    with pytest.raises(HeaderError):
        Ipv4Header.unpack(bytes(raw), verify=False)


@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=20, max_value=65535),
    st.integers(min_value=1, max_value=255),
)
def test_ipv4_roundtrip_property(src, dst, length, ttl):
    hdr = Ipv4Header(src=src, dst=dst, total_length=length, ttl=ttl)
    out = Ipv4Header.unpack(hdr.pack())
    assert (out.src, out.dst, out.total_length, out.ttl) == (src, dst, length, ttl)


# -- UDP ---------------------------------------------------------------------------

def test_udp_pack_unpack():
    hdr = UdpHeader(1234, 5678, 20, 0xBEEF)
    assert UdpHeader.unpack(hdr.pack()) == hdr


def test_udp_checksum_never_zero():
    # RFC 768: computed zero is sent as 0xFFFF.
    # Find via a crafted payload or just assert the invariant holds broadly.
    for payload in (b"", b"\x00", b"test", b"\xff\xff"):
        csum = UdpHeader.compute_checksum(0, 0, 0, 0, payload)
        assert csum != 0


@given(st.binary(max_size=128))
def test_udp_checksum_deterministic(payload):
    a = UdpHeader.compute_checksum(1, 2, 3, 4, payload)
    b = UdpHeader.compute_checksum(1, 2, 3, 4, payload)
    assert a == b and 0 < a <= 0xFFFF
