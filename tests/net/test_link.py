"""Unit tests for the link and switch models."""

import pytest

from repro.net import Link, MacAddress, SwitchFabric, build_udp_frame, ip_address
from repro.sim import Simulator

MAC_A = MacAddress.from_string("02:00:00:00:00:0a")
MAC_B = MacAddress.from_string("02:00:00:00:00:0b")
MAC_C = MacAddress.from_string("02:00:00:00:00:0c")
IP_A, IP_B = ip_address("10.0.0.1"), ip_address("10.0.0.2")


def frame(src=MAC_A, dst=MAC_B, payload=b"x" * 10):
    return build_udp_frame(src, dst, IP_A, IP_B, 1, 2, payload)


def test_link_latency_is_serialization_plus_propagation():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=12.5e9, propagation_ns=500)
    f = frame()
    arrivals = []

    def sender():
        yield from link.send(f)

    def receiver():
        got = yield from link.receive()
        arrivals.append((sim.now, got))

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    t, got = arrivals[0]
    assert got is f
    assert t == pytest.approx(link.serialization_ns(f) + 500)


def test_link_fifo_and_backpressure_serialization():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=12.5e9, propagation_ns=0)
    order = []

    def sender():
        yield from link.send(frame(payload=b"1" * 1000))
        yield from link.send(frame(payload=b"2" * 1000))

    def receiver():
        for _ in range(2):
            got = yield from link.receive()
            order.append((sim.now, got.data[-1:]))

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert [o[1] for o in order] == [b"1", b"2"]
    # Second frame arrives one serialisation later than the first.
    gap = order[1][0] - order[0][0]
    assert gap == pytest.approx(link.serialization_ns(frame(payload=b"2" * 1000)))


def test_link_queue_overflow_drops():
    sim = Simulator()
    link = Link(sim, bandwidth_bps=12.5e9, propagation_ns=0, queue_frames=2)

    def sender():
        for _ in range(5):
            yield from link.send(frame())

    sim.process(sender())
    sim.run()
    assert link.stats.dropped == 3
    assert len(link.rx_queue) == 2


def test_switch_forwards_by_mac():
    sim = Simulator()
    switch = SwitchFabric(sim)
    port_a = switch.attach(MAC_A)
    port_b = switch.attach(MAC_B)
    got = []

    def sender():
        yield from port_a.send(frame(src=MAC_A, dst=MAC_B))

    def receiver():
        f = yield from port_b.receive()
        got.append(f)

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert len(got) == 1


def test_switch_drops_unknown_mac():
    sim = Simulator()
    switch = SwitchFabric(sim)
    port_a = switch.attach(MAC_A)

    def sender():
        yield from port_a.send(frame(src=MAC_A, dst=MAC_C))

    sim.process(sender())
    sim.run(until=1_000_000)
    assert switch.unknown_dst_drops == 1


def test_switch_rejects_duplicate_mac():
    sim = Simulator()
    switch = SwitchFabric(sim)
    switch.attach(MAC_A)
    with pytest.raises(ValueError):
        switch.attach(MAC_A)


def test_switch_three_way():
    sim = Simulator()
    switch = SwitchFabric(sim)
    ports = {m.value: switch.attach(m) for m in (MAC_A, MAC_B, MAC_C)}
    got = []

    def sender(src, dst):
        yield from ports[src.value].send(frame(src=src, dst=dst))

    def receiver(mac, tag):
        f = yield from ports[mac.value].receive()
        got.append(tag)

    sim.process(sender(MAC_A, MAC_B))
    sim.process(sender(MAC_B, MAC_C))
    sim.process(receiver(MAC_B, "b"))
    sim.process(receiver(MAC_C, "c"))
    sim.run()
    assert sorted(got) == ["b", "c"]
