"""Regression: links must account every dropped frame, with bytes and
an observer hook — before this, a tail-dropped frame only bumped an
aggregate counter and nothing downstream could see which frame died."""

from repro.net.headers import MacAddress
from repro.net.link import Link
from repro.net.packet import build_udp_frame
from repro.sim.engine import Simulator


def _frame(payload=b"x" * 100):
    return build_udp_frame(
        src_mac=MacAddress.from_string("02:00:00:00:00:01"),
        dst_mac=MacAddress.from_string("02:00:00:00:00:02"),
        src_ip=1, dst_ip=2, src_port=1, dst_port=2,
        payload=payload, born_ns=0.0,
    )


def _send(sim, link, frame):
    proc = sim.process(link.send(frame))
    sim.run(until=proc)


def test_delivered_frames_are_counted():
    sim = Simulator()
    link = Link(sim, name="l")
    _send(sim, link, _frame())
    sim.run(until=sim.timeout(10_000.0))
    assert link.stats.frames == 1
    assert link.stats.delivered == 1
    assert link.stats.dropped == 0
    assert link.stats.in_flight() == 0


def test_tail_drop_counts_frames_bytes_and_reason():
    sim = Simulator()
    link = Link(sim, queue_frames=1, name="l")
    observed = []
    link.on_drop = lambda _l, frame, reason: observed.append(
        (frame.wire_bytes, reason)
    )
    first, second = _frame(), _frame(b"y" * 200)
    _send(sim, link, first)
    _send(sim, link, second)
    sim.run(until=sim.timeout(10_000.0))

    assert link.stats.frames == 2
    assert link.stats.delivered == 1
    assert link.stats.dropped == 1
    assert link.stats.dropped_bytes == second.wire_bytes
    assert observed == [(second.wire_bytes, "queue-full")]
    # Conservation balances even with the drop.
    assert link.stats.in_flight() == 0


def test_in_flight_positive_before_delivery():
    sim = Simulator()
    link = Link(sim, propagation_ns=5_000.0, name="l")
    _send(sim, link, _frame())
    assert link.stats.in_flight() == 1  # on the wire
    sim.run(until=sim.timeout(10_000.0))
    assert link.stats.in_flight() == 0
