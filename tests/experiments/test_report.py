"""Unit tests for experiment reporting helpers."""

from repro.experiments.report import fmt_ns, format_table


def test_fmt_ns_units():
    assert fmt_ns(500) == "500 ns"
    assert fmt_ns(1500) == "1.50 us"
    assert fmt_ns(2_500_000) == "2.50 ms"


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [("a", 1), ("longer-name", 22)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    # All rows align to the same width.
    assert len(lines[3]) <= len(lines[1]) + 2
    assert "longer-name" in lines[4]


def test_format_table_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text
