"""E22: the smoke tournament, artifact schema, and validation teeth."""

import copy
import json

import pytest

from repro.experiments.e22_control import (
    POLICY_SPECS,
    measure_adaptive_mix,
    render_control,
    run_control,
    validate_control_payload,
    write_control_artifact,
)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """One CI-sized run: lauberhorn under the storm plan, every policy."""
    path = tmp_path_factory.mktemp("e22") / "e22_control.json"
    cells = run_control(verbose=False, smoke=True, artifact_path=str(path))
    return cells, path


def test_smoke_covers_every_policy(smoke):
    cells, _path = smoke
    assert [cell.policy for cell in cells] == list(POLICY_SPECS)
    assert all(cell.stack == "lauberhorn" for cell in cells)
    assert all(cell.completed > 0 for cell in cells)


def test_smoke_artifact_validates(smoke, capsys):
    cells, path = smoke
    payload = write_control_artifact(cells, None, str(path))
    validate_control_payload(payload, complete=False)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["experiment"] == "e22"
    render_control(cells)  # the table renders without the adaptive block
    assert "policy tournament" in capsys.readouterr().out


def test_validation_rejects_a_non_identical_inert_cell(smoke):
    cells, path = smoke
    payload = write_control_artifact(cells, None, str(path))
    broken = copy.deepcopy(payload)
    for cell in broken["cells"]:
        if cell["policy"] == "none":
            cell["identical"] = False
    with pytest.raises(ValueError, match="not byte-identical"):
        validate_control_payload(broken, complete=False)


def test_validation_rejects_an_idle_active_cell(smoke):
    cells, path = smoke
    payload = write_control_artifact(cells, None, str(path))
    broken = copy.deepcopy(payload)
    for cell in broken["cells"]:
        if cell["policy"] != "none":
            cell["epochs"] = 0
    with pytest.raises(ValueError, match="never reached an epoch"):
        validate_control_payload(broken, complete=False)


def test_validation_requires_full_coverage_when_complete(smoke):
    cells, _path = smoke
    payload = {
        "experiment": "e22",
        "cells": [json.loads(json.dumps(cell.__dict__, default=str))
                  for cell in cells],
        "adaptive": None,
    }
    with pytest.raises(ValueError, match="missing"):
        validate_control_payload(payload, complete=True)


def test_adaptive_mix_explores_then_settles():
    mix = measure_adaptive_mix()
    adaptive = mix["adaptive"]
    stacks_tried = {record["stack"] for record in adaptive["epochs"]}
    assert stacks_tried == {"linux", "snap", "bypass", "lauberhorn"}
    assert adaptive["migrations"] >= 3  # the exploration epochs
    assert adaptive["completed"] > 0
    # The sticky baselines never move.
    for stack, entry in mix["baselines"].items():
        assert entry["migrations"] == 0
        assert entry["final_stack"] == stack
