"""E24: the tenancy smoke run, artifact schema, and validation teeth."""

import copy
import json

import pytest

from repro.exp.pool import jsonable
from repro.experiments.e24_tenancy import (
    SECTIONS,
    cell_labels,
    measure_single_cell,
    render_tenancy,
    run_tenancy,
    validate_tenancy_payload,
    write_tenancy_artifact,
)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """The CI-sized run: solo + the 2-tenant storm headline pair."""
    path = tmp_path_factory.mktemp("e24") / "e24_tenancy.json"
    cells = run_tenancy(verbose=False, smoke=True, artifact_path=str(path))
    return cells, path


def test_smoke_cells_complete_cleanly(smoke):
    cells, _path = smoke
    assert [(c.section, c.label) for c in cells] == \
        [("single", "solo"), ("single", "2t-storm-off"),
         ("single", "2t-storm-on")]
    for cell in cells:
        assert cell.violations == 0
        assert cell.victim_completed == cell.n_victim > 0
        assert cell.check_samples > 0
    solo, off, on = cells
    # The headline in miniature: the unisolated victim's tail blows
    # past 2x solo; budgets + DWRR + policing pull it back under.
    assert off.victim_p999_ns > 2.0 * solo.victim_p999_ns
    assert on.victim_p999_ns <= 2.0 * solo.victim_p999_ns
    assert on.ledger["aggressor.rate_dropped"] > 0
    assert off.ledger["aggressor.rate_dropped"] == 0


def test_tenant_ledger_conserves_in_every_cell(smoke):
    cells, _path = smoke
    for cell in cells:
        for name in cell.tenants:
            arrivals = cell.ledger[f"{name}.arrivals"]
            admitted = cell.ledger[f"{name}.admitted"]
            policed = cell.ledger[f"{name}.rate_dropped"]
            assert arrivals == admitted + policed


def test_smoke_artifact_round_trips_and_validates(smoke, capsys):
    cells, path = smoke
    payload = write_tenancy_artifact(cells, str(path))
    validate_tenancy_payload(payload, complete=False)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["experiment"] == "e24"
    assert on_disk["sections"] == list(SECTIONS)
    render_tenancy(cells)
    out = capsys.readouterr().out
    assert "noisy neighbours" in out


def test_validation_rejects_a_violating_cell(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_tenancy_artifact(cells, str(path)))
    broken["cells"][0]["violations"] = 1
    with pytest.raises(ValueError, match="violation"):
        validate_tenancy_payload(broken, complete=False)


def test_validation_rejects_a_starved_victim(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_tenancy_artifact(cells, str(path)))
    broken["cells"][0]["victim_completed"] -= 1
    with pytest.raises(ValueError, match="victim completed"):
        validate_tenancy_payload(broken, complete=False)


def test_validation_rejects_an_unpoliced_isolated_aggressor(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_tenancy_artifact(cells, str(path)))
    for cell in broken["cells"]:
        if cell["isolated"] and cell["pattern"]:
            cell["ledger"]["aggressor.rate_dropped"] = 0
    with pytest.raises(ValueError, match="rate-policed"):
        validate_tenancy_payload(broken, complete=False)


def test_validation_requires_full_grid_and_headline_when_complete(smoke):
    cells, path = smoke
    payload = write_tenancy_artifact(cells, str(path))
    with pytest.raises(ValueError, match="missing cells"):
        validate_tenancy_payload(payload, complete=True)
    # Headline teeth: an isolated storm cell whose tail exceeds 2x solo
    # must fail even with the grid complete.
    fabricated = copy.deepcopy(payload)
    by_label = {c["label"]: c for c in fabricated["cells"]}
    for section in SECTIONS:
        for label in cell_labels(section):
            if (section, label) in {("single", c["label"])
                                    for c in fabricated["cells"]}:
                continue
            stub = copy.deepcopy(by_label["2t-storm-on"]
                                 if label.endswith("-on") or label == "solo"
                                 else by_label["2t-storm-off"])
            stub["section"], stub["label"] = section, label
            stub["pattern"] = "" if label == "solo" else \
                label.replace("t-", "-").split("-")[-2] \
                if section == "single" else "storm"
            fabricated["cells"].append(stub)
    bad = copy.deepcopy(fabricated)
    for cell in bad["cells"]:
        if cell["label"] == "2t-storm-on":
            cell["victim_p999_ns"] = 1e9
    with pytest.raises(ValueError, match="exceeds 2x solo"):
        validate_tenancy_payload(bad, complete=True)


def test_cell_measurement_is_deterministic():
    first = measure_single_cell("2t-rateviol-on")
    second = measure_single_cell("2t-rateviol-on")
    assert jsonable(first) == jsonable(second)


def test_labels_cover_every_section():
    for section in SECTIONS:
        labels = cell_labels(section)
        assert labels and labels[0] == "solo"
    with pytest.raises(KeyError):
        cell_labels("nope")
