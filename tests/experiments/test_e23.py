"""E23: the fleet smoke run, artifact schema, and validation teeth."""

import copy
import json

import pytest

from repro.exp.pool import jsonable
from repro.experiments.e23_fleet import (
    SECTIONS,
    _flow_requests,
    cell_labels,
    measure_fleet_cell,
    render_fleet,
    run_fleet,
    validate_fleet_payload,
    write_fleet_artifact,
)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    """The CI-sized run: one fleet cell per headline section."""
    path = tmp_path_factory.mktemp("e23") / "e23_fleet.json"
    cells = run_fleet(verbose=False, smoke=True, artifact_path=str(path))
    return cells, path


def test_smoke_cells_complete_cleanly(smoke):
    cells, _path = smoke
    assert [(c.section, c.label) for c in cells] == \
        [("scaling", "r2"), ("placement", "mixed")]
    for cell in cells:
        assert cell.violations == 0
        assert cell.completed == cell.n_requests > 0
        assert sum(cell.routed) == cell.completed
        assert cell.check_samples > 0
    # The mixed placement exercises all four stacks in one rack pair.
    assert set(cells[1].stacks) == {"linux", "snap", "bypass", "lauberhorn"}


def test_smoke_artifact_round_trips_and_validates(smoke, capsys):
    cells, path = smoke
    payload = write_fleet_artifact(cells, str(path))
    validate_fleet_payload(payload, complete=False)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["experiment"] == "e23"
    assert on_disk["sections"] == list(SECTIONS)
    render_fleet(cells)
    out = capsys.readouterr().out
    assert "replica-count scaling" in out
    assert "placement grid" in out


def test_validation_rejects_a_violating_cell(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_fleet_artifact(cells, str(path)))
    broken["cells"][0]["violations"] = 2
    with pytest.raises(ValueError, match="violation"):
        validate_fleet_payload(broken, complete=False)


def test_validation_rejects_a_leaky_ledger(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_fleet_artifact(cells, str(path)))
    broken["cells"][0]["routed"][0] += 1
    with pytest.raises(ValueError, match="routed"):
        validate_fleet_payload(broken, complete=False)


def test_validation_rejects_incomplete_runs(smoke):
    cells, path = smoke
    broken = copy.deepcopy(write_fleet_artifact(cells, str(path)))
    broken["cells"][0]["completed"] -= 1
    with pytest.raises(ValueError, match="completed"):
        validate_fleet_payload(broken, complete=False)


def test_validation_requires_full_grid_when_complete(smoke):
    cells, path = smoke
    payload = write_fleet_artifact(cells, str(path))
    with pytest.raises(ValueError, match="missing cells"):
        validate_fleet_payload(payload, complete=True)


def test_cell_measurement_is_deterministic():
    first = measure_fleet_cell("scaling", "r2")
    second = measure_fleet_cell("scaling", "r2")
    assert jsonable(first) == jsonable(second)


def test_labels_cover_every_section():
    for section in SECTIONS:
        assert cell_labels(section)
    with pytest.raises(KeyError):
        cell_labels("nope")


def test_flow_request_splitter():
    uniform = _flow_requests(16, 128, 0.0)
    assert sum(uniform) == 128
    assert uniform == [8] * 16
    skewed = _flow_requests(16, 128, 1.5)
    assert sum(skewed) <= 128
    assert all(n >= 1 for n in skewed)
    # Zipf weights are monotone: the head flow dominates the tail.
    assert skewed[0] == max(skewed)
    assert skewed[0] > skewed[-1]
