"""Smoke + shape tests for the experiment modules (reduced scale).

The benchmarks run the full-size experiments; these tests run reduced
configurations so the unit suite stays fast while still validating the
paper-shape assertions end to end.
"""

import pytest

from repro.experiments.crossover import measure_rtt_for_size
from repro.experiments.dynamic_mix import run_dynamic_mix
from repro.experiments.fig2_roundtrip import (
    coherent_roundtrip_ns,
    dma_roundtrip_ns,
    run_fig2,
)
from repro.experiments.fig5_dispatch import run_fig5_dispatch
from repro.experiments.model_check import run_model_check
from repro.experiments.nested_rpc import run_nested_rpc
from repro.experiments.protocol_cost import run_protocol_cost
from repro.experiments.sched_state import run_sched_state
from repro.experiments.tryagain import run_timeout_ablation, run_tryagain_energy
from repro.hw.params import ENZIAN, ENZIAN_PCIE
from repro.sim import MS


def test_fig2_coherent_beats_dma_on_same_machine():
    eci = coherent_roundtrip_ns(ENZIAN, n=4)
    pcie = dma_roundtrip_ns(ENZIAN_PCIE, n=4)
    assert eci < pcie / 2
    assert 300 < eci < 1500  # the [21] regime


def test_fig2_run_returns_four_bars():
    results = run_fig2(verbose=False)
    assert len(results) == 4
    assert {r.mechanism for r in results} == {"coherent", "dma"}


def test_fig5_ordering_small():
    results = run_fig5_dispatch(n_requests=5, verbose=False)
    by_config = {r.config: r for r in results}
    assert (by_config["lauberhorn-hot"].p50_rtt_ns
            < by_config["lauberhorn-kernel"].p50_rtt_ns
            < by_config["linux"].p50_rtt_ns)


def test_crossover_extremes():
    small_line = measure_rtt_for_size(64, force_dma=False, n=3)
    small_dma = measure_rtt_for_size(64, force_dma=True, n=3)
    big_line = measure_rtt_for_size(16384, force_dma=False, n=3)
    big_dma = measure_rtt_for_size(16384, force_dma=True, n=3)
    assert small_line < small_dma
    assert big_dma < big_line


def test_dynamic_mix_small():
    results = run_dynamic_mix(
        service_counts=(2,), n_requests=60, verbose=False
    )
    assert len(results) == 3
    lauberhorn = next(r for r in results if r.stack == "lauberhorn")
    bypass = next(r for r in results if r.stack == "bypass")
    assert lauberhorn.completed == 60
    assert lauberhorn.p50_ns < bypass.p50_ns


def test_tryagain_energy_shape():
    rows = run_tryagain_energy(gap_ns=2 * MS, n_requests=3, verbose=False)
    by_stack = {r.stack: r for r in rows}
    spin = by_stack["bypass (spin)"]
    blocked = by_stack["lauberhorn (blocked load)"]
    assert spin.busy_ns > 5 * blocked.busy_ns
    assert blocked.stall_ns > blocked.busy_ns


def test_timeout_ablation_monotone():
    rows = run_timeout_ablation(
        timeouts_ns=(1 * MS, 10 * MS), idle_ns=50 * MS, verbose=False
    )
    assert rows[0].tryagains_per_sec > rows[1].tryagains_per_sec


def test_model_check_experiment():
    rows = run_model_check(verbose=False)
    ok_rows = [r for r in rows if r.config.startswith("correct")]
    bug_rows = [r for r in rows if r.config.startswith("bug")]
    assert all(r.ok for r in ok_rows)
    assert all(not r.ok for r in bug_rows)


def test_sched_state_overhead_negligible():
    result = run_sched_state(n_switches=50, verbose=False)
    assert result.push_overhead_pct < 3.0
    assert result.pushed_switch_ns > result.base_switch_ns


def test_nested_rpc_speedup():
    results = run_nested_rpc(n_requests=4, verbose=False)
    by_stack = {r.stack: r for r in results}
    assert by_stack["lauberhorn"].p50_rtt_ns < by_stack["linux"].p50_rtt_ns / 2


def test_protocol_cost_minimal():
    cost = run_protocol_cost(n_requests=8, verbose=False)
    assert cost.fills_per_request == 1.0
    assert cost.recalls_per_request == 1.0
    assert cost.upgrades_per_request == 0.0


def test_run_all_cli_rejects_unknown():
    from repro.experiments.run_all import main

    assert main(["nonsense"]) == 2


def test_run_all_cli_runs_selected(capsys):
    from repro.experiments.run_all import main

    assert main(["e7"]) == 0
    out = capsys.readouterr().out
    assert "model checking" in out
