"""Tests for run_all's CLI and JSON export."""

import json

import pytest

from repro.experiments.run_all import _jsonable, main


def test_jsonable_dataclasses_and_nesting():
    from dataclasses import dataclass

    @dataclass
    class Inner:
        x: int

    @dataclass
    class Outer:
        name: str
        items: list

    out = _jsonable(Outer(name="n", items=[Inner(1), (2, 3), {"k": Inner(4)}]))
    assert out == {
        "name": "n",
        "items": [{"x": 1}, [2, 3], {"k": {"x": 4}}],
    }


def test_jsonable_fallback_repr():
    class Weird:
        def __repr__(self):
            return "<weird>"

    assert _jsonable(Weird()) == "<weird>"


def test_json_flag_writes_file(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["e7", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert "e7" in data
    assert data["e7"][0]["ok"] is True


def test_json_flag_missing_path():
    assert main(["e7", "--json"]) == 2
