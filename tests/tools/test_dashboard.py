"""tools/dashboard.py: self-contained HTML from the E21 artifact."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent


@pytest.fixture(scope="module")
def dashboard():
    spec = importlib.util.spec_from_file_location(
        "dashboard", REPO / "tools" / "dashboard.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _payload():
    """A minimal but schema-shaped E21 artifact (two stacks)."""
    windows = [
        {"index": i, "start_ns": i * 100.0, "end_ns": (i + 1) * 100.0,
         "values": {"machine.event_queue": i % 3,
                    "kernel.runq0.depth": i % 2,
                    "nic.txq_depth": 1}}
        for i in range(6)
    ]
    entry = {
        "stack": "linux",
        "n_requests": 4,
        "completed": 4,
        "identical": True,
        "p50_rtt_ns": 12_000.0,
        "p999_rtt_ns": 2_000_000.0,
        "layers": {"hw": 3, "os": 2, "nic": 1},
        "timeseries": {"window_ns": 100.0, "max_windows": 64,
                       "samples": 6, "dropped_windows": 0,
                       "windows": windows},
        "flight_dump": {
            "time_ns": 500.0, "capacity": 16, "recorded": 3,
            "dropped": 0, "kinds": {"sched.dispatch": 2,
                                    "invariant.violation": 1},
            "reason": {"check": "e21-injected", "time_ns": 400.0,
                       "detail": "<deliberate>"},
            "events": [
                {"time_ns": 100.0, "kind": "sched.dispatch",
                 "fields": {"core": 0}},
                {"time_ns": 300.0, "kind": "sched.dispatch",
                 "fields": {"core": 1}},
                {"time_ns": 400.0, "kind": "invariant.violation",
                 "fields": {"check": "e21-injected"}},
            ],
        },
        "violations": ["[e21-injected @ 400 ns] deliberate"],
        "tail": {
            "quantile": 0.999, "n_requests": 4,
            "threshold_ns": 2_000_000.0, "n_slow": 1, "truncated": 0,
            "requests": [{
                "trace_id": 3, "start_ns": 100.0, "end_ns": 2_000_100.0,
                "duration_ns": 2_000_000.0,
                "stages": {"wire.req": 1_990_000.0, "app": 1_000.0},
                "window_indices": [1, 2], "windows_missing": False,
                "state": {"kernel.runq0.depth":
                          {"min": 0, "mean": 0.5, "max": 1}},
                "flight": [{"time_ns": 300.0, "kind": "sched.dispatch",
                            "fields": {"core": 1}}],
            }],
        },
    }
    import copy

    other = copy.deepcopy(entry)
    other["stack"] = "lauberhorn"
    return {"experiment": "e21", "window_ns": 100.0,
            "horizon_ns": 60_000_000.0,
            "stacks": {"linux": entry, "lauberhorn": other}}


def test_build_dashboard_is_self_contained(dashboard):
    html = dashboard.build_dashboard(_payload())
    assert html.startswith("<!doctype html>")
    # Self-contained: no external fetches of any kind.
    for marker in ("http://", "https://", "<script src", "<link "):
        assert marker not in html
    # All three layers render: sparklines, tail table, flight table.
    assert "<svg" in html and "polyline" in html
    assert "Tail forensics" in html
    assert "Flight-recorder post-mortem" in html
    assert "e21-injected" in html
    assert "bit-identical" in html


def test_dashboard_escapes_untrusted_strings(dashboard):
    html = dashboard.build_dashboard(_payload())
    # The injected detail contains "<...>": it must arrive escaped.
    assert "<deliberate>" not in html
    assert "&lt;deliberate&gt;" in html


def test_sparklines_prefer_moving_state_metrics(dashboard):
    entry = _payload()["stacks"]["linux"]
    picked = dashboard._pick_metrics(entry)
    assert "machine.event_queue" in picked
    assert "kernel.runq0.depth" in picked
    # Flat series (nic.txq_depth never moves) are not worth a chart.
    assert "nic.txq_depth" not in picked


def test_cli_writes_html_and_validates_real_schema(dashboard, tmp_path):
    # The synthetic payload is *not* schema-complete (two stacks only),
    # so --validate must fail on it...
    artifact = tmp_path / "timeline.json"
    artifact.write_text(json.dumps(_payload()))
    out = tmp_path / "dash.html"
    code = dashboard.main(["--in", str(artifact), "--out", str(out),
                           "--validate"])
    assert code == 1
    # ...while a plain render succeeds and writes the document.
    code = dashboard.main(["--in", str(artifact), "--out", str(out)])
    assert code == 0
    assert out.read_text().startswith("<!doctype html>")


def test_cli_missing_artifact_is_a_clean_error(dashboard, tmp_path, capsys):
    code = dashboard.main(["--in", str(tmp_path / "nope.json"),
                           "--out", str(tmp_path / "dash.html")])
    assert code == 1
    assert "run_all e21" in capsys.readouterr().out
