"""Differential test: timer-wheel engine vs the reference heap engine.

The timer wheel in :mod:`repro.sim.engine` replaced a binary heap but
must preserve the exact ``(time, priority, seq)`` dispatch order the
golden corpus was recorded under.  This test *proves* that property the
hard way: it generates randomized schedules — zero and fractional
delays, timeouts landing on every wheel level and past the 2^32-tick
overflow horizon, cancellations, ``AnyOf``/``AllOf`` fan-ins,
interrupts, and same-instant storms — runs each schedule on both
engines, and compares the complete dispatch traces entry by entry.

The trace also samples the pending-timer count at every step, because
``machine.py`` probes ``pending_timers`` into telemetry that the golden
digests hash: the wheel must agree with ``len(heap)`` *including lazy
tombstones*, at every instant, not just at quiescence.
"""

import random
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _heap_engine  # noqa: E402  (the reference implementation)

import repro.sim.engine as wheel_engine  # noqa: E402

#: Delays chosen to hit every interesting wheel path: the same-instant
#: FIFOs (0), sub-tick fractions, L0 (<256 ticks), the L0/L1, L1/L2 and
#: L2/L3 boundaries, deep L3, and the >2^32-tick overflow list.
DELAYS = [
    0, 0, 0, 1, 2, 3, 0.5, 1.75, 7, 13, 97, 200,
    255, 256, 257, 511, 1000, 4095, 65535, 65536, 65537,
    1_000_000, 16_777_215, 16_777_216, 100_000_000,
    4_294_967_295.0, 4_294_967_296.0, 5_000_000_000.0,
]

#: Small delays for AllOf fan-ins so schedules stay short.
SMALL_DELAYS = [0, 1, 2, 3, 5, 7, 13, 97, 255, 256, 300]


def _pending(sim):
    """The golden-critical probe: heap length (tombstones included) on
    the reference, ``pending_timers`` on the wheel."""
    if hasattr(sim, "_heap"):
        return len(sim._heap)
    return sim.pending_timers


def _run_schedule(mod, seed):
    """Run one randomized schedule on ``mod``'s engine; return its trace."""
    master = random.Random(seed)
    sim = mod.Simulator()
    trace = []
    handles = []
    n_procs = master.randint(2, 6)
    proc_seeds = [master.randrange(2**32) for _ in range(n_procs)]
    n_intr = master.randint(0, 2)
    intr_seeds = [master.randrange(2**32) for _ in range(n_intr)]

    def body(pid, body_seed):
        prng = random.Random(body_seed)
        try:
            for step in range(prng.randint(3, 12)):
                roll = prng.random()
                if roll < 0.40:
                    value = yield sim.timeout(prng.choice(DELAYS), value=step)
                    trace.append(("timeout", pid, step, sim.now, value,
                                  _pending(sim)))
                elif roll < 0.60:
                    # Tryagain: arm a guard, win the race, cancel it.
                    guard = sim.timeout(prng.choice(DELAYS) + 1)
                    yield sim.timeout(prng.choice(DELAYS))
                    cancelled = guard.cancel()
                    trace.append(("guard", pid, step, sim.now, cancelled,
                                  _pending(sim)))
                elif roll < 0.75:
                    timers = [
                        sim.timeout(prng.choice(DELAYS), value=k)
                        for k in range(prng.randint(2, 5))
                    ]
                    result = yield mod.AnyOf(sim, timers)
                    trace.append(("anyof", pid, step, sim.now,
                                  tuple(result.values()), _pending(sim)))
                elif roll < 0.87:
                    timers = [
                        sim.timeout(prng.choice(SMALL_DELAYS), value=k)
                        for k in range(prng.randint(2, 3))
                    ]
                    result = yield mod.AllOf(sim, timers)
                    trace.append(("allof", pid, step, sim.now,
                                  tuple(result.values()), _pending(sim)))
                else:
                    for hop in range(prng.randint(1, 4)):
                        yield sim.timeout(0)
                    trace.append(("storm", pid, step, sim.now,
                                  _pending(sim)))
        except mod.Interrupt as intr:
            trace.append(("interrupted", pid, sim.now, intr.cause))

    def interrupter(iid, intr_seed):
        prng = random.Random(intr_seed)
        yield sim.timeout(prng.choice(DELAYS))
        target = handles[prng.randrange(len(handles))]
        alive = target.is_alive
        trace.append(("intr-fired", iid, sim.now, alive))
        if alive:
            target.interrupt(("stop", iid))

    for pid, body_seed in enumerate(proc_seeds):
        handles.append(sim.process(body(pid, body_seed)))
    for iid, intr_seed in enumerate(intr_seeds):
        sim.process(interrupter(iid, intr_seed))

    sim.run()
    trace.append(("end", sim.now, _pending(sim)))
    return trace


def _assert_equivalent(seed):
    heap_trace = _run_schedule(_heap_engine, seed)
    wheel_trace = _run_schedule(wheel_engine, seed)
    assert wheel_trace == heap_trace, (
        f"dispatch divergence at seed {seed}: first differing entry "
        f"{next((h, w) for h, w in zip(heap_trace, wheel_trace) if h != w)}"
    )


@pytest.mark.parametrize("seed", range(30))
def test_wheel_matches_heap_reference(seed):
    _assert_equivalent(seed)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_wheel_matches_heap_reference_fuzzed(seed):
    _assert_equivalent(seed)
