"""Property: same seed => bit-identical replay, faults and all.

The whole reproduction rests on determinism: every random decision —
workload, fault schedule, retransmission timing — derives from the
seed, so running the same configuration twice must produce *equal*
results, float for float.  This pins that for every stack, with the
full default fault plan active (the hardest case: loss, corruption,
reordering, duplication, stalls, hiccups, jitter all firing).
"""

import pytest

from repro.exp.pool import jsonable
from repro.experiments.fault_sweep import measure_fault_point
from repro.experiments.four_stacks import STACKS, measure_stack


@pytest.mark.parametrize("stack", STACKS)
def test_faulted_run_replays_bit_identical(stack):
    first = measure_fault_point(stack, "storm", 0.02, 0.02, seed=3,
                                n_requests=40)
    second = measure_fault_point(stack, "storm", 0.02, 0.02, seed=3,
                                 n_requests=40)
    assert jsonable(first) == jsonable(second)
    assert first.violations == 0


def test_different_fault_seeds_differ():
    # Sanity that the seed actually reaches the injectors: two seeds
    # must produce different fault schedules (else replay tests above
    # would pass vacuously).
    a = measure_fault_point("linux", "storm", 0.05, 0.05, seed=1,
                            n_requests=40)
    b = measure_fault_point("linux", "storm", 0.05, 0.05, seed=2,
                            n_requests=40)
    assert jsonable(a) != jsonable(b)


def test_unfaulted_run_replays_bit_identical():
    first = jsonable(measure_stack("lauberhorn", n_requests=10))
    second = jsonable(measure_stack("lauberhorn", n_requests=10))
    assert first == second
