"""Properties of fleet routing: ECMP determinism, flow affinity, and
intra-flow delivery order.

The balancer and the trunk ECMP groups are both seed-salted flow
hashes, so the whole routing plane must be (a) a pure function of
(seed, flow) and (b) flow-affine — which is exactly what lets the
fleet invariants demand strictly ordered intra-flow delivery.
"""

import pytest

from repro.check import install_fleet_checks
from repro.fleet import EcmpBalancer, HostSpec, build_fleet
from repro.net import build_udp_frame, ip_address
from repro.net.topology import TopologySpec
from repro.sim.clock import MS

FLOWS = [(ip_address(f"10.0.1.{1 + (i % 4)}"), 40_000 + i)
         for i in range(64)]


def test_balancer_is_deterministic_across_instances():
    a = EcmpBalancer(list("wxyz"), seed=5)
    b = EcmpBalancer(list("wxyz"), seed=5)
    assert [a.index_for(*flow) for flow in FLOWS] == \
        [b.index_for(*flow) for flow in FLOWS]


def test_balancer_seed_reaches_the_hash():
    a = EcmpBalancer(list("wxyz"), seed=0)
    b = EcmpBalancer(list("wxyz"), seed=1)
    assert [a.index_for(*flow) for flow in FLOWS] != \
        [b.index_for(*flow) for flow in FLOWS]


def test_balancer_spreads_and_ledgers():
    balancer = EcmpBalancer(list("wxyz"), seed=0)
    for flow in FLOWS:
        for _ in range(3):
            balancer.pick(*flow)
    spread = balancer.spread()
    assert spread["flows"] == len(FLOWS)
    assert spread["requests"] == 3 * len(FLOWS)
    assert sum(spread["routed"]) == 3 * len(FLOWS)
    # 64 flows over 4 replicas: every replica carries some.
    assert all(count > 0 for count in spread["flows_per_replica"])


def test_balancer_is_flow_affine():
    balancer = EcmpBalancer(list("wxyz"), seed=0)
    for flow in FLOWS:
        first = balancer.pick(*flow)
        assert all(balancer.pick(*flow) is first for _ in range(5))
        # The ledger's affinity map replays through the pure hash.
        assert balancer.affinity[flow] == balancer.index_for(*flow)


def test_balancer_rejects_zero_replicas():
    with pytest.raises(ValueError):
        EcmpBalancer([])


def _run_checked_fleet(n_trunks=2, n_flows=12, per_flow=4):
    fleet = build_fleet(
        [HostSpec(stack="lauberhorn", tor=i % 2) for i in range(4)],
        topo=TopologySpec(n_tors=2, n_trunks=n_trunks),
        n_clients=2,
    )
    fleet.deploy(cost_instructions=500)
    checks = install_fleet_checks(fleet)
    checks.start(100 * MS)
    done = []

    def flow_loop(flow):
        client = fleet.clients[flow % len(fleet.clients)]
        yield fleet.sim.timeout(10_000)
        for k in range(per_flow):
            yield fleet.send(client, 43_000 + flow, [k])
            done.append(flow)

    for flow in range(n_flows):
        fleet.sim.process(flow_loop(flow), name=f"flow{flow}")
    fleet.run(until=100 * MS)
    checks.finish()
    assert len(done) == n_flows * per_flow
    return fleet, checks


def test_no_intra_flow_reordering_across_ecmp_trunks():
    """The hard end-to-end property: with multi-trunk ECMP live, the
    flow-order invariant (strictly ascending request ids per flow at
    every replica's RX port) holds over a full multi-rack run."""
    fleet, checks = _run_checked_fleet(n_trunks=2)
    checks.assert_clean()
    assert checks.samples > 0
    # Every flow stayed on one replica, and the replicas split load.
    spread = fleet.balancer.spread()
    assert spread["flows"] == 12
    assert sum(1 for c in spread["flows_per_replica"] if c > 0) >= 2


def test_flow_order_invariant_has_teeth():
    """Delivering an older request id on a host's RX link must trip
    the flow-order check (fed through the real on_deliver tap)."""
    fleet = build_fleet([HostSpec(), HostSpec()])
    fleet.deploy()
    checks = install_fleet_checks(fleet)
    link = fleet.hosts[0].nic.port.egress
    client = fleet.clients[0]
    for request_id in (7, 3):  # out of order
        frame = build_udp_frame(
            client.mac, fleet.hosts[0].server_mac, client.ip,
            fleet.hosts[0].server_ip, 44_000, 9000, b"p" * 32,
        )
        frame.meta["request_id"] = request_id
        link.on_deliver(link, frame)
    checks.check_now()
    assert any("reordering" in str(v) for v in checks.violations)
