"""Control-plane determinism: same inputs ⇒ identical actuation log.

Policies are deterministic functions of the sampled signals and their
spec parameters (no ambient randomness), so an armed E22 cell must
replay bit-for-bit: the actuation log, the deferral count, and every
latency are pinned to the (stack, plan, policy, seed) tuple.  The
inert side of the contract — ``policy=None`` runs byte-identical to a
build without the controller — is re-checked per cell by
``measure_control_cell`` itself and swept across E1-E21 by the golden
corpus.
"""

import pytest

from repro.experiments.e22_control import measure_control_cell


@pytest.mark.parametrize("stack,policy", [
    ("lauberhorn", "backoff"),
    ("linux", "tuner"),
])
def test_armed_cell_replays_identically(stack, policy):
    first = measure_control_cell(stack, "storm", policy, seed=0)
    second = measure_control_cell(stack, "storm", policy, seed=0)
    assert first == second
    assert first.actuations == second.actuations


def test_backoff_cell_actually_actuates_and_defers():
    cell = measure_control_cell("lauberhorn", "storm", "backoff", seed=0)
    assert cell.epochs >= 1
    assert cell.actuations, "storm plan never triggered the backoff policy"
    assert cell.deferrals > 0
    knobs = {record["knob"] for record in cell.actuations}
    assert "admission_hold" in knobs


def test_inert_cell_is_byte_identical_to_a_bare_run():
    cell = measure_control_cell("bypass", "lossy", "none", seed=0)
    assert cell.identical is True
    assert cell.actuations == []
    assert cell.epochs == 0


def test_seed_changes_the_run_not_just_the_label():
    base = measure_control_cell("lauberhorn", "storm", "backoff", seed=0)
    other = measure_control_cell("lauberhorn", "storm", "backoff", seed=7)
    assert (base.p50_rtt_ns, base.actuations) != \
        (other.p50_rtt_ns, other.actuations)
