"""Reference heap-based engine for differential testing.

This is the pre-timer-wheel simulation engine, kept verbatim as an
executable specification: a binary heap ordered by ``(time, priority,
seq)`` with lazy tombstones.  The golden corpus was recorded against
this implementation, so the production wheel engine in
:mod:`repro.sim.engine` must dispatch *exactly* the same events in
exactly the same order.  ``tests/properties/test_wheel_differential.py``
races the two engines over randomized schedules and compares their full
dispatch traces.

Nothing outside the differential test may import this module.
"""


from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interrupt happened (for example, an IPI descriptor in the OS
    model).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities for events scheduled at the same timestamp.  Urgent events
# (process resumptions) run before normal events so that chains of
# zero-delay wake-ups complete before the clock is allowed to advance.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and is *processed* once the simulator has
    run its callbacks.  Processes wait on events by ``yield``-ing them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception) attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        if not self._ok:
            raise SimulationError("event failed; check .exception")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        # The slot may be unset on a pending Timeout (see Timeout.__init__).
        try:
            return self._exception
        except AttributeError:
            return None

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._exception = exc
        # Timeouts leave _defused unset at construction; a failed event
        # must have it readable before dispatch.
        self._defused = False
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately, which lets late waiters join without racing.
        """
        if self.callbacks is None:
            if self._ok is None:
                raise SimulationError("cannot wait on a cancelled timeout")
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.processed:
            state = "cancelled" if self._ok is None else "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation.

    Unlike a plain event, a timeout is *scheduled* at construction but
    only *triggers* when the simulator dispatches it — ``triggered``
    stays False (and ``.value`` raises) until the delay has actually
    elapsed.  A pending timeout can be cancelled.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Timer creation is the single hottest allocation site in the
        # engine, so Event.__init__ and Simulator._enqueue are inlined
        # here (one call frame each, millions of times per experiment)
        # and the _exception/_defused slots are left unset — they are
        # only ever read after fail(), which assigns them.  The value
        # is staged in _value but _ok stays None: the simulator marks
        # the event triggered when the delay elapses.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = None
        self.delay = delay
        now = sim.now
        when = now + delay
        seq = sim._seq
        sim._seq = seq + 1
        if when == now:
            sim._stat_norm_fifo += 1
            sim._normal.append((seq, self))
        else:
            heap = sim._heap
            heappush(heap, (when, seq, self))
            if len(heap) > sim._stat_heap_max:
                sim._stat_heap_max = len(heap)

    def cancel(self) -> bool:
        """Cancel a pending timeout so it never fires.

        Returns True if the timeout was cancelled, False if it had
        already fired (cancelling a fired timer is a harmless no-op,
        which makes ``guard.cancel()`` after a race safe).  The queue
        entry is removed lazily (tombstoned); its callbacks never run.
        A process must not cancel a timeout it is itself blocked on —
        it would never be resumed.
        """
        if self._ok is not None or self.callbacks is None:
            return False
        self.callbacks = None
        sim = self.sim
        sim._n_cancelled += 1
        sim._stat_cancels += 1
        # Tombstone hygiene: once cancelled timers dominate the heap,
        # rebuild it in one O(n) pass (amortised against the >= n/2
        # cancellations that triggered it).
        if sim._n_cancelled > 64 and sim._n_cancelled * 2 > len(sim._heap):
            sim._compact()
        return True

    @property
    def cancelled(self) -> bool:
        return self._ok is None and self.callbacks is None


class _Initialize(Event):
    """Internal event used to start a process at creation time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        Event.__init__(self, sim)
        self.callbacks.append(process._resume_cb)
        sim._enqueue(sim.now, URGENT, self)


class Process(Event):
    """A simulation process wrapping a generator.

    The process object doubles as an event that fires when the generator
    terminates; its value is the generator's return value.  Waiting on a
    process therefore means "wait until it finishes".
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_send", "_throw",
                 "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        try:
            # Bound methods cached once: _resume runs per yield of every
            # process and saves an attribute hop on each, and appending
            # the cached _resume avoids materialising a fresh bound
            # method per yield.
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError(
                f"Process needs a generator, got {generator!r}"
            ) from None
        Event.__init__(self, sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._resume_cb = self._resume
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously (as an urgent event at
        the current time) so the caller's own execution is not nested
        inside the target's frame.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        event = Event(self.sim)
        event._ok = False
        event._exception = exc
        event._defused = True  # handled by the interrupted process
        event.callbacks.append(self._resume_cb)
        self.sim._enqueue(self.sim.now, URGENT, event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if self._ok is not None:
            # The process finished before a queued interrupt arrived;
            # drop the stale resumption.
            return
        # _waiting_on deliberately keeps its stale value while the
        # generator runs: only interrupt() consults it, and a process
        # cannot be interrupted from inside its own frame.
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                event._defused = True
                target = self._throw(event._exception)
        except StopIteration as stop:
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.fail(exc, priority=URGENT)
            return

        # Probe the two attributes every Event carries instead of an
        # isinstance check; non-events fail the probe.
        try:
            foreign = target.sim is not self.sim
            callbacks = target.callbacks
        except AttributeError:
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            ) from None
        if foreign:
            raise SimulationError("cannot wait on an event from another simulator")
        self._waiting_on = target
        # add_callback, inlined: this runs once per yield of every
        # process, so the extra call frame is worth saving.
        if callbacks is None:
            if target._ok is None:
                raise SimulationError("cannot wait on a cancelled timeout")
            self._resume(target)
        else:
            callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        Event.__init__(self, sim)
        self.events = list(events)
        self._fired = 0
        for event in self.events:
            if event.sim is not self.sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._ok}

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any one of the given events fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._fired == len(self.events)


class Simulator:
    """The event loop: a virtual clock plus three event queues.

    Scheduling invariant: events run in ``(time, priority, sequence)``
    order.  Events scheduled at the *current* instant are kept out of
    the heap — URGENT ones (process resumptions, which every trigger in
    the tree schedules at ``now``) in a plain FIFO whose append order
    *is* sequence order, NORMAL same-instant ones in a second FIFO that
    is merged with same-timestamp heap entries by sequence number.  The
    heap holds only future-dated events, i.e. real timers.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._urgent: deque[Event] = deque()
        self._normal: deque[tuple[int, Event]] = deque()
        #: next sequence number; consumed by every heap push and every
        #: NORMAL same-instant append (urgent FIFO order needs none).
        self._seq = 0
        #: live tombstones (cancelled timeouts still queued)
        self._n_cancelled = 0
        # -- profiling counters (see repro.sim.profile) ----------------
        # Heap pushes are not counted on the push path: they are derived
        # as _seq - _stat_norm_fifo, since those are the only two
        # consumers of sequence numbers.
        self._stat_dispatched = 0
        self._stat_heap_max = 0
        self._stat_norm_fifo = 0
        self._stat_urgent_fifo = 0
        self._stat_cancels = 0
        self._stat_compactions = 0

    # -- scheduling ---------------------------------------------------

    def _enqueue(self, when: float, priority: int, event: Event) -> None:
        if when == self.now:
            # Same-instant fast path: no heap traffic.  Everything in
            # the tree schedules URGENT events at the current instant,
            # so the urgent FIFO needs no sequence numbers; the NORMAL
            # FIFO keeps them to merge with same-timestamp heap entries.
            if priority == URGENT:
                self._stat_urgent_fifo += 1
                self._urgent.append(event)
            else:
                seq = self._seq
                self._seq = seq + 1
                self._stat_norm_fifo += 1
                self._normal.append((seq, event))
            return
        # Future-dated events are always NORMAL (succeed/fail stamp the
        # current instant; only timers schedule ahead), so heap entries
        # carry no priority field: (when, seq, event).
        seq = self._seq
        self._seq = seq + 1
        heap = self._heap
        heappush(heap, (when, seq, event))
        if len(heap) > self._stat_heap_max:
            self._stat_heap_max = len(heap)

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (cancelled timeouts).

        In place: ``run`` holds a local reference to the heap list, and
        a cancellation inside an event callback may compact mid-run.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[2].callbacks is not None]
        heapify(heap)
        self._n_cancelled = sum(
            1 for _, event in self._normal if event.callbacks is None
        )
        self._stat_compactions += 1

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns.

        Equivalent to ``Timeout(sim, delay, value)`` but with the
        constructor inlined — ``sim.timeout`` is how nearly every timer
        in the tree is created, and skipping the ``__init__`` frame is
        measurable.  Keep in sync with :meth:`Timeout.__init__`.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event._ok = None
        event.delay = delay
        now = self.now
        when = now + delay
        seq = self._seq
        self._seq = seq + 1
        if when == now:
            self._stat_norm_fifo += 1
            self._normal.append((seq, event))
        else:
            heap = self._heap
            heappush(heap, (when, seq, event))
            if len(heap) > self._stat_heap_max:
                self._stat_heap_max = len(heap)
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process from ``generator``."""
        return Process(self, generator, name=name)

    def periodic(self, interval_ns: float, fn: Callable[[], Any],
                 until_ns: float, name: str = "periodic") -> Process:
        """Call ``fn()`` every ``interval_ns`` of simulated time.

        The ticker is bounded by ``until_ns``: ticks fire at every
        multiple of ``interval_ns`` up to *and including* ``until_ns``
        (``run(until=h)`` dispatches events landing exactly on ``h``),
        and the process then terminates so run-to-exhaustion callers
        are never kept alive by a stale ticker.  A horizon that is an
        exact multiple of the interval therefore gets its final tick at
        exactly ``until_ns`` — controller decision epochs and sampler
        windows aligned to the run horizon must not lose their last
        tick.  ``fn`` runs at event-boundary granularity and must not
        itself advance simulated time — this is the host-side sampling
        hook used by the invariant sampler (:mod:`repro.check`) and the
        time-series sampler (:mod:`repro.obs.timeseries`).
        """
        if interval_ns <= 0:
            raise ValueError(f"non-positive periodic interval: {interval_ns}")

        def ticker():
            while self.now + interval_ns <= until_ns:
                yield self.timeout(interval_ns)
                fn()

        return self.process(ticker(), name=name)

    # -- execution ----------------------------------------------------

    def _pop(self, limit: float = float("inf")) -> Optional[Event]:
        """Pop the next live event in (time, priority, seq) order.

        Advances the clock when the winner comes off the heap; heap
        events later than ``limit`` are left queued.  Skips cancelled
        timeouts.  Returns None when nothing live is due.
        """
        urgent = self._urgent
        heap = self._heap
        if urgent:
            # URGENT events are only ever scheduled at the current
            # instant (succeed/fail stamp ``sim.now``; timeouts are
            # NORMAL), so the urgent FIFO always outranks the heap and
            # never holds cancelled timers.
            return urgent.popleft()
        normal = self._normal
        now = self.now
        while normal:
            head = heap[0] if heap else None
            if head is not None and head[0] == now and head[1] < normal[0][0]:
                # Same-instant heap entry scheduled before the FIFO head.
                event = heappop(heap)[2]
            else:
                event = normal.popleft()[1]
            if event.callbacks is not None:
                return event
            self._n_cancelled -= 1
        while heap:
            head = heap[0]
            if head[2].callbacks is None:
                heappop(heap)
                self._n_cancelled -= 1
                continue
            when = head[0]
            if when > limit:
                return None
            heappop(heap)
            if when < now:
                raise SimulationError("event scheduled in the past")
            self.now = when
            return head[2]
        return None

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none."""
        heap = self._heap
        for fifo_event in self._urgent:
            if fifo_event.callbacks is not None:
                return self.now
        for _seq, fifo_event in self._normal:
            if fifo_event.callbacks is not None:
                return self.now
        while heap and heap[0][2].callbacks is None:
            heappop(heap)
            self._n_cancelled -= 1
        return heap[0][0] if heap else float("inf")

    def _dispatch(self, event: Event) -> None:
        """Run one event's callbacks (the inner loop of the engine)."""
        if event._ok is None:
            # A Timeout (or process-start) triggers at dispatch time.
            event._ok = True
        self._stat_dispatched += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure with nobody waiting would silently
            # disappear; surface it instead.
            raise event._exception

    def step(self) -> None:
        """Process exactly one event (skipping cancelled timeouts)."""
        event = self._pop()
        if event is not None:
            self._dispatch(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a timestamp, or
        an :class:`Event` (run until the event fires; returns its
        value).
        """
        stop_event: Optional[Event] = None
        horizon = float("inf")
        bounded = False
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            bounded = True
        # The event loop is _pop + _dispatch inlined into one frame:
        # this function IS the hot loop of every experiment, and the
        # two calls per event it saves are measurable.  _compact()
        # mutates the heap list in place, so the local binding below
        # stays valid across callbacks.
        urgent = self._urgent
        normal = self._normal
        heap = self._heap
        dispatched = 0
        try:
            while True:
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._exception
                # -- pop the next live event in (time, priority, seq) order
                if urgent:
                    # Urgent events are always at the current instant and
                    # never cancellable (see _pop).
                    event = urgent.popleft()
                elif normal:
                    head = heap[0] if heap else None
                    if head is not None and head[0] == self.now and head[1] < normal[0][0]:
                        # Same-instant heap entry scheduled before the FIFO
                        # head (a timer whose due time has just arrived).
                        event = heappop(heap)[2]
                    else:
                        event = normal.popleft()[1]
                    if event.callbacks is None:  # cancelled zero-delay timer
                        self._n_cancelled -= 1
                        continue
                else:
                    if not heap:
                        if stop_event is not None:
                            raise SimulationError(
                                "event queue empty before the awaited event fired"
                            )
                        if bounded:
                            self.now = horizon
                        return None
                    # Pop first, then check: one heap access per event
                    # instead of a peek + pop.
                    when, seq, event = heappop(heap)
                    if event.callbacks is None:  # cancelled timer: purge
                        self._n_cancelled -= 1
                        continue
                    if when > horizon:
                        heappush(heap, (when, seq, event))
                        # horizon is finite only for bounded runs
                        self.now = horizon
                        return None
                    # No scheduled-in-the-past check here: heap entries
                    # are strictly future-dated at creation (negative
                    # delays raise) and the clock never runs backwards.
                    # _pop keeps the check for the step()/peek() path.
                    self.now = when
                # -- dispatch (mirrors _dispatch)
                if event._ok is None:
                    event._ok = True
                dispatched += 1
                callbacks = event.callbacks
                event.callbacks = None
                if len(callbacks) == 1:
                    # Nearly every event has exactly one waiter.
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
                if not event._ok and not event._defused:
                    raise event._exception
        finally:
            self._stat_dispatched += dispatched
