"""Property: the invariants hold across a randomized fault matrix.

Thirty seeded-random fault mixes — loss, corruption, reordering,
duplication, RX stalls, DMA spikes, core hiccups, coherence jitter at
rates up to several percent, across all four stacks — and in every
single one, every armed invariant must hold: packets conserved, MESI
legal, rings bounded, no thread lost, every Lauberhorn CONTROL fill
answered exactly once.  The matrix is generated from a fixed seed (no
hypothesis dependency) so failures replay exactly.
"""

import random

import pytest

from repro.check import install_checks
from repro.experiments.fault_sweep import measure_fault_point
from repro.experiments.four_stacks import STACKS, _build_stack
from repro.faults import FaultPlan, active

N_CASES = 30


def _matrix():
    rng = random.Random(0xF417)
    cases = []
    for index in range(N_CASES):
        stack = STACKS[index % len(STACKS)]
        spec = ",".join([
            f"seed={rng.randrange(1 << 16)}",
            f"loss={rng.choice([0.0, 0.005, 0.02, 0.05]):g}",
            f"corrupt={rng.choice([0.0, 0.002, 0.01]):g}",
            f"reorder={rng.choice([0.0, 0.01, 0.05]):g}",
            f"dup={rng.choice([0.0, 0.005, 0.02]):g}",
            f"stall={rng.choice([0.0, 0.01, 0.03]):g}",
            f"spike={rng.choice([0.0, 0.01, 0.03]):g}",
            f"hiccup={rng.choice([0.0, 0.002, 0.01]):g}",
            f"jitter={rng.choice([0.0, 0.01, 0.05]):g}",
        ])
        cases.append(pytest.param(stack, spec, id=f"case{index:02d}-{stack}"))
    return cases


@pytest.mark.parametrize("stack,spec", _matrix())
def test_invariants_hold_under_fault_mix(stack, spec):
    plan = FaultPlan.from_spec(spec)
    with active(plan):
        bed, service, method = _build_stack(stack)
    registry = install_checks(bed)
    horizon = 30_000_000.0
    registry.start(horizon)

    client = bed.clients[0]
    done = [0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(30):
            event = client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            event.add_callback(lambda _ev: done.__setitem__(0, done[0] + 1))
            yield bed.sim.timeout(120_000)

    bed.sim.process(driver())
    bed.machine.run(until=horizon)
    registry.assert_clean()
    assert registry.samples > 0
    # Lossless mixes must complete everything; lossy mixes recover via
    # retransmission and may at worst leave a tail in flight.
    if not plan.link.lossy:
        assert done[0] == 30


def test_high_rate_storm_still_clean():
    """An extreme mix (every rate near its ceiling) stays invariant-clean."""
    point = measure_fault_point(
        "lauberhorn", "hurricane", loss_rate=0.1, stall_rate=0.1, seed=7,
        n_requests=50,
    )
    assert point.violations == 0, point.violation_details
    assert point.completed > 0
