"""Property: changing the root seed changes numbers, never shape.

The golden corpus pins exact values at root seed 0; this pins the
complementary property for *every other* seed: the structured results
keep exactly the same shape (same keys, same list lengths, same leaf
types), so downstream consumers — the table renderers, the JSON dump,
the golden differ — work for any seed.
"""

import io
from contextlib import redirect_stdout

import pytest

from repro.exp.jobs import run_experiments
from repro.exp.pool import jsonable

#: seed-accepting sweep experiments, one cheap representative each of
#: the point-job families (mix, serverless, fault sweep)
_SHAPED = ("e4", "e17")


def shape_of(value):
    """Recursive structural fingerprint: keys/lengths/types, no values."""
    if isinstance(value, dict):
        return {key: shape_of(val) for key, val in sorted(value.items())}
    if isinstance(value, list):
        return [shape_of(item) for item in value]
    return type(value).__name__


def _run(names, root_seed):
    with redirect_stdout(io.StringIO()):
        outcome = run_experiments(list(names), jobs=1, cache=None,
                                  root_seed=root_seed)
    assert not outcome.failed
    return outcome.values


@pytest.mark.parametrize("root_seed", [1, 12345])
def test_reseeded_experiments_keep_golden_shape(root_seed):
    seeded = _run(_SHAPED, root_seed)
    baseline = _run(_SHAPED, 0)
    for name in _SHAPED:
        assert shape_of(seeded[name]) == shape_of(baseline[name]), name


def test_reseeded_fault_sweep_keeps_shape_and_invariants():
    from repro.experiments.fault_sweep import measure_fault_point

    base = jsonable(measure_fault_point("lauberhorn", "storm", 0.02, 0.02,
                                        seed=0, n_requests=30))
    other = jsonable(measure_fault_point("lauberhorn", "storm", 0.02, 0.02,
                                         seed=99, n_requests=30))
    assert shape_of(base) == shape_of(other)
    assert other["violations"] == 0
