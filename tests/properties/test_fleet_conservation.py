"""Property: fleet-wide packet conservation holds under fault storms.

Every frame injected into any link of any switch (ToRs, spine,
trunks) must settle — delivered, dropped, or accounted lost — both
per link and fleet-summed, with E19-style loss/storm plans actively
deleting and duplicating frames mid-flight.  Client retransmission
makes the *workload* whole; the conservation invariant proves the
*fabric accounting* is whole.
"""

import pytest

from repro.check import install_fleet_checks
from repro.check.fleet import fleet_links
from repro.faults.context import active
from repro.faults.plan import FaultPlan
from repro.fleet import HostSpec, build_fleet
from repro.net.topology import TopologySpec
from repro.sim.clock import MS

#: E19's lossy and storm operating points, plus duplication (the
#: nastiest case for conservation: frames appear out of thin air).
PLANS = {
    "lossy": "seed=3,loss=0.02",
    "storm": "seed=3,loss=0.02,stall=0.02",
    "dup-storm": "seed=3,loss=0.02,dup=0.02,stall=0.01",
}


def _run_faulted_fleet(spec: str):
    with active(FaultPlan.from_spec(spec)):
        fleet = build_fleet(
            [HostSpec(stack="lauberhorn", tor=0),
             HostSpec(stack="linux", tor=1),
             HostSpec(stack="bypass", tor=0)],
            topo=TopologySpec(n_tors=2, n_trunks=2),
            n_clients=2,
        )
    fleet.deploy(cost_instructions=500)
    checks = install_fleet_checks(fleet)
    checks.start(150 * MS)
    completed = []

    def flow_loop(flow):
        client = fleet.clients[flow % len(fleet.clients)]
        yield fleet.sim.timeout(10_000)
        for k in range(5):
            yield fleet.send(client, 45_000 + flow, [k])
            completed.append((flow, k))

    for flow in range(8):
        fleet.sim.process(flow_loop(flow), name=f"flow{flow}")
    fleet.run(until=150 * MS)
    checks.finish()
    return fleet, checks, completed


@pytest.mark.parametrize("plan", sorted(PLANS))
def test_conservation_under_fault_plans(plan):
    fleet, checks, completed = _run_faulted_fleet(PLANS[plan])
    checks.assert_clean()
    assert len(completed) == 40  # retries recovered every injected loss
    # Not vacuous: the plan fired, somewhere, at least once.
    injected = fleet.fault_stats.total() + sum(
        m.fault_stats.total() for m in fleet.machines
        if m.fault_stats is not None)
    assert injected > 0


def test_fleet_summed_ledger_balances_after_drain():
    fleet, checks, _ = _run_faulted_fleet(PLANS["dup-storm"])
    checks.assert_clean()
    links = fleet_links(fleet)
    assert len(links) > 10  # 2 ToRs + spine + trunks, both directions
    injected = sum(l.stats.frames + l.stats.fault_duplicated for l in links)
    settled = sum(l.stats.delivered + l.stats.dropped + l.stats.fault_lost
                  for l in links)
    assert injected == settled
    # The faulted machinery actually lost and duplicated frames.
    assert sum(l.stats.fault_lost for l in links) > 0
    assert sum(l.stats.fault_duplicated for l in links) > 0


def test_calm_fleet_conserves_exactly():
    fleet = build_fleet(
        [HostSpec(stack="lauberhorn", tor=0), HostSpec(stack="linux", tor=1)],
        topo=TopologySpec(n_tors=2),
    )
    fleet.deploy(cost_instructions=500)
    checks = install_fleet_checks(fleet)
    checks.start(100 * MS)

    def driver():
        client = fleet.clients[0]
        yield fleet.sim.timeout(10_000)
        for k in range(10):
            yield fleet.send(client, 46_000, [k])

    fleet.sim.process(driver())
    fleet.run(until=100 * MS)
    checks.finish()
    checks.assert_clean()
    links = fleet_links(fleet)
    assert sum(l.stats.frames for l in links) == \
        sum(l.stats.delivered for l in links)
    assert sum(l.stats.dropped for l in links) == 0
