"""Property: a zero FaultPlan is indistinguishable from no plan.

The injectors promise to be strictly additive: a plan whose domains
are all inactive must install *nothing*, so a run under it is
byte-identical to a run that never imported the faults package.  This
is what keeps `--faults` safe to ship: the un-faulted numbers (and the
golden corpus, and BENCH_engine) cannot shift.
"""

import pytest

from repro.exp.pool import jsonable
from repro.experiments.four_stacks import STACKS, _build_stack, measure_stack
from repro.faults import FaultPlan, active


@pytest.mark.parametrize("stack", STACKS)
def test_zero_plan_results_identical(stack):
    baseline = jsonable(measure_stack(stack, n_requests=10))
    with active(FaultPlan()):
        under_zero_plan = jsonable(measure_stack(stack, n_requests=10))
    assert baseline == under_zero_plan


def test_zero_plan_installs_nothing():
    with active(FaultPlan()):
        bed, _service, _method = _build_stack("linux")
    assert bed.machine.faults is None
    assert bed.machine.fault_stats is None
    assert bed.nic.rx_fault is None
    for port in bed.switch.ports.values():
        assert port.ingress.fault is None
        assert port.egress.fault is None
    for client in bed.clients:
        assert client.retry_timeout_ns is None


def test_default_plan_installs_everything():
    with active(FaultPlan.default()):
        bed, _service, _method = _build_stack("linux")
    assert bed.machine.faults is not None
    assert bed.nic.rx_fault is not None
    for port in bed.switch.ports.values():
        assert port.ingress.fault is not None
        assert port.egress.fault is not None
    for client in bed.clients:
        assert client.retry_timeout_ns is not None
