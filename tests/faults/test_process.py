"""Crash/restart injection: kill_thread semantics and supervision."""

import pytest

from repro.experiments.four_stacks import HANDLER_COST
from repro.experiments.testbed import build_linux_testbed
from repro.faults import FaultPlan, WorkerSupervisor, active
from repro.os import ops
from repro.os.process import ThreadState
from repro.rpc.server import linux_udp_worker
from repro.sim.engine import Event


# -- Kernel.kill_thread --------------------------------------------------


def test_kill_queued_ready_thread():
    bed = build_linux_testbed()

    def body():
        yield ops.Exec(100)

    thread = bed.kernel.spawn_thread(bed.kernel.spawn_process("p"), body())
    assert thread.state is ThreadState.READY
    assert bed.kernel.kill_thread(thread)
    assert thread.state is ThreadState.DONE
    assert thread.exit_event.triggered
    assert bed.kernel.scheduler.total_queued() == 0
    # idempotent: a dead thread cannot be killed again
    assert not bed.kernel.kill_thread(thread)


def test_kill_blocked_thread_neuters_pending_wake():
    bed = build_linux_testbed()
    gate = Event(bed.sim)
    reached = []

    def body():
        yield ops.Block(event=gate)
        reached.append(True)

    thread = bed.kernel.spawn_thread(bed.kernel.spawn_process("p"), body())
    bed.sim.run(until=bed.sim.timeout(50_000))
    assert thread.state is ThreadState.BLOCKED
    assert bed.kernel.kill_thread(thread)
    assert thread.state is ThreadState.DONE
    # The event the dead thread was blocked on fires later: the wake
    # must be swallowed, not raise or resurrect the thread.
    gate.succeed(None)
    bed.sim.run(until=bed.sim.timeout(50_000))
    assert thread.state is ThreadState.DONE
    assert reached == []


def test_kill_runs_finally_blocks():
    bed = build_linux_testbed()
    cleaned = []
    gate = Event(bed.sim)

    def body():
        try:
            yield ops.Block(event=gate)
        finally:
            cleaned.append(True)

    thread = bed.kernel.spawn_thread(bed.kernel.spawn_process("p"), body())
    bed.sim.run(until=bed.sim.timeout(50_000))
    assert bed.kernel.kill_thread(thread)
    assert cleaned == [True]


# -- WorkerSupervisor ----------------------------------------------------


def test_supervisor_requires_process_faults():
    bed = build_linux_testbed()
    with pytest.raises(ValueError):
        WorkerSupervisor(bed.kernel, lambda: iter(()), FaultPlan())


def test_supervised_worker_crashes_restarts_and_keeps_serving():
    plan = FaultPlan.from_spec("crash=2000000,restart_ns=100000,seed=4")
    with active(plan):
        bed = build_linux_testbed()
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=HANDLER_COST)
    socket = bed.netstack.bind(9000)
    horizon = 40_000_000.0
    supervisor = WorkerSupervisor(
        bed.kernel,
        lambda: linux_udp_worker(socket, bed.registry),
        plan,
        name="srv",
        until_ns=horizon,
    )

    client = bed.clients[0]
    client.retry_timeout_ns = 500_000.0  # recover requests a crash ate
    completed = [0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(40):
            event = client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            event.add_callback(
                lambda _ev: completed.__setitem__(0, completed[0] + 1)
            )
            yield bed.sim.timeout(400_000)

    bed.sim.process(driver())
    bed.machine.run(until=horizon)

    assert supervisor.crashes > 0
    assert supervisor.restarts > 0
    assert bed.machine.fault_stats.crashes == supervisor.crashes
    # Service availability: restarts keep the vast majority flowing.
    assert completed[0] >= 35


def test_supervised_crash_schedule_replays():
    def run():
        plan = FaultPlan.from_spec("crash=1500000,seed=11")
        with active(plan):
            bed = build_linux_testbed()
        socket = bed.netstack.bind(9000)
        horizon = 20_000_000.0
        supervisor = WorkerSupervisor(
            bed.kernel,
            lambda: linux_udp_worker(socket, bed.registry),
            plan, name="srv", until_ns=horizon,
        )
        bed.machine.run(until=horizon)
        return supervisor.crashes, supervisor.restarts

    assert run() == run()
    assert run()[0] > 0
