"""Unit tests for the fault plan and the per-domain injectors."""

import pytest

from repro.faults import FaultPlan, InjectionStats
from repro.faults.inject import LinkFaultInjector, install_link_faults
from repro.net.headers import MacAddress
from repro.net.link import Link
from repro.net.packet import build_udp_frame
from repro.sim.engine import Simulator


def _frame(i=0):
    return build_udp_frame(
        src_mac=MacAddress.from_string("02:00:00:00:00:01"),
        dst_mac=MacAddress.from_string("02:00:00:00:00:02"),
        src_ip=1, dst_ip=2, src_port=1000, dst_port=2000,
        payload=bytes([i % 256]) * 32, born_ns=0.0,
    )


# -- plan / spec parsing -------------------------------------------------


def test_zero_plan_is_inactive():
    plan = FaultPlan()
    assert not plan.active
    for domain in (plan.link, plan.nic, plan.core, plan.coherence,
                   plan.process):
        assert not domain.active


def test_default_plan_is_active_everywhere_but_process():
    plan = FaultPlan.default()
    assert plan.active
    assert plan.link.active and plan.link.lossy
    assert plan.nic.active and plan.core.active and plan.coherence.active
    assert not plan.process.active  # needs a supervised worker


def test_from_spec_overrides_default():
    plan = FaultPlan.from_spec("default,loss=0.5,seed=9")
    assert plan.seed == 9
    assert plan.link.loss_rate == 0.5
    # untouched default rates survive
    assert plan.link.reorder_rate == FaultPlan.default().link.reorder_rate


@pytest.mark.parametrize("spec", ["loss", "bogus=1", "loss=x"])
def test_from_spec_rejects_bad_entries(spec):
    with pytest.raises(ValueError):
        FaultPlan.from_spec(spec)


def test_rng_streams_are_independent_and_deterministic():
    plan = FaultPlan(seed=5)
    a1 = [plan.rng("link", "p0").random() for _ in range(3)]
    a2 = [plan.rng("link", "p0").random() for _ in range(3)]
    b = [plan.rng("link", "p1").random() for _ in range(3)]
    assert a1 == a2
    assert a1 != b


# -- link injector -------------------------------------------------------


def _injector(sim, **rates):
    plan = FaultPlan.from_spec(
        ",".join(f"{k}={v}" for k, v in rates.items()) or "loss=0"
    )
    link = Link(sim, name="t")
    stats = InjectionStats()
    install_link_faults(link, plan, stats, "t")
    return link, stats


def test_loss_only_counts_fault_lost_not_dropped():
    sim = Simulator()
    link, stats = _injector(sim, loss=1.0)
    dropped = []
    link.on_drop = lambda _link, frame, reason: dropped.append(reason)
    assert link.fault.fate(link, _frame()) == ()
    assert stats.frames_lost == 1
    assert link.stats.fault_lost == 1
    assert link.stats.dropped == 0
    assert dropped == ["fault-loss"]


def test_corruption_flips_exactly_one_bit():
    sim = Simulator()
    link, stats = _injector(sim, corrupt=1.0)
    frame = _frame()
    (fated, extra), = link.fault.fate(link, frame)
    assert extra == 0.0
    assert len(fated.data) == len(frame.data)
    diff = [a ^ b for a, b in zip(fated.data, frame.data) if a != b]
    assert len(diff) == 1 and diff[0].bit_count() == 1
    assert stats.frames_corrupted == 1


def test_duplicate_produces_two_identical_deliveries():
    sim = Simulator()
    link, stats = _injector(sim, dup=1.0)
    frame = _frame()
    fates = link.fault.fate(link, frame)
    assert len(fates) == 2
    assert fates[0][0] is frame and fates[1][0] is frame
    assert stats.frames_duplicated == 1


def test_reorder_adds_extra_delay():
    sim = Simulator()
    link, stats = _injector(sim, reorder=1.0, reorder_ns=777.0)
    (fated, extra), = link.fault.fate(link, _frame())
    assert extra == 777.0
    assert stats.frames_reordered == 1


def test_fate_schedule_is_seed_deterministic():
    sim = Simulator()
    outcomes = []
    for _round in range(2):
        link, _stats = _injector(sim, loss=0.3, dup=0.3, reorder=0.3)
        outcomes.append(
            [len(link.fault.fate(link, _frame(i))) for i in range(50)]
        )
    assert outcomes[0] == outcomes[1]
    assert set(outcomes[0]) >= {0, 1, 2}  # loss, pass, duplicate all occur
