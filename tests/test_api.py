"""Tests for the high-level SimulatedCluster facade."""

import pytest

from repro.api import ClusterError, SimulatedCluster


def make_kv(stack, **kw):
    cluster = SimulatedCluster(stack=stack, **kw)
    store = {}

    @cluster.service("kv", port=9000, cost=600)
    def put(args):
        store[args[0]] = args[1]
        return ["ok"]

    @cluster.service("kv")
    def get(args):
        return [store.get(args[0], "missing")]

    return cluster, store


@pytest.mark.parametrize("stack", ["lauberhorn", "linux", "bypass"])
def test_kv_roundtrip_each_stack(stack):
    cluster, store = make_kv(stack)
    cluster.start()
    result = cluster.call("kv", "put", ["k", "v"])
    assert result.results == ["ok"]
    result = cluster.call("kv", "get", ["k"])
    assert result.results == ["v"]
    assert store == {"k": "v"}
    assert result.rtt_ns > 0


def test_multiple_services():
    cluster = SimulatedCluster(stack="lauberhorn")

    @cluster.service("a", port=9000, cost=300)
    def ping(args):
        return ["a"]

    @cluster.service("b", port=9001, cost=300)
    def pong(args):
        return ["b"]

    cluster.start()
    assert cluster.call("a", "ping", []).results == ["a"]
    assert cluster.call("b", "pong", []).results == ["b"]


def test_dedicated_core_uses_fast_path_immediately():
    cluster = SimulatedCluster(stack="lauberhorn")

    @cluster.service("hot", port=9000, dedicated_core=0, cost=300)
    def work(args):
        return list(args)

    cluster.start()
    cluster.run(0.1)  # let the loop arm
    result = cluster.call("hot", "work", [1])
    assert result.results == [1]
    assert cluster.stats.delivered_fast == 1
    assert cluster.stats.delivered_kernel == 0


def test_undedicated_service_served_by_dispatchers():
    cluster = SimulatedCluster(stack="lauberhorn", n_dispatchers=1)

    @cluster.service("cold", port=9000, cost=300)
    def work(args):
        return list(args)

    cluster.start()
    cluster.run(0.5)
    result = cluster.call("cold", "work", [2])
    assert result.results == [2]
    assert cluster.stats.delivered_kernel >= 1


def test_errors():
    with pytest.raises(ClusterError):
        SimulatedCluster(stack="nonsense")

    cluster = SimulatedCluster()
    with pytest.raises(ClusterError):
        cluster.start()  # no services

    @cluster.service("s", port=9000)
    def m(args):
        return []

    with pytest.raises(ClusterError):
        cluster.call("s", "m", [])  # not started
    cluster.start()
    with pytest.raises(ClusterError):
        cluster.call("nope", "m", [])
    with pytest.raises(ClusterError):
        cluster.call("s", "nope", [])
    with pytest.raises(ClusterError):
        cluster.service("late", port=9005)(lambda a: a)


def test_register_after_start_rejected_and_start_idempotent():
    cluster = SimulatedCluster()

    @cluster.service("s", port=9000)
    def m(args):
        return ["x"]

    cluster.start()
    cluster.start()  # idempotent
    assert cluster.call("s", "m", []).results == ["x"]


def test_busy_ns_accumulates():
    cluster, _ = make_kv("lauberhorn")
    cluster.start()
    cluster.call("kv", "put", ["a", 1])
    assert cluster.busy_ns() > 0
