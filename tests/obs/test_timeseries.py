"""TimeSeriesSampler: windows, ring bounds, rates, determinism."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler, Window
from repro.sim.engine import Simulator


def _sampler(window_ns=100.0, max_windows=4):
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("rx.frames")
    registry.gauge("q.depth")
    return sim, registry, counter, TimeSeriesSampler(
        sim, registry, window_ns=window_ns, max_windows=max_windows)


def test_windows_are_fixed_width_and_contiguous():
    sim, registry, counter, sampler = _sampler(max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler) == 9  # ticks at 100..900; the 1000 tick is cut
    widths = {w.width_ns for w in sampler.windows}
    assert widths == {100.0}
    for prev, cur in zip(list(sampler.windows), list(sampler.windows)[1:]):
        assert cur.start_ns == prev.end_ns
        assert cur.index == prev.index + 1


def test_ring_bound_and_exact_drop_accounting():
    sim, registry, counter, sampler = _sampler(max_windows=4)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler.windows) == 4
    assert sampler.dropped_windows == 5
    assert sampler.samples == 9
    assert sampler.samples == len(sampler.windows) + sampler.dropped_windows
    # The ring keeps the *most recent* windows.
    assert [w.index for w in sampler.windows] == [5, 6, 7, 8]


def test_finish_takes_trailing_partial_window():
    sim, registry, counter, sampler = _sampler(window_ns=300.0,
                                               max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler) == 3          # 300, 600, 900
    window = sampler.finish()
    assert window is not None and window.width_ns == pytest.approx(100.0)
    assert sampler.finish() is None   # no time passed since: no-op


def test_snapshot_values_and_series():
    sim, registry, counter, sampler = _sampler(max_windows=16)

    def load():
        # Offset the increments from the window boundaries so each
        # window unambiguously contains exactly one.
        yield sim.timeout(30.0)
        for _ in range(5):
            counter.inc(10)
            yield sim.timeout(100.0)

    sim.process(load())
    sampler.start(520.0)
    sim.run(until=520.0)
    series = sampler.series("rx.frames")
    assert [v for _, v in series] == [10, 20, 30, 40, 50]
    assert "rx.frames" in sampler.names()
    assert "q.depth" in sampler.names()


def test_rate_series_derives_per_second_rates():
    sim, registry, counter, sampler = _sampler(max_windows=16)

    def load():
        while True:
            counter.inc(3)
            yield sim.timeout(50.0)

    sim.process(load())
    sampler.start(1000.0)
    sim.run(until=1000.0)
    rates = sampler.rate_series("rx.frames")
    assert rates, "counter motion must produce rate points"
    # 3 per 50 ns == 6e7 per second, for every window after the first.
    for _, rate in rates:
        assert rate == pytest.approx(6 * 10 / 100 * 1e9 / 10)


def test_rate_series_skips_gauge_dips():
    sim = Simulator()
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0,
                                max_windows=16)

    def wiggle():
        yield sim.timeout(50.0)
        for value in [5, 2, 7]:
            gauge.set(value)
            yield sim.timeout(100.0)

    sim.process(wiggle())
    sampler.start(350.0)
    sim.run(until=400.0)
    rates = sampler.rate_series("depth")
    # Windows see 5, 2, 7: the 5 -> 2 dip is skipped, 2 -> 7 is kept.
    assert len(rates) == 1


def test_overlapping_and_window_overlaps():
    sim, registry, counter, sampler = _sampler(max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    hits = sampler.overlapping(250.0, 450.0)
    assert [w.index for w in hits] == [2, 3, 4]
    window = Window(0, 100.0, 200.0, {})
    assert window.overlaps(150.0, 160.0)
    assert not window.overlaps(200.0, 300.0)   # [start, end) exclusivity
    assert not window.overlaps(0.0, 100.0)


def test_as_dict_round_trips_through_json():
    import json

    sim, registry, counter, sampler = _sampler(max_windows=4)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    payload = json.loads(json.dumps(sampler.as_dict()))
    assert payload["samples"] == 9
    assert payload["dropped_windows"] == 5
    assert payload["max_windows"] == 4
    assert len(payload["windows"]) == 4
    assert payload["windows"][0]["values"]["rx.frames"] == 0


def test_non_numeric_snapshot_values_are_excluded():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.probe("a", lambda: {"n": 1, "label": "text"})
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0)
    sampler.start(150.0)
    sim.run(until=150.0)
    (window,) = sampler.windows
    assert window.values == {"a.n": 1}


def test_sampling_timer_does_not_move_simulated_results():
    """Armed and unarmed runs of the same workload agree exactly."""

    def run(armed: bool):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        stamps = []

        def workload():
            for _ in range(20):
                counter.inc()
                stamps.append(sim.now)
                yield sim.timeout(37.0)

        sim.process(workload())
        if armed:
            sampler = TimeSeriesSampler(sim, registry, window_ns=50.0)
            sampler.start(1000.0)
        sim.run(until=1000.0)
        return stamps

    assert run(armed=False) == run(armed=True)


def test_constructor_rejects_bad_config():
    sim = Simulator()
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, registry, window_ns=0.0)
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, registry, max_windows=0)
