"""TimeSeriesSampler: windows, ring bounds, rates, determinism."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesSampler, Window
from repro.sim.engine import Simulator


def _sampler(window_ns=100.0, max_windows=4):
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("rx.frames")
    registry.gauge("q.depth")
    return sim, registry, counter, TimeSeriesSampler(
        sim, registry, window_ns=window_ns, max_windows=max_windows)


def test_windows_are_fixed_width_and_contiguous():
    sim, registry, counter, sampler = _sampler(max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler) == 10  # ticks at 100..1000 inclusive
    widths = {w.width_ns for w in sampler.windows}
    assert widths == {100.0}
    for prev, cur in zip(list(sampler.windows), list(sampler.windows)[1:]):
        assert cur.start_ns == prev.end_ns
        assert cur.index == prev.index + 1


def test_ring_bound_and_exact_drop_accounting():
    sim, registry, counter, sampler = _sampler(max_windows=4)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler.windows) == 4
    assert sampler.dropped_windows == 6
    assert sampler.samples == 10
    assert sampler.samples == len(sampler.windows) + sampler.dropped_windows
    # The ring keeps the *most recent* windows.
    assert [w.index for w in sampler.windows] == [6, 7, 8, 9]


def test_finish_takes_trailing_partial_window():
    sim, registry, counter, sampler = _sampler(window_ns=300.0,
                                               max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert len(sampler) == 3          # 300, 600, 900
    window = sampler.finish()
    assert window is not None and window.width_ns == pytest.approx(100.0)
    assert sampler.finish() is None   # no time passed since: no-op


def test_snapshot_values_and_series():
    sim, registry, counter, sampler = _sampler(max_windows=16)

    def load():
        # Offset the increments from the window boundaries so each
        # window unambiguously contains exactly one.
        yield sim.timeout(30.0)
        for _ in range(5):
            counter.inc(10)
            yield sim.timeout(100.0)

    sim.process(load())
    sampler.start(520.0)
    sim.run(until=520.0)
    series = sampler.series("rx.frames")
    assert [v for _, v in series] == [10, 20, 30, 40, 50]
    assert "rx.frames" in sampler.names()
    assert "q.depth" in sampler.names()


def test_rate_series_derives_per_second_rates():
    sim, registry, counter, sampler = _sampler(max_windows=16)

    def load():
        while True:
            counter.inc(3)
            yield sim.timeout(50.0)

    sim.process(load())
    sampler.start(1000.0)
    sim.run(until=1000.0)
    rates = sampler.rate_series("rx.frames")
    assert rates, "counter motion must produce rate points"
    # 3 per 50 ns == 6e7 per second, for every window after the first.
    for _, rate in rates:
        assert rate == pytest.approx(6 * 10 / 100 * 1e9 / 10)


def test_rate_series_clamps_resets_to_zero_and_counts_them():
    sim = Simulator()
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0,
                                max_windows=16)

    def wiggle():
        yield sim.timeout(50.0)
        for value in [5, 2, 7]:
            gauge.set(value)
            yield sim.timeout(100.0)

    sim.process(wiggle())
    sampler.start(350.0)
    sim.run(until=400.0)
    rates = sampler.rate_series("depth")
    # Windows see 5, 2, 7: the 5 -> 2 dip is a reset (clamped to zero,
    # point kept), 2 -> 7 is a real rate.
    assert [r for _, r in rates] == [pytest.approx(0.0),
                                     pytest.approx(5 / 100 * 1e9)]
    assert sampler.rate_resets == {"depth": 1}
    # Re-querying the same retained windows is idempotent.
    sampler.rate_series("depth")
    assert sampler.rate_resets == {"depth": 1}
    # A clean counter leaves no reset entry behind.
    assert sampler.rate_series("missing") == []
    assert "missing" not in sampler.rate_resets


def test_overlapping_and_window_overlaps():
    sim, registry, counter, sampler = _sampler(max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    hits = sampler.overlapping(250.0, 450.0)
    assert [w.index for w in hits] == [2, 3, 4]
    window = Window(0, 100.0, 200.0, {})
    assert window.overlaps(150.0, 160.0)
    assert not window.overlaps(200.0, 300.0)   # [start, end) exclusivity
    assert not window.overlaps(0.0, 100.0)


def test_as_dict_round_trips_through_json():
    import json

    sim, registry, counter, sampler = _sampler(max_windows=4)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    payload = json.loads(json.dumps(sampler.as_dict()))
    assert payload["samples"] == 10
    assert payload["dropped_windows"] == 6
    assert payload["max_windows"] == 4
    assert payload["rate_resets"] == {}
    assert len(payload["windows"]) == 4
    assert payload["windows"][0]["values"]["rx.frames"] == 0


def test_non_numeric_snapshot_values_are_excluded():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.probe("a", lambda: {"n": 1, "label": "text"})
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0)
    sampler.start(150.0)
    sim.run(until=150.0)
    (window,) = sampler.windows
    assert window.values == {"a.n": 1}


def test_sampling_timer_does_not_move_simulated_results():
    """Armed and unarmed runs of the same workload agree exactly."""

    def run(armed: bool):
        sim = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("ticks")
        stamps = []

        def workload():
            for _ in range(20):
                counter.inc()
                stamps.append(sim.now)
                yield sim.timeout(37.0)

        sim.process(workload())
        if armed:
            sampler = TimeSeriesSampler(sim, registry, window_ns=50.0)
            sampler.start(1000.0)
        sim.run(until=1000.0)
        return stamps

    assert run(armed=False) == run(armed=True)


def test_overlaps_half_open_boundaries():
    """Spans on window edges join exactly one window — never 0 or 2."""
    left = Window(0, 0.0, 100.0, {})
    right = Window(1, 100.0, 200.0, {})
    # A span ending exactly on the edge belongs to the window it ends
    # in (left), not the one starting there (right).
    assert left.overlaps(50.0, 100.0)
    assert not right.overlaps(50.0, 100.0)
    # A span starting exactly on the edge belongs to the right window.
    assert not left.overlaps(100.0, 150.0)
    assert right.overlaps(100.0, 150.0)
    # A zero-duration span on the edge is an instant: it joins the
    # window *containing* that instant (half-open ⇒ the right one).
    assert not left.overlaps(100.0, 100.0)
    assert right.overlaps(100.0, 100.0)
    # A zero-duration span strictly inside joins its window.
    assert left.overlaps(50.0, 50.0)
    assert not right.overlaps(50.0, 50.0)


def test_overlapping_join_matches_tail_semantics():
    """sampler.overlapping() finds exactly one window for edge spans."""
    sim, registry, counter, sampler = _sampler(max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    # Span covering exactly one window width, edge to edge.
    assert [w.index for w in sampler.overlapping(200.0, 300.0)] == [2]
    # Zero-duration span on a shared edge: exactly one window.
    assert [w.index for w in sampler.overlapping(300.0, 300.0)] == [3]


def test_periodic_fires_final_tick_on_exact_multiple_horizon():
    """Regression: horizon == k * interval must include the k-th tick."""
    sim, registry, counter, sampler = _sampler(window_ns=250.0,
                                               max_windows=16)
    sampler.start(1000.0)
    sim.run(until=1000.0)
    assert [w.end_ns for w in sampler.windows] == [250.0, 500.0,
                                                   750.0, 1000.0]
    # The horizon-aligned window exists; finish() has nothing to add.
    assert sampler.finish() is None


def test_subscribe_tap_sees_every_window_as_it_closes():
    sim, registry, counter, sampler = _sampler(max_windows=2)
    seen = []
    sampler.subscribe(lambda w: seen.append((w.index, sim.now)))
    sampler.start(500.0)
    sim.run(until=500.0)
    # The tap saw all five windows at their close instants, even the
    # ones the ring later evicted (max_windows=2).
    assert seen == [(0, 100.0), (1, 200.0), (2, 300.0),
                    (3, 400.0), (4, 500.0)]
    assert len(sampler.windows) == 2
    with pytest.raises(TypeError):
        sampler.subscribe("not-callable")


def test_crash_restart_counter_reset_is_clamped_and_counted():
    """A supervised worker's crash resets its per-incarnation counter;
    rate_series must clamp the dip and tally it in rate_resets."""
    from repro.experiments.testbed import build_linux_testbed
    from repro.faults import FaultPlan, WorkerSupervisor, active
    from repro.os import ops

    plan = FaultPlan.from_spec("crash=2000000,restart_ns=100000,seed=4")
    with active(plan):
        bed = build_linux_testbed()
    holder = {}

    def factory():
        state = {"served": 0}
        holder["state"] = state

        def body():
            while True:
                yield ops.ExecNs(20_000)
                state["served"] += 1
                yield ops.Sleep(80_000)

        return body()

    horizon = 20_000_000.0
    supervisor = WorkerSupervisor(
        bed.kernel, factory, plan, name="srv", until_ns=horizon)
    registry = MetricsRegistry()
    registry.probe("srv", lambda: {"served": holder["state"]["served"]})
    sampler = TimeSeriesSampler(bed.sim, registry, window_ns=500_000.0,
                                max_windows=64)
    sampler.start(horizon)
    bed.machine.run(until=horizon)
    assert supervisor.crashes > 0 and supervisor.restarts > 0
    rates = sampler.rate_series("srv.served")
    assert rates and all(rate >= 0.0 for _, rate in rates)
    # Every restart that straddled a window boundary shows up here.
    assert sampler.rate_resets.get("srv.served", 0) >= 1
    assert sampler.rate_resets == json.loads(
        json.dumps(sampler.as_dict()))["rate_resets"]


def test_constructor_rejects_bad_config():
    sim = Simulator()
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, registry, window_ns=0.0)
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, registry, max_windows=0)
