"""E20: attribution correctness and the zero-overhead guarantee."""

import json

import pytest

from repro.experiments.four_stacks import STACKS
from repro.experiments.obs_attribution import (
    STAGE_ORDER,
    measure_obs_stack,
    render_obs_attribution,
    write_trace_artifact,
)
from repro.obs.export import validate_chrome_trace


@pytest.fixture(scope="module")
def results():
    return {stack: measure_obs_stack(stack, n_requests=6)
            for stack in STACKS}


@pytest.mark.parametrize("stack", STACKS)
def test_arming_does_not_move_simulated_results(results, stack):
    # The tentpole guarantee: spans never touch the simulator, so the
    # armed run's RTT list is bit-identical to the unarmed run's.
    assert results[stack].identical


@pytest.mark.parametrize("stack", STACKS)
def test_span_trees_are_clean(results, stack):
    assert results[stack].violations == []


@pytest.mark.parametrize("stack", STACKS)
def test_every_expected_stage_is_attributed(results, stack):
    result = results[stack]
    for stage in STAGE_ORDER[stack]:
        assert stage in result.stages, (stack, sorted(result.stages))
        count, mean = result.stages[stage]
        assert count > 0 and mean >= 0.0
    assert "rpc" in result.stages
    assert result.p50_rtt_ns > 0
    assert result.metric_rows > 0
    assert result.spans


def test_linux_attribution_includes_socket_wait(results):
    # The kernel stack's defining overhead must be visible by name.
    assert "os.socket" in results["linux"].stages or \
        "os.softirq" in results["linux"].stages


def test_render_and_artifact(results, tmp_path, capsys):
    ordered = [results[stack] for stack in STACKS]
    render_obs_attribution(ordered)
    out = capsys.readouterr().out
    for stack in STACKS:
        assert f"{stack} — per-stage latency attribution" in out
    assert "Tracing overhead" in out

    path = tmp_path / "artifacts" / "e20_trace.json"
    payload = write_trace_artifact(ordered, str(path))
    assert validate_chrome_trace(payload) == []
    on_disk = json.loads(path.read_text())
    process_names = {e["args"]["name"] for e in on_disk["traceEvents"]
                     if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_names == set(STACKS)


def test_e20_registered_with_runner():
    from repro.exp.jobs import EXPERIMENT_SPECS

    spec = EXPERIMENT_SPECS["e20"]
    jobs = spec.build_jobs(0)
    assert [job.job_id for job in jobs] == [f"e20/{s}" for s in STACKS]
    assert spec.assemble is not None
