"""Arming never perturbs a run: fleet (E23) and tenancy (E24) cells.

E20 proved armed-vs-unarmed byte-identity for the single-host obs
stack; these tests extend the proof to the two subsystems built since:
a 2-ToR fleet and a tenanted Lauberhorn host under a (small) noisy
neighbour — each driven twice, once bare and once with the full obs
stack armed (spans with origin tagging, metrics, sampler, flight,
SLO tracker), asserting the victim's RTT stream is *exactly* equal.
"""

import random

from repro.fleet import HostSpec, build_fleet
from repro.net.topology import TopologySpec
from repro.obs import (
    FlightRecorder,
    SLOSpec,
    SLOTracker,
    TimeSeriesSampler,
    arm_flight,
    arm_testbed,
    bind_testbed_metrics,
    fold_spans,
    tail_report,
)
from repro.sim.clock import MS
from repro.tenancy import TenantTable
from repro.workloads.distributions import args_for_payload
from repro.workloads.generator import OpenLoopGenerator, ServiceMix, Target
from repro.experiments.testbed import build_lauberhorn_testbed, deploy_service

HORIZON_NS = 8 * MS
N_VICTIM = 60


def _slo_specs():
    return [SLOSpec(name="victim", tenant="victim",
                    latency_threshold_ns=50_000.0, latency_target=0.95,
                    fast_window_ns=500_000.0, slow_window_ns=2 * MS)]


def _arm(bed_or_fleet, horizon_ns):
    recorder = arm_testbed(bed_or_fleet)
    recorder.tag_origin = True
    flight = FlightRecorder(bed_or_fleet.sim, capacity=256)
    arm_flight(bed_or_fleet, flight, recorder=recorder)
    registry = bind_testbed_metrics(bed_or_fleet)
    sampler = TimeSeriesSampler(bed_or_fleet.sim, registry,
                                window_ns=250_000.0, max_windows=64)
    tracker = SLOTracker(bed_or_fleet.sim, _slo_specs(), flight=flight)
    tracker.arm(recorder=recorder, sampler=sampler, registry=registry)
    sampler.start(horizon_ns)
    return recorder, registry, sampler, tracker, flight


# -- tenancy (E24-shaped) -----------------------------------------------------


def _drive_tenancy(armed: bool):
    bed = build_lauberhorn_testbed(n_clients=2, seed=0,
                                   preempt_on_backlog=True)
    table = TenantTable()
    table.create("victim", weight=2.0)
    table.create("aggressor", weight=1.0, rate_limit_rps=50_000.0,
                 rate_burst=16.0)
    bed.nic.attach_tenants(table)
    victim_service, victim_method = deploy_service(
        bed, "lauberhorn", name="victim", udp_port=9000,
        cost_instructions=500, core=0, tenant="victim")
    aggr_service, aggr_method = deploy_service(
        bed, "lauberhorn", name="aggr", udp_port=9100,
        cost_instructions=2000, core=1, tenant="aggressor", encrypted=True)

    obs = _arm(bed, HORIZON_NS) if armed else None

    def aggressor():
        rng = random.Random(17)
        args = args_for_payload(1024)
        for _ in range(200):
            bed.clients[1].send_request(
                bed.server_mac, bed.server_ip, aggr_service.udp_port,
                aggr_service.service_id, aggr_method.method_id, args)
            yield bed.sim.timeout(rng.expovariate(1.0) * 2_000.0)

    bed.sim.process(aggressor())
    victim = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(victim_service, victim_method)]),
        bed.server_mac, bed.server_ip, random.Random(1))
    bed.sim.process(victim.run(50_000.0, N_VICTIM))
    bed.sim.run(until=HORIZON_NS)
    return list(victim.recorder.samples), obs


def test_armed_tenancy_cell_is_byte_identical():
    base, _ = _drive_tenancy(armed=False)
    armed, obs = _drive_tenancy(armed=True)
    assert base == armed
    assert len(base) == N_VICTIM


def test_tenancy_arming_tags_spans_and_exports_tenant_rows():
    _, (recorder, registry, sampler, tracker, flight) = _drive_tenancy(
        armed=True)
    tenants = {root.fields.get("tenant") for root in recorder.roots()
               if root.finished}
    assert {"victim", "aggressor"} <= tenants
    # both tenant metric views: nested by name and flat by id
    snapshot = registry.snapshot()
    assert "nic.tenants.victim.admitted" in snapshot
    assert "nic.tenants.aggressor.rate_dropped" in snapshot
    assert "nic.tenant.1.admitted" in snapshot   # ids are 1-based
    assert "nic.tenant.2.admitted" in snapshot
    assert (snapshot["nic.tenant.1.admitted"]
            == snapshot["nic.tenants.victim.admitted"])
    # the SLO ledger saw exactly the victim's completions
    assert tracker.report()["specs"]["victim"]["total"] == N_VICTIM
    # flame folding stays exact on tenant-tagged trees
    profile = fold_spans(recorder)
    assert "host0/victim" in profile.groups()
    for group in profile.groups():
        assert profile.self_sum_ns(group) == profile.root_sum_ns(group)
    # tail records carry (host, tenant) origin and the group rollup
    sampler.finish()
    report = tail_report(recorder, sampler, flight=flight, quantile=0.99)
    assert report["groups"]
    assert all("/" in key for key in report["groups"])


# -- fleet (E23-shaped) -------------------------------------------------------


FLEET_HORIZON_NS = 10 * MS
N_FLEET = 40


def _drive_fleet(armed: bool):
    fleet = build_fleet(
        [HostSpec(stack="lauberhorn", tor=0),
         HostSpec(stack="lauberhorn", tor=1)],
        topo=TopologySpec(n_tors=2),
        n_clients=1,
        seed=0,
    )
    fleet.deploy(name="svc", udp_port=9000, cost_instructions=500)
    obs = _arm(fleet, FLEET_HORIZON_NS) if armed else None

    rtts: list = []

    def loop():
        rng = random.Random(1)
        for k in range(N_FLEET):
            event = fleet.send(fleet.clients[0], 41000 + (k % 8), [k])
            event.add_callback(lambda ev: rtts.append(ev.value.rtt_ns))
            yield fleet.sim.timeout(rng.expovariate(1.0) * 20_000.0)

    fleet.sim.process(loop())
    fleet.run(until=FLEET_HORIZON_NS)
    return rtts, obs


def test_armed_fleet_cell_is_byte_identical():
    base, _ = _drive_fleet(armed=False)
    armed, obs = _drive_fleet(armed=True)
    assert base == armed
    assert len(base) == N_FLEET


def test_fleet_arming_tags_span_hosts():
    _, (recorder, registry, sampler, tracker, flight) = _drive_fleet(
        armed=True)
    hosts = {root.fields.get("host") for root in recorder.roots()
             if root.finished}
    # ECMP spreads the 8 flows over both replicas
    assert hosts == {"host0", "host1"}
    profile = fold_spans(recorder)
    assert set(profile.groups()) <= {"host0/-", "host1/-"}
    for group in profile.groups():
        assert profile.self_sum_ns(group) == profile.root_sum_ns(group)
