"""FlightRecorder: ring bounds, queries, dump-on-violation."""

import json

import pytest

from repro.check.registry import CheckRegistry
from repro.obs.flight import FlightRecorder
from repro.sim.engine import Simulator


def test_note_records_time_kind_fields():
    sim = Simulator()
    flight = FlightRecorder(sim)
    flight.note("sched.dispatch", core=3, thread="worker")
    (event,) = flight.snapshot()
    assert event == {"time_ns": 0.0, "kind": "sched.dispatch",
                     "fields": {"core": 3, "thread": "worker"}}


def test_ring_bound_and_exact_drop_accounting():
    sim = Simulator()
    flight = FlightRecorder(sim, capacity=8)
    for index in range(30):
        flight.note("tick", index=index)
    assert len(flight) == 8
    assert flight.dropped == 22
    assert flight.recorded == 30
    assert flight.recorded == len(flight) + flight.dropped
    # The ring keeps the most recent events.
    indices = [event["fields"]["index"] for event in flight.snapshot()]
    assert indices == list(range(22, 30))


def test_events_between_and_kinds():
    sim = Simulator()
    flight = FlightRecorder(sim)

    def workload():
        for index in range(5):
            flight.note("a" if index % 2 == 0 else "b", index=index)
            yield sim.timeout(100.0)

    sim.process(workload())
    sim.run()
    window = flight.events_between(100.0, 300.0)
    assert [e["fields"]["index"] for e in window] == [1, 2, 3]
    assert flight.kinds() == {"a": 3, "b": 2}


def test_dump_and_dump_json(tmp_path):
    sim = Simulator()
    flight = FlightRecorder(sim, capacity=4)
    for index in range(6):
        flight.note("tick", index=index)
    reason = {"check": "demo", "detail": "it broke"}
    path = tmp_path / "flight.json"
    payload = flight.dump_json(str(path), reason=reason)
    assert payload["reason"] == reason
    assert payload["capacity"] == 4
    assert payload["recorded"] == 6 and payload["dropped"] == 2
    assert payload["kinds"] == {"tick": 4}
    assert json.loads(path.read_text()) == payload


def test_constructor_rejects_bad_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(Simulator(), capacity=0)


# -- the CheckRegistry integration: dump on first violation ---------------


def _registry_with_flight(sim):
    checks = CheckRegistry(sim)
    flight = FlightRecorder(sim, capacity=16)
    checks.flight = flight
    return checks, flight


def test_violation_freezes_flight_dump():
    sim = Simulator()
    checks, flight = _registry_with_flight(sim)
    flight.note("sched.dispatch", core=0)
    checks.add("always-broken", lambda: ["queue went negative"])
    checks.check_now()
    dump = checks.flight_dump
    assert dump is not None
    assert dump["reason"]["check"] == "always-broken"
    assert dump["reason"]["detail"] == "queue went negative"
    # The trigger is noted into the ring before dumping, so the dump
    # records its own cause as the final event.
    assert dump["events"][-1]["kind"] == "invariant.violation"
    assert dump["events"][0]["kind"] == "sched.dispatch"


def test_dump_taken_exactly_once_at_first_violation():
    sim = Simulator()
    checks, flight = _registry_with_flight(sim)
    checks.add("broken", lambda: ["first"])
    checks.check_now()
    first_dump = checks.flight_dump
    flight.note("later", index=1)
    checks.check_now()
    assert checks.flight_dump is first_dump
    assert len(checks.violations) == 2


def test_dump_written_to_path_when_configured(tmp_path):
    sim = Simulator()
    checks, flight = _registry_with_flight(sim)
    path = tmp_path / "postmortem.json"
    checks.flight_dump_path = str(path)
    checks.add("broken", lambda: ["boom"])
    checks.check_now()
    on_disk = json.loads(path.read_text())
    assert on_disk == checks.flight_dump
    assert on_disk["reason"]["check"] == "broken"


def test_no_dump_without_flight_or_without_violation():
    sim = Simulator()
    checks = CheckRegistry(sim)
    checks.add("broken", lambda: ["boom"])
    checks.check_now()
    assert checks.flight_dump is None      # no recorder attached

    checks, flight = _registry_with_flight(sim)
    checks.add("healthy", lambda: ())
    checks.check_now()
    assert checks.flight_dump is None      # nothing went wrong


def test_periodic_sampler_dumps_mid_run():
    sim = Simulator()
    checks, flight = _registry_with_flight(sim)
    checks.add("breaks-at-1ms",
               lambda: ["late failure"] if sim.now >= 1_000_000 else ())

    def workload():
        for index in range(20):
            flight.note("tick", index=index)
            yield sim.timeout(100_000.0)

    sim.process(workload())
    checks.start(2_000_000.0)
    sim.run(until=2_000_000.0)
    dump = checks.flight_dump
    assert dump is not None
    assert dump["reason"]["time_ns"] == pytest.approx(1_000_000.0)
    # Only events up to the violation instant are in the post-mortem.
    ticks = [e for e in dump["events"] if e["kind"] == "tick"]
    assert ticks and all(e["time_ns"] <= 1_000_000.0 for e in ticks)
