"""Tail forensics: joining spans, windows, and flight events."""

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.obs.tail import (
    STATE_PATTERNS,
    render_tail_report,
    slow_roots,
    slow_roots_by_group,
    tail_report,
)
from repro.obs.timeseries import TimeSeriesSampler
from repro.sim.engine import Simulator


def _scene():
    """Ten requests, one slow outlier, windows + flight around them."""
    sim = Simulator()
    recorder = SpanRecorder(sim)
    registry = MetricsRegistry()
    depth = registry.gauge("server.runq.depth")
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0,
                                max_windows=64)
    flight = FlightRecorder(sim)

    def workload():
        for index in range(10):
            start = sim.now
            duration = 500.0 if index == 7 else 50.0
            if index == 7:
                depth.set(9)
                flight.note("sched.dispatch", core=0, queued=9)
            yield sim.timeout(duration)
            trace_id = index + 1
            root = recorder.record("rpc", "app", (trace_id, None),
                                   start, sim.now)
            recorder.record("handler", "app", (trace_id, root.span_id),
                            start + 1.0, sim.now - 1.0)
            depth.set(0)

    sim.process(workload())
    sampler.start(2000.0)
    sim.run(until=2000.0)
    return recorder, sampler, flight


def test_slow_roots_picks_the_outlier():
    recorder, sampler, flight = _scene()
    slow = slow_roots(recorder, quantile=0.999)
    assert len(slow) == 1
    assert slow[0].duration_ns == 500.0


def test_slow_roots_never_empty_when_roots_finished():
    recorder, sampler, flight = _scene()
    for quantile in (0.5, 0.99, 0.999, 1.0):
        assert slow_roots(recorder, quantile=quantile)


def test_tail_report_joins_windows_state_and_flight():
    recorder, sampler, flight = _scene()
    report = tail_report(recorder, sampler, flight=flight, quantile=0.999)
    assert report["n_requests"] == 10
    assert report["n_slow"] == 1
    assert report["truncated"] == 0
    (record,) = report["requests"]
    assert record["duration_ns"] == 500.0
    assert record["stages"] == {"handler": 498.0}
    # The slow request overlapped real windows...
    assert record["window_indices"] and not record["windows_missing"]
    # ...whose state captured the deep queue while it was in flight.
    assert record["state"]["server.runq.depth"]["max"] == 9
    # ...and the dispatch decision landed inside its lifetime.
    assert any(e["kind"] == "sched.dispatch" for e in record["flight"])


def test_tail_report_without_flight_omits_flight_key():
    recorder, sampler, flight = _scene()
    report = tail_report(recorder, sampler, quantile=0.999)
    (record,) = report["requests"]
    assert "flight" not in record


def test_tail_report_flags_evicted_windows():
    recorder, sampler, flight = _scene()
    # Shrink the ring after the fact: drop every window the slow
    # request (which starts at 350 ns) could have overlapped.
    while sampler.windows and sampler.windows[0].end_ns < 1900.0:
        sampler.windows.popleft()
        sampler.dropped_windows += 1
    report = tail_report(recorder, sampler, quantile=0.999)
    (record,) = report["requests"]
    assert record["windows_missing"]
    assert record["state"] == {}


def test_tail_report_truncates_at_max_requests():
    recorder, sampler, flight = _scene()
    report = tail_report(recorder, sampler, quantile=0.0, max_requests=3)
    assert report["n_slow"] == 10
    assert len(report["requests"]) == 3
    assert report["truncated"] == 7
    # Slowest first.
    durations = [r["duration_ns"] for r in report["requests"]]
    assert durations == sorted(durations, reverse=True)


def test_render_tail_report_mentions_the_evidence():
    recorder, sampler, flight = _scene()
    report = tail_report(recorder, sampler, flight=flight, quantile=0.999)
    text = render_tail_report(report, title="demo")
    assert "demo" in text and "p99.9" in text
    assert "handler" in text
    assert "server.runq.depth" in text
    assert "flight event(s)" in text


def test_state_patterns_cover_the_interesting_namespaces():
    # The join keys must keep matching what the components bind.
    for fragment in ("runq", "backlog", "tryagain", "fault", "idle_cores"):
        assert fragment in STATE_PATTERNS


# -- (host, tenant) origin attribution ---------------------------------------


def _tagged_scene():
    """Two hosts' requests, fleet-namespaced metrics, one slow victim."""
    sim = Simulator()
    recorder = SpanRecorder(sim)
    registry = MetricsRegistry()
    depth0 = registry.gauge("host0.server.runq.depth")
    depth1 = registry.gauge("host1.server.runq.depth")
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0,
                                max_windows=64)

    def workload():
        for index in range(10):
            start = sim.now
            slow = index == 7
            duration = 500.0 if slow else 50.0
            depth0.set(9 if slow else 0)
            depth1.set(1)
            yield sim.timeout(duration)
            root = recorder.record("rpc", "app", (index + 1, None),
                                   start, sim.now)
            root.fields["host"] = "host0" if slow else "host1"
            root.fields["tenant"] = "victim" if slow else "bystander"

    sim.process(workload())
    sampler.start(2000.0)
    sim.run(until=2000.0)
    return recorder, sampler


def test_slow_roots_by_group_buckets_on_origin():
    recorder, sampler = _tagged_scene()
    grouped = slow_roots_by_group(recorder, quantile=0.0)
    assert set(grouped) == {("host0", "victim"), ("host1", "bystander")}
    assert len(grouped[("host0", "victim")]) == 1
    assert grouped[("host0", "victim")][0].duration_ns == 500.0


def test_untagged_roots_bucket_under_the_dash():
    recorder, sampler, flight = _scene()
    grouped = slow_roots_by_group(recorder, quantile=0.999)
    assert set(grouped) == {("-", "-")}


def test_tail_report_state_join_is_host_scoped():
    recorder, sampler = _tagged_scene()
    report = tail_report(recorder, sampler, quantile=0.999)
    (record,) = report["requests"]
    assert record["host"] == "host0"
    assert record["tenant"] == "victim"
    # the slow host0 request joins host0's queue, never host1's
    assert record["state"]["host0.server.runq.depth"]["max"] == 9
    assert "host1.server.runq.depth" not in record["state"]
    # the rollup covers all slow roots, keyed host/tenant
    assert report["groups"]["host0/victim"]["n_slow"] == 1
    assert report["groups"]["host0/victim"]["worst_ns"] == 500.0
    text = render_tail_report(report)
    assert "(host0/victim)" in text
    assert "[host0/victim]" in text


def test_untagged_report_has_no_origin_keys():
    recorder, sampler, flight = _scene()
    report = tail_report(recorder, sampler, quantile=0.999)
    assert "groups" not in report       # byte-identical to historical
    (record,) = report["requests"]
    assert "host" not in record and "tenant" not in record
