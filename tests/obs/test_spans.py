"""Span layer: recorder semantics, meta hygiene, tree integrity.

The end-to-end tests arm real testbeds (all four stacks) and assert
the structural invariants of the resulting span trees — every span's
parent lives in the same trace, every trace has exactly one root, no
span is left open — under a calm wire and under a lossy fault plan.
"""

import pytest

from repro.experiments.four_stacks import STACKS, _build_stack
from repro.faults.context import active
from repro.faults.plan import FaultPlan
from repro.obs.instrument import arm_testbed
from repro.obs.spans import SpanRecorder, public_meta
from repro.sim.clock import MS
from repro.sim.engine import Simulator


# -- unit level --------------------------------------------------------------


def _recorder():
    return SpanRecorder(Simulator())


def test_root_child_linking_and_ctx():
    rec = _recorder()
    root = rec.start_trace("rpc", "client", request_id=7)
    child = rec.start("nic.rx", "nic", root.ctx)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert root.parent_id is None
    assert root.fields == {"request_id": 7}
    assert len(rec) == 2


def test_trace_and_span_ids_are_unique():
    rec = _recorder()
    roots = [rec.start_trace("rpc", "client") for _ in range(10)]
    assert len({r.trace_id for r in roots}) == 10
    assert len({r.span_id for r in roots}) == 10


def test_finish_sets_end_and_rejects_double_close():
    rec = _recorder()
    span = rec.start_trace("rpc", "client")
    rec.sim.now = 50.0
    assert rec.finish(span, verdict="ok") == 50.0
    assert span.fields["verdict"] == "ok"
    with pytest.raises(ValueError):
        rec.finish(span)


def test_open_span_has_no_duration():
    rec = _recorder()
    span = rec.start_trace("rpc", "client")
    assert not span.finished
    with pytest.raises(ValueError):
        span.duration_ns


def test_record_synthesized_interval():
    rec = _recorder()
    root = rec.start_trace("rpc", "client")
    span = rec.record("wire.req", "net", root.ctx, 10.0, 35.0)
    assert span.finished and span.duration_ns == 25.0
    assert rec.children_of(root) == [span]


def test_mirror_into_tracer():
    from repro.hw import ENZIAN, Machine

    machine = Machine(ENZIAN, trace=True)
    rec = SpanRecorder(machine.sim, tracer=machine.tracer)
    root = rec.start_trace("rpc", "client")
    rec.finish(root)
    mirrored = [r for r in machine.tracer.records if r.category == "span"]
    assert len(mirrored) == 1
    assert mirrored[0].fields["trace_id"] == root.trace_id


def test_integrity_flags_violations():
    rec = _recorder()
    root = rec.start_trace("rpc", "client")
    rec.finish(root)
    assert rec.check_integrity() == []

    orphan = rec.record("x", "nic", (root.trace_id, 999), 0.0, 1.0)
    problems = rec.check_integrity()
    assert any("does not exist" in p for p in problems)

    other = rec.start_trace("rpc", "client")
    cross = rec.record("y", "nic", (other.trace_id, root.span_id), 0.0, 1.0)
    problems = rec.check_integrity(require_closed=False)
    assert any(f"span {cross.span_id}" in p and "trace" in p
               for p in problems)
    assert orphan.trace_id == root.trace_id  # setup sanity


def test_integrity_flags_open_and_backwards_spans():
    rec = _recorder()
    root = rec.start_trace("rpc", "client")
    assert any("never closed" in p for p in rec.check_integrity())
    assert rec.check_integrity(require_closed=False) == []
    rec.record("back", "net", root.ctx, 10.0, 5.0)
    assert any("before it starts" in p
               for p in rec.check_integrity(require_closed=False))


def test_public_meta_strips_internal_stamps():
    meta = {"request_id": 1, "obs": (1, 1), "_obs_rx_ns": 5.0,
            "_obs_enq_ns": 6.0}
    cleaned = public_meta(meta)
    assert cleaned == {"request_id": 1, "obs": (1, 1)}
    untouched = {"request_id": 1, "obs": (1, 1)}
    assert public_meta(untouched) is untouched  # no copy when clean


# -- end to end: every stack, calm wire --------------------------------------


def _run_armed(stack: str, n_requests: int = 8):
    bed, service, method = _build_stack(stack)
    recorder = arm_testbed(bed)
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        events = [
            client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [i],
            )
            for i in range(n_requests)
        ]
        for event in events:
            yield event

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    return recorder


@pytest.mark.parametrize("stack", STACKS)
def test_span_tree_integrity_calm(stack):
    recorder = _run_armed(stack)
    assert recorder.check_integrity() == []
    traces = recorder.traces()
    assert len(traces) == 8  # one trace per request
    for spans in traces.values():
        names = [s.name for s in spans]
        assert names.count("rpc") == 1
        for required in ("wire.req", "nic.rx", "app", "nic.tx", "wire.resp"):
            assert required in names, (stack, names)
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "rpc"
        # Children nest inside the root's window.
        for span in spans:
            assert span.start_ns >= root.start_ns
            assert span.end_ns <= root.end_ns


def test_linux_has_os_stages_and_lauberhorn_has_nic_stages():
    linux = {s.name for s in _run_armed("linux").spans}
    assert {"os.softirq", "os.tx"} <= linux
    lauberhorn = {s.name for s in _run_armed("lauberhorn").spans}
    assert {"nic.dispatch", "nic.egress"} <= lauberhorn


def test_unarmed_run_leaves_no_obs_meta():
    bed, service, method = _build_stack("linux")
    client = bed.clients[0]
    seen = []

    def driver():
        yield bed.sim.timeout(10_000)
        result = yield client.send_request(
            bed.server_mac, bed.server_ip, service.udp_port,
            service.service_id, method.method_id, [1],
        )
        seen.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=2000 * MS)
    assert seen and client.obs is None


# -- end to end: lossy wire ---------------------------------------------------


@pytest.mark.parametrize("stack", ["linux", "lauberhorn"])
def test_span_tree_integrity_lossy(stack):
    plan = FaultPlan.from_spec("loss=0.05,seed=3")
    with active(plan):
        recorder = _run_armed(stack, n_requests=20)
    # Dropped requests may leave their root (and a lauberhorn dispatch
    # window) open, but the structural invariants must survive
    # retransmission and duplicate delivery.
    assert recorder.check_integrity(require_closed=False) == []
    assert len(recorder.traces()) == 20
