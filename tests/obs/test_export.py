"""Exporters: Chrome trace-event JSON, schema validation, summaries."""

import json

from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    render_critical_path,
    render_stage_summary,
    stage_attribution,
    validate_chrome_trace,
)
from repro.obs.spans import Span, SpanRecorder
from repro.sim.engine import Simulator


def _sample_spans():
    rec = SpanRecorder(Simulator())
    root = rec.start_trace("rpc", "client", request_id=1)
    rec.record("wire.req", "net", root.ctx, 0.0, 4000.0)
    rec.record("nic.rx", "nic", root.ctx, 4000.0, 4500.0, queue=0)
    rec.sim.now = 12_000.0
    rec.finish(root)
    return rec.spans


def test_chrome_events_shape_and_units():
    events = chrome_trace_events(_sample_spans(), pid=3, process_name="lb")
    meta = [e for e in events if e["ph"] == "M"]
    slices = [e for e in events if e["ph"] == "X"]
    assert meta[0]["args"]["name"] == "lb"
    assert len(slices) == 3
    wire = next(e for e in slices if e["name"] == "wire.req")
    assert wire["ts"] == 0.0 and wire["dur"] == 4.0  # ns -> us
    assert wire["cat"] == "net"
    assert all(e["pid"] == 3 for e in events)
    rx = next(e for e in slices if e["name"] == "nic.rx")
    assert rx["args"]["queue"] == 0
    assert rx["args"]["parent_id"] == 1


def test_chrome_events_skip_open_spans():
    rec = SpanRecorder(Simulator())
    rec.start_trace("rpc", "client")  # never finished
    events = chrome_trace_events(rec.spans)
    assert not [e for e in events if e["ph"] == "X"]


def test_chrome_events_accept_span_dicts():
    spans = [span.as_dict() for span in _sample_spans()]
    from_dicts = chrome_trace_events(spans)
    from_objects = chrome_trace_events(_sample_spans())
    assert from_dicts == from_objects


def test_export_and_validate_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    payload = export_chrome_trace(str(path), {
        "linux": _sample_spans(),
        "lauberhorn": [s.as_dict() for s in _sample_spans()],
    })
    assert validate_chrome_trace(payload) == []
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["displayTimeUnit"] == "ns"
    pids = {e["pid"] for e in on_disk["traceEvents"]}
    assert pids == {1, 2}  # one process row per stack


def test_validate_catches_schema_violations():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing traceEvents array"]
    assert "traceEvents is empty" in validate_chrome_trace(
        {"traceEvents": []})[0]
    bad_phase = {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 1}]}
    assert any("unknown phase" in p for p in validate_chrome_trace(bad_phase))
    negative = {"traceEvents": [
        {"ph": "X", "name": "x", "cat": "c", "pid": 1, "tid": 1,
         "ts": -1.0, "dur": 2.0},
    ]}
    assert any("negative" in p for p in validate_chrome_trace(negative))
    missing_dur = {"traceEvents": [
        {"ph": "X", "name": "x", "cat": "c", "pid": 1, "tid": 1, "ts": 1.0},
    ]}
    assert any("dur" in p for p in validate_chrome_trace(missing_dur))


def test_stage_attribution_counts_and_means():
    attribution = stage_attribution(_sample_spans() + _sample_spans())
    count, mean = attribution["wire.req"]
    assert count == 2 and mean == 4000.0
    assert attribution["rpc"][1] == 12_000.0


def test_render_stage_summary_and_critical_path():
    spans = _sample_spans()
    summary = render_stage_summary(spans, title="linux")
    assert "linux" in summary and "wire.req" in summary and "%" in summary
    assert render_stage_summary([], title="x").endswith("no finished spans")
    path = render_critical_path(spans)
    assert "critical path" in path
    assert "wire.req" in path and "nic.rx" in path
