"""Metrics registry: instruments, live probes, testbed binding."""

from dataclasses import dataclass

from repro.experiments.four_stacks import _build_stack
from repro.obs.metrics import Counter, Gauge, MetricsRegistry


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    requests = registry.counter("rx.requests")
    requests.inc()
    requests.inc(4)
    depth = registry.gauge("rx.depth")
    depth.set(17)
    snapshot = registry.snapshot()
    assert snapshot["rx.requests"] == 5
    assert snapshot["rx.depth"] == 17


def test_instruments_are_memoised_by_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert isinstance(registry.counter("a"), Counter)
    assert isinstance(registry.gauge("g"), Gauge)


def test_callable_gauge_reads_live():
    registry = MetricsRegistry()
    box = {"value": 1}
    registry.gauge("live", fn=lambda: box["value"])
    assert registry.snapshot()["live"] == 1
    box["value"] = 9
    assert registry.snapshot()["live"] == 9


def test_histogram_summary_rows_appear_when_nonempty():
    registry = MetricsRegistry()
    histogram = registry.histogram("rtt")
    assert "rtt.count" not in registry.snapshot()  # empty: no rows
    histogram.extend([1.0, 2.0, 3.0])
    snapshot = registry.snapshot()
    assert snapshot["rtt.count"] == 3
    assert snapshot["rtt.mean"] == 2.0
    assert snapshot["rtt.min"] == 1.0 and snapshot["rtt.max"] == 3.0


def test_bind_exposes_numeric_fields_live():
    @dataclass
    class Stats:
        rx: int = 0
        dropped: int = 0
        label: str = "ignored"      # non-numeric: excluded
        _secret: int = 42           # underscore: excluded

    registry = MetricsRegistry()
    stats = Stats()
    registry.bind("nic", stats)
    assert registry.snapshot()["nic.rx"] == 0
    stats.rx = 7
    stats.dropped = 2
    snapshot = registry.snapshot()
    assert snapshot["nic.rx"] == 7 and snapshot["nic.dropped"] == 2
    assert "nic.label" not in snapshot and "nic._secret" not in snapshot


def test_probe_namespacing():
    registry = MetricsRegistry()
    registry.probe("a", lambda: {"x": 1})
    registry.probe("b", lambda: {"x": 2})
    snapshot = registry.snapshot()
    assert snapshot["a.x"] == 1 and snapshot["b.x"] == 2


def test_bind_testbed_metrics_covers_every_layer():
    from repro.obs.instrument import bind_testbed_metrics

    bed, service, method = _build_stack("linux")
    registry = bind_testbed_metrics(bed)
    snapshot = registry.snapshot()
    # One registry sees hardware, kernel, NIC, netstack, switch, client.
    assert "machine.busy_ns" in snapshot
    assert "machine.core0.instructions" in snapshot
    assert "kernel.syscalls" in snapshot
    assert "nic.rx_frames" in snapshot
    assert "netstack.rx_parse_errors" in snapshot
    assert f"netstack.udp{service.udp_port}.queue_depth" in snapshot
    assert "switch.unknown_dst_drops" in snapshot
    assert "client0.outstanding" in snapshot
    # Live: counters move when the system runs.
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[1], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=50_000_000)
    after = registry.snapshot()
    assert after["nic.rx_frames"] > 0
    assert after["kernel.syscalls"] > 0
    assert after["machine.busy_ns"] > 0


def test_bind_testbed_metrics_lauberhorn_exposes_telemetry():
    from repro.obs.instrument import bind_testbed_metrics

    bed, service, method = _build_stack("lauberhorn")
    registry = bind_testbed_metrics(bed, prefix="lb")
    snapshot = registry.snapshot()
    assert "lb.nic.telemetry.completed" in snapshot
    assert "lb.machine.busy_ns" in snapshot
    assert "lb.kernel.context_switches" in snapshot
