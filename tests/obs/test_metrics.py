"""Metrics registry: instruments, live probes, testbed binding."""

import gc
from dataclasses import dataclass

import pytest

from repro.experiments.four_stacks import _build_stack
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsCollision,
    MetricsRegistry,
)


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    requests = registry.counter("rx.requests")
    requests.inc()
    requests.inc(4)
    depth = registry.gauge("rx.depth")
    depth.set(17)
    snapshot = registry.snapshot()
    assert snapshot["rx.requests"] == 5
    assert snapshot["rx.depth"] == 17


def test_instruments_are_memoised_by_name():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")
    assert isinstance(registry.counter("a"), Counter)
    assert isinstance(registry.gauge("g"), Gauge)


def test_callable_gauge_reads_live():
    registry = MetricsRegistry()
    box = {"value": 1}
    registry.gauge("live", fn=lambda: box["value"])
    assert registry.snapshot()["live"] == 1
    box["value"] = 9
    assert registry.snapshot()["live"] == 9


def test_histogram_summary_rows_appear_when_nonempty():
    registry = MetricsRegistry()
    histogram = registry.histogram("rtt")
    assert "rtt.count" not in registry.snapshot()  # empty: no rows
    histogram.extend([1.0, 2.0, 3.0])
    snapshot = registry.snapshot()
    assert snapshot["rtt.count"] == 3
    assert snapshot["rtt.mean"] == 2.0
    assert snapshot["rtt.min"] == 1.0 and snapshot["rtt.max"] == 3.0


def test_bind_exposes_numeric_fields_live():
    @dataclass
    class Stats:
        rx: int = 0
        dropped: int = 0
        label: str = "ignored"      # non-numeric: excluded
        _secret: int = 42           # underscore: excluded

    registry = MetricsRegistry()
    stats = Stats()
    registry.bind("nic", stats)
    assert registry.snapshot()["nic.rx"] == 0
    stats.rx = 7
    stats.dropped = 2
    snapshot = registry.snapshot()
    assert snapshot["nic.rx"] == 7 and snapshot["nic.dropped"] == 2
    assert "nic.label" not in snapshot and "nic._secret" not in snapshot


def test_probe_namespacing():
    registry = MetricsRegistry()
    registry.probe("a", lambda: {"x": 1})
    registry.probe("b", lambda: {"x": 2})
    snapshot = registry.snapshot()
    assert snapshot["a.x"] == 1 and snapshot["b.x"] == 2


def test_bind_testbed_metrics_covers_every_layer():
    from repro.obs.instrument import bind_testbed_metrics

    bed, service, method = _build_stack("linux")
    registry = bind_testbed_metrics(bed)
    snapshot = registry.snapshot()
    # One registry sees hardware, kernel, NIC, netstack, switch, client.
    assert "machine.busy_ns" in snapshot
    assert "machine.core0.instructions" in snapshot
    assert "kernel.syscalls" in snapshot
    assert "nic.rx_frames" in snapshot
    assert "netstack.rx_parse_errors" in snapshot
    assert f"netstack.udp{service.udp_port}.queue_depth" in snapshot
    assert "switch.unknown_dst_drops" in snapshot
    assert "client0.outstanding" in snapshot
    # Live: counters move when the system runs.
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        yield from client.call(args=[1], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=50_000_000)
    after = registry.snapshot()
    assert after["nic.rx_frames"] > 0
    assert after["kernel.syscalls"] > 0
    assert after["machine.busy_ns"] > 0


def test_bind_testbed_metrics_lauberhorn_exposes_telemetry():
    from repro.obs.instrument import bind_testbed_metrics

    bed, service, method = _build_stack("lauberhorn")
    registry = bind_testbed_metrics(bed, prefix="lb")
    snapshot = registry.snapshot()
    assert "lb.nic.telemetry.completed" in snapshot
    assert "lb.machine.busy_ns" in snapshot
    assert "lb.kernel.context_switches" in snapshot


# -- namespace collisions (detected at snapshot time) ---------------------


def test_collisions_are_counted_and_last_writer_wins():
    registry = MetricsRegistry()
    registry.counter("nic.rx").inc(5)
    registry.probe("nic", lambda: {"rx": 99})
    snapshot = registry.snapshot()
    # Deterministic order: counters, gauges, histograms, then probes in
    # registration order — so the probe's value wins.
    assert snapshot["nic.rx"] == 99
    assert registry.collisions == 1
    assert snapshot["metrics.collisions"] == 1


def test_probe_vs_probe_collision_resolves_by_registration_order():
    registry = MetricsRegistry()
    registry.probe("a", lambda: {"x": 1})
    registry.probe("a", lambda: {"x": 2})
    assert registry.snapshot()["a.x"] == 2
    assert registry.collisions == 1


def test_strict_snapshot_raises_on_collision():
    # A probe prefix producing a key an owned gauge already claimed.
    registry = MetricsRegistry()
    registry.gauge("a.x").set(1)
    registry.probe("a", lambda: {"x": 2})
    with pytest.raises(MetricsCollision, match="a.x"):
        registry.snapshot(strict=True)


def test_clean_snapshot_has_no_collision_row():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(2)
    snapshot = registry.snapshot(strict=True)   # must not raise
    assert "metrics.collisions" not in snapshot
    assert registry.collisions == 0


def test_collision_count_resets_per_snapshot():
    registry = MetricsRegistry()
    registry.gauge("a.x").set(1)
    probes = registry._probes
    registry.probe("a", lambda: {"x": 2})
    assert registry.snapshot()["metrics.collisions"] == 1
    probes.clear()
    assert "metrics.collisions" not in registry.snapshot()
    assert registry.collisions == 0


# -- lifetime hygiene: weak binds and reset -------------------------------


class _PlainStats:
    def __init__(self):
        self.rx = 3


def test_bind_does_not_pin_the_stats_object():
    registry = MetricsRegistry()
    stats = _PlainStats()
    registry.bind("nic", stats)
    assert registry.snapshot()["nic.rx"] == 3
    del stats
    gc.collect()
    # The registry held only a weak reference: the probe now reads {}.
    assert "nic.rx" not in registry.snapshot()


def test_bind_falls_back_to_strong_ref_for_slotted_types():
    class Slotted:
        __slots__ = ("rx",)

        def __init__(self):
            self.rx = 7

    registry = MetricsRegistry()
    registry.bind("nic", Slotted())
    # Not weak-referenceable: the registry keeps it alive instead of
    # silently dropping the metrics.
    gc.collect()
    assert registry.snapshot()["nic.rx"] == 7


def test_reset_drops_every_instrument_and_probe():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.gauge("g").set(1)
    registry.histogram("h").record(1.0)
    registry.probe("p", lambda: {"x": 1})
    registry.bind("b", _PlainStats())
    assert registry.snapshot()
    registry.reset()
    assert registry.snapshot() == {}
    assert registry.collisions == 0
    # Fresh instruments after reset start from zero.
    assert registry.counter("c").value == 0
