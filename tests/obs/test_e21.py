"""E21: timelines, flight dumps, tail joins, and determinism."""

import json

import pytest

from repro.experiments.e21_timeline import (
    measure_timeline_stack,
    render_timeline,
    validate_timeline_payload,
    write_timeline_artifact,
)
from repro.experiments.four_stacks import STACKS, _build_stack
from repro.faults import FaultPlan, active
from repro.obs.flight import FlightRecorder
from repro.obs.instrument import arm_flight, arm_testbed, bind_testbed_metrics
from repro.obs.timeseries import TimeSeriesSampler
from repro.sim.clock import MS

HORIZON_NS = 20 * MS


@pytest.fixture(scope="module")
def results():
    return {stack: measure_timeline_stack(stack, n_requests=6)
            for stack in STACKS}


@pytest.mark.parametrize("stack", STACKS)
def test_arming_does_not_move_simulated_results(results, stack):
    # The tentpole guarantee, extended from E20's spans to the sampler
    # timer, the flight ring, and the armed invariant checks.
    assert results[stack].identical


@pytest.mark.parametrize("stack", STACKS)
def test_windowed_series_span_all_three_layers(results, stack):
    result = results[stack]
    ts = result.timeseries
    assert ts["windows"], "no windows sampled"
    assert ts["samples"] == len(ts["windows"]) + ts["dropped_windows"]
    layers = result.layers
    assert sum(layers.values()) >= 6
    for layer in ("hw", "os", "nic"):
        assert layers[layer] >= 1, (stack, layers)


@pytest.mark.parametrize("stack", STACKS)
def test_injected_violation_freezes_flight_dump(results, stack):
    result = results[stack]
    assert len(result.violations) == 1
    assert "e21-injected" in result.violations[0]
    dump = result.flight_dump
    assert dump is not None
    assert dump["reason"]["check"] == "e21-injected"
    assert dump["events"][-1]["kind"] == "invariant.violation"
    # The dump carries real pre-violation history, not just the trigger.
    assert len(dump["events"]) > 1


@pytest.mark.parametrize("stack", STACKS)
def test_tail_attributes_every_slow_request(results, stack):
    tail = results[stack].tail
    assert tail["requests"], "tail report has no subjects"
    for record in tail["requests"]:
        assert record["duration_ns"] >= tail["threshold_ns"]
        assert record["stages"], "no stage breakdown"
        assert not record["windows_missing"]
        assert record["state"], "no concurrent-state join"
        assert "flight" in record


def test_lauberhorn_flight_sees_nic_and_scheduler_feeds(results):
    dump = results["lauberhorn"].flight_dump
    kinds = set(dump["kinds"])
    assert "sched.dispatch" in kinds
    assert any(kind.startswith("span.") or kind == "span"
               for kind in kinds)


def test_render_and_artifact(results, tmp_path, capsys):
    ordered = [results[stack] for stack in STACKS]
    render_timeline(ordered)
    out = capsys.readouterr().out
    assert "determinism contract" in out
    assert "Tail forensics" in out
    for stack in STACKS:
        assert stack in out

    path = tmp_path / "artifacts" / "e21_timeline.json"
    payload = write_timeline_artifact(ordered, str(path))
    validate_timeline_payload(payload)
    on_disk = json.loads(path.read_text())
    assert set(on_disk["stacks"]) == set(STACKS)
    validate_timeline_payload(on_disk)


def test_validate_rejects_broken_payloads(results):
    payload = write_timeline_artifact(
        [results[stack] for stack in STACKS],
        path="/dev/null")
    with pytest.raises(ValueError, match="stacks"):
        validate_timeline_payload({})
    broken = json.loads(json.dumps(payload))
    broken["stacks"]["linux"]["identical"] = False
    with pytest.raises(ValueError, match="bit-identical"):
        validate_timeline_payload(broken)
    broken = json.loads(json.dumps(payload))
    broken["stacks"]["snap"]["flight_dump"] = None
    with pytest.raises(ValueError, match="flight dump"):
        validate_timeline_payload(broken)


def test_e21_registered_with_runner():
    from repro.exp.jobs import EXPERIMENT_SPECS

    spec = EXPERIMENT_SPECS["e21"]
    jobs = spec.build_jobs(0)
    assert [job.job_id for job in jobs] == [f"e21/{s}" for s in STACKS]
    assert spec.assemble is not None


# -- sampler determinism under explicit fault plans -----------------------

PLANS = {
    "calm": "default,seed=3,loss=0,stall=0",
    "lossy": "default,seed=3,loss=0.02,stall=0.02",
}


def _rtts(stack: str, spec: str, armed: bool) -> list[float]:
    plan = FaultPlan.from_spec(spec)
    with active(plan):
        bed, service, method = _build_stack(stack)
    if armed:
        recorder = arm_testbed(bed)
        registry = bind_testbed_metrics(bed)
        sampler = TimeSeriesSampler(bed.sim, registry,
                                    window_ns=250_000.0, max_windows=32)
        flight = FlightRecorder(bed.sim, capacity=64)
        arm_flight(bed, flight, recorder=recorder)
        sampler.start(HORIZON_NS)

    client = bed.clients[0]
    rtts: list[float] = []

    def driver():
        yield bed.sim.timeout(10_000)
        for index in range(6):
            event = client.send_request(
                bed.server_mac, bed.server_ip, service.udp_port,
                service.service_id, method.method_id, [index],
            )
            event.add_callback(lambda e: rtts.append(e._value.rtt_ns))
            yield bed.sim.timeout(150_000.0)

    bed.sim.process(driver())
    bed.machine.run(until=HORIZON_NS)
    if armed:
        sampler.finish()
        assert sampler.samples > 0
        assert flight.recorded > 0
    return rtts


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("label", sorted(PLANS))
def test_sampler_and_flight_are_invisible_under_faults(stack, label):
    spec = PLANS[label]
    base = _rtts(stack, spec, armed=False)
    armed = _rtts(stack, spec, armed=True)
    assert base, f"{stack}/{label}: no requests completed"
    assert armed == base
