"""Flame folding: exactness, grouping, exporters, host-CPU profiler."""

import pytest

from repro.obs.flame import (
    HostCpuProfiler,
    diff_stacks,
    fold_spans,
    render_collapsed,
    speedscope_json,
    validate_speedscope,
)
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Simulator


def _recorder():
    return SpanRecorder(Simulator())


def _trace(rec, trace_id, start, end, splits, **fields):
    """One root spanning [start, end] with child spans at ``splits``
    (list of (name, start, end) triples)."""
    root = rec.record("rpc", "client", (trace_id, None), start, end)
    if fields:
        root.fields.update(fields)
    for name, s, e in splits:
        rec.record(name, "nic", (trace_id, root.span_id), s, e)
    return root


# -- folding ------------------------------------------------------------------


def test_self_time_telescopes_to_root_duration_exactly():
    rec = _recorder()
    # awkward floats on purpose: exactness must not depend on niceness
    _trace(rec, 1, 0.1, 1000.3,
           [("nic.rx", 10.7, 300.9), ("handler", 300.9, 900.1)])
    profile = fold_spans(rec)
    (group,) = profile.groups()
    assert group == "-/-"           # untagged runs fold under the dash
    assert profile.self_sum_ns(group) == profile.root_sum_ns(group)
    assert profile.root_sum_ns(group) == 1000.3 - 0.1
    assert profile.check_exact() == []
    # three stacks: root self, root;nic.rx, root;handler
    stacks = profile.stacks(group)
    assert set(stacks) == {("rpc",), ("rpc", "nic.rx"), ("rpc", "handler")}
    assert stacks[("rpc", "nic.rx")] == 300.9 - 10.7


def test_nested_children_attribute_to_nested_stacks():
    rec = _recorder()
    root = rec.record("rpc", "client", (1, None), 0.0, 100.0)
    mid = rec.record("nic.rx", "nic", (1, root.span_id), 10.0, 60.0)
    rec.record("crypto", "nic", (1, mid.span_id), 20.0, 50.0)
    profile = fold_spans(rec)
    stacks = profile.stacks("-/-")
    assert stacks[("rpc", "nic.rx", "crypto")] == 30.0
    assert stacks[("rpc", "nic.rx")] == 20.0
    assert stacks[("rpc",)] == 50.0


def test_overrunning_children_yield_negative_self_not_clamped():
    rec = _recorder()
    # children sum to 120 ns inside a 100 ns parent
    _trace(rec, 1, 0.0, 100.0,
           [("a", 0.0, 60.0), ("b", 40.0, 100.0)])
    profile = fold_spans(rec)
    assert profile.negative_self == 1
    stacks = profile.stacks("-/-")
    assert stacks[("rpc",)] == -20.0
    # the identity still holds *because* nothing was clamped
    assert profile.self_sum_ns("-/-") == profile.root_sum_ns("-/-")


def test_grouping_by_host_and_tenant_fields():
    rec = _recorder()
    _trace(rec, 1, 0.0, 100.0, [], host="host0", tenant="victim")
    _trace(rec, 2, 0.0, 200.0, [], host="host0", tenant="aggressor")
    _trace(rec, 3, 0.0, 300.0, [], host="host1", tenant="victim")
    _trace(rec, 4, 0.0, 400.0, [])          # untagged
    profile = fold_spans(rec)
    assert profile.groups() == ["-/-", "host0/aggressor",
                                "host0/victim", "host1/victim"]
    assert profile.n_traces("host0/victim") == 1
    for group in profile.groups():
        assert profile.self_sum_ns(group) == profile.root_sum_ns(group)


def test_unfinished_root_skipped_unfinished_child_stays_in_parent():
    rec = _recorder()
    rec.start_trace("rpc", "client")         # never finished: no root sum
    root = rec.record("rpc", "client", (99, None), 0.0, 100.0)
    rec.start("nic.rx", "nic", (99, root.span_id))  # open child
    profile = fold_spans(rec)
    (group,) = profile.groups()
    assert profile.n_traces(group) == 1
    # the open child's time stays in the root's self bucket
    assert profile.stacks(group)[("rpc",)] == 100.0


def test_diff_stacks_signs_and_keys():
    rec = _recorder()
    _trace(rec, 1, 0.0, 100.0, [("nic.rx", 0.0, 80.0)],
           host="h", tenant="victim")
    _trace(rec, 2, 0.0, 50.0, [("nic.rx", 0.0, 10.0)],
           host="h", tenant="aggressor")
    profile = fold_spans(rec)
    diff = diff_stacks(profile, "h/victim", "h/aggressor")
    assert diff["rpc;nic.rx"] == 70.0       # victim spent more in rx
    assert diff["rpc"] == (100.0 - 80.0) - (50.0 - 10.0)


# -- exporters ----------------------------------------------------------------


def _profile():
    rec = _recorder()
    _trace(rec, 1, 0.0, 100.0, [("nic.rx", 10.0, 40.0)],
           host="host0", tenant="victim")
    _trace(rec, 2, 0.0, 900.0, [("handler", 100.0, 800.0)],
           host="host0", tenant="aggressor")
    return fold_spans(rec)


def test_render_collapsed_folds_group_into_frames():
    text = render_collapsed(_profile())
    lines = text.splitlines()
    assert "host0;victim;rpc;nic.rx 30.000" in lines
    assert "host0;aggressor;rpc;handler 700.000" in lines
    # every line is "frames weight"
    for line in lines:
        frames, weight = line.rsplit(" ", 1)
        assert frames and float(weight) is not None


def test_speedscope_export_validates_and_is_exact():
    profile = _profile()
    payload = speedscope_json(profile)
    validate_speedscope(payload)            # must not raise
    by_name = {p["name"]: p for p in payload["profiles"]}
    assert set(by_name) == {"host0/victim", "host0/aggressor"}
    victim = by_name["host0/victim"]
    assert victim["endValue"] == sum(victim["weights"])
    assert victim["endValue"] == profile.root_sum_ns("host0/victim")


def test_validate_speedscope_rejects_corruption():
    payload = speedscope_json(_profile())
    bad = dict(payload, **{"$schema": "nope"})
    with pytest.raises(ValueError, match="schema"):
        validate_speedscope(bad)
    bad = dict(payload)
    bad["profiles"] = [dict(payload["profiles"][0], unit="seconds")]
    with pytest.raises(ValueError, match="unit"):
        validate_speedscope(bad)
    bad = dict(payload)
    bad["profiles"] = [dict(payload["profiles"][0],
                            samples=[[999999]])]
    with pytest.raises(ValueError):
        validate_speedscope(bad)


# -- host-CPU profiler --------------------------------------------------------


def test_host_cpu_profiler_slices_and_exports():
    sim = Simulator()

    def ticker():
        while True:
            yield sim.timeout(10.0)

    sim.process(ticker())
    profiler = HostCpuProfiler(sim, n_slices=8)
    profiler.run(until_ns=1000.0)
    assert len(profiler.slices) == 8
    assert sim.now == 1000.0
    assert profiler.events_per_sec() >= 0.0
    validate_speedscope(profiler.to_speedscope())
    with pytest.raises(ValueError, match="ahead"):
        profiler.run(until_ns=500.0)
    with pytest.raises(ValueError, match="slice"):
        HostCpuProfiler(sim, n_slices=0)
