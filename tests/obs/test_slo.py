"""SLO engine: ledgers, burn windows, alert latching, exhaustion."""

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOSpec, SLOTracker
from repro.obs.spans import SpanRecorder
from repro.obs.timeseries import TimeSeriesSampler
from repro.sim.engine import Simulator


def _spec(**over):
    base = dict(name="svc", latency_threshold_ns=100.0,
                latency_target=0.9, fast_window_ns=100.0,
                slow_window_ns=1000.0, burn_threshold=2.0, min_requests=4)
    base.update(over)
    return SLOSpec(**base)


def _tracker(spec=None, flight=None):
    sim = Simulator()
    tracker = SLOTracker(sim, [spec or _spec()], flight=flight)
    recorder = SpanRecorder(sim)
    tracker.arm(recorder=recorder)
    return sim, tracker, recorder


def _request(sim, recorder, duration_ns, **fields):
    root = recorder.start_trace("rpc", "client")
    if fields:
        recorder.annotate(root.ctx, **fields)
    sim.now += duration_ns
    recorder.finish(root)
    return root


def _burst(sim, recorder, n, duration_ns):
    """``n`` overlapping requests finishing together — the only way a
    burst lands inside one fast window."""
    roots = [recorder.start_trace("rpc", "client") for _ in range(n)]
    sim.now += duration_ns
    for root in roots:
        recorder.finish(root)


# -- spec ---------------------------------------------------------------------


def test_spec_validation():
    with pytest.raises(ValueError, match="latency_target"):
        _spec(latency_target=1.0)
    with pytest.raises(ValueError, match="positive"):
        _spec(latency_threshold_ns=0.0)
    with pytest.raises(ValueError, match="fast window"):
        _spec(fast_window_ns=2000.0)
    with pytest.raises(ValueError, match="burn_threshold"):
        _spec(burn_threshold=0.0)


def test_spec_budget_and_matching():
    spec = _spec(tenant="victim")
    assert spec.budget_fraction == pytest.approx(0.1)
    assert spec.matches({"tenant": "victim", "service": "x"})
    assert not spec.matches({"tenant": "aggressor"})
    assert not spec.matches({})
    wildcard = _spec()
    assert wildcard.matches({}) and wildcard.matches({"tenant": "anyone"})


def test_tracker_rejects_empty_and_duplicate_specs():
    sim = Simulator()
    with pytest.raises(ValueError, match="at least one"):
        SLOTracker(sim, [])
    with pytest.raises(ValueError, match="duplicate"):
        SLOTracker(sim, [_spec(), _spec()])


# -- classification -----------------------------------------------------------


def test_roots_classified_against_threshold():
    sim, tracker, recorder = _tracker()
    _request(sim, recorder, 50.0)
    _request(sim, recorder, 150.0)
    tracker.evaluate(sim.now)
    report = tracker.report()["specs"]["svc"]
    assert report["total"] == 2
    assert report["bad"] == 1
    assert tracker.budget_consumed("svc") == pytest.approx(5.0)


def test_tenant_scoped_spec_ignores_other_tenants():
    sim, tracker, recorder = _tracker(_spec(tenant="victim"))
    _request(sim, recorder, 150.0, tenant="victim")
    _request(sim, recorder, 150.0, tenant="aggressor")
    _request(sim, recorder, 150.0)  # untagged
    assert tracker.report()["specs"]["svc"]["total"] == 1


def test_timeout_charged_once_even_if_root_later_finishes():
    sim, tracker, recorder = _tracker(_spec(timeout_ns=500.0))
    root = recorder.start_trace("rpc", "client")
    sim.now = 600.0
    tracker.evaluate(sim.now)       # past timeout: charged as bad
    ledger = tracker.report()["specs"]["svc"]
    assert (ledger["total"], ledger["bad"], ledger["timeouts"]) == (1, 1, 1)
    recorder.finish(root)           # late completion must not double-count
    ledger = tracker.report()["specs"]["svc"]
    assert (ledger["total"], ledger["bad"]) == (1, 1)
    assert tracker.availability("svc") == pytest.approx(0.0)


# -- burn windows and alerting ------------------------------------------------


def test_alert_needs_both_windows_and_min_requests():
    sim, tracker, recorder = _tracker()
    # three bads: hot burn but under min_requests=4 -> no alert
    _burst(sim, recorder, 3, 150.0)
    tracker.evaluate(sim.now)
    assert not tracker.alerts
    sim.now += 2000.0               # old events age out of both windows
    _burst(sim, recorder, 4, 150.0)
    tracker.evaluate(sim.now)
    assert len(tracker.alerts) == 1
    alert = tracker.alerts[0]
    assert alert.spec == "svc"
    assert alert.fast_total == 4
    assert alert.burn_fast >= 2.0 and alert.burn_slow >= 2.0


def test_alert_latches_and_rearms_after_recovery():
    sim, tracker, recorder = _tracker()
    _burst(sim, recorder, 4, 150.0)
    tracker.evaluate(sim.now)
    tracker.evaluate(sim.now)       # still breaching: no second page
    assert len(tracker.alerts) == 1
    # fast window (100 ns) empties: the latch re-arms
    tracker.evaluate(sim.now + 200.0)
    # a fresh storm after recovery pages again
    sim.now += 2000.0
    _burst(sim, recorder, 4, 150.0)
    tracker.evaluate(sim.now)
    assert len(tracker.alerts) == 2
    assert tracker.report()["specs"]["svc"]["alerts"] == 2


def test_good_traffic_never_alerts_or_exhausts():
    sim, tracker, recorder = _tracker()
    for _ in range(50):
        _request(sim, recorder, 50.0)
        sim.now += 10.0
    tracker.evaluate(sim.now)
    report = tracker.report()["specs"]["svc"]
    assert not tracker.alerts
    assert report["exhausted_ns"] is None
    assert not report["violated"]
    assert report["burn_fast"] == 0.0


def test_exhaustion_fires_once_and_alert_lead_is_reported():
    sim, tracker, recorder = _tracker()
    for _ in range(20):             # calm history
        _request(sim, recorder, 50.0)
        sim.now += 100.0
    tracker.evaluate(sim.now)
    assert not tracker.alerts
    _burst(sim, recorder, 4, 150.0)
    tracker.evaluate(sim.now)       # alert: fast window is pure bad
    assert len(tracker.alerts) == 1
    report = tracker.report()["specs"]["svc"]
    assert report["exhausted_ns"] is not None   # 4 bad > 10% of 24
    assert report["violated"]
    assert report["alert_lead_ns"] == (report["exhausted_ns"]
                                       - report["first_alert_ns"])
    exhausted_at = report["exhausted_ns"]
    _request(sim, recorder, 150.0)
    tracker.evaluate(sim.now + 500.0)
    assert tracker.report()["specs"]["svc"]["exhausted_ns"] == exhausted_at


# -- integration seams --------------------------------------------------------


def test_sampler_windows_drive_evaluation():
    sim = Simulator()
    registry = MetricsRegistry()
    sampler = TimeSeriesSampler(sim, registry, window_ns=100.0,
                                max_windows=64)
    recorder = SpanRecorder(sim)
    tracker = SLOTracker(sim, [_spec(min_requests=1)])
    tracker.arm(recorder=recorder, sampler=sampler, registry=registry)

    def workload():
        for _ in range(6):
            root = recorder.start_trace("rpc", "client")
            yield sim.timeout(150.0)      # all bad
            recorder.finish(root)

    sim.process(workload())
    sampler.start(1000.0)
    sim.run(until=1000.0)
    sampler.finish()
    assert tracker.alerts                 # fired at a window close
    assert tracker.alerts[0].t_ns % 100.0 == 0.0
    # the probe mirrors the ledger into sampler windows
    last = sampler.windows[-1].values
    assert last["slo.svc.total"] == 6.0
    assert last["slo.svc.bad"] == 6.0
    assert last["slo.svc.alerts"] >= 1.0
    assert "slo.svc.burn_fast" in last


def test_alerts_and_exhaustion_land_in_flight_recorder():
    sim = Simulator()
    flight = FlightRecorder(sim)
    tracker = SLOTracker(sim, [_spec()], flight=flight)
    recorder = SpanRecorder(sim)
    tracker.arm(recorder=recorder)
    _burst(sim, recorder, 4, 150.0)
    tracker.evaluate(sim.now)
    kinds = [event["kind"] for event in flight.snapshot()]
    assert "slo.alert" in kinds
    assert "slo.exhausted" in kinds


def test_unarmed_recorder_never_touches_tracker():
    sim = Simulator()
    recorder = SpanRecorder(sim)
    assert recorder.slo is None
    root = recorder.start_trace("rpc", "client")
    sim.now = 500.0
    recorder.finish(root)           # no tracker anywhere: no crash
