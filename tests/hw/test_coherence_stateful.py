"""Property-based stateful testing of the coherence fabric.

Hypothesis drives random interleavings of loads, stores, evictions,
recalls, posted writes, and device writes from four cores against one
device-homed line, checking the MESI invariants and data coherence
against a reference model after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.hw import ECI, CoherenceFabric, FillResponse, HomeDevice, LineState, Region
from repro.sim import Event, Simulator

LINE_ADDR = 0x10000
N_CORES = 4


class _Home(HomeDevice):
    def __init__(self, sim):
        self.sim = sim
        self.writebacks = []

    def service_fill(self, core_id, addr, for_write):
        event = Event(self.sim)
        event.succeed(FillResponse(data=b""))
        return event

    def on_writeback(self, addr, data):
        self.writebacks.append((addr, bytes(data)))


class CoherenceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fabric = CoherenceFabric(self.sim, ECI)
        self.home = _Home(self.sim)
        self.fabric.register_home(Region(LINE_ADDR, 128), self.home)
        #: reference: the byte the most recent writer stored at offset 0
        self.expected_first_byte = 0

    def _run(self, generator):
        done = {}

        def wrapper():
            result = yield from generator
            done["value"] = result

        self.sim.process(wrapper())
        self.sim.run()
        return done.get("value")

    # -- rules ---------------------------------------------------------------

    @rule(core=st.integers(0, N_CORES - 1))
    def load(self, core):
        data = self._run(self.fabric.load(core, LINE_ADDR))
        # A reader must observe the most recent write.
        assert data[0] == self.expected_first_byte

    @rule(core=st.integers(0, N_CORES - 1), value=st.integers(1, 255))
    def store(self, core, value):
        self._run(self.fabric.store(core, LINE_ADDR, bytes([value])))
        self.expected_first_byte = value
        assert self.fabric.holder_state(core, LINE_ADDR) is LineState.MODIFIED

    @rule(core=st.integers(0, N_CORES - 1))
    def evict(self, core):
        self._run(self.fabric.evict(core, LINE_ADDR))
        assert self.fabric.holder_state(core, LINE_ADDR) is LineState.INVALID

    @rule()
    def device_recall(self):
        data = self._run(self.fabric.device_recall(LINE_ADDR))
        assert data[0] == self.expected_first_byte
        for core in range(N_CORES):
            assert self.fabric.holder_state(core, LINE_ADDR) is LineState.INVALID

    @rule(value=st.integers(1, 255))
    def device_write_when_unheld(self, value):
        if any(
            self.fabric.holder_state(core, LINE_ADDR) is not LineState.INVALID
            for core in range(N_CORES)
        ):
            return  # device_write requires no holders; skip
        self.fabric.device_write(LINE_ADDR, bytes([value]))
        self.expected_first_byte = value

    @rule(core=st.integers(0, N_CORES - 1), value=st.integers(1, 255))
    def posted_write(self, core, value):
        self._run(self.fabric.posted_write(core, LINE_ADDR, bytes([value])))
        self.sim.run()  # let the async delivery land
        self.expected_first_byte = value

    # -- invariants --------------------------------------------------------------

    @invariant()
    def single_writer(self):
        """At most one core holds the line exclusively/modified, and
        then nobody else holds it at all."""
        states = {
            core: self.fabric.holder_state(core, LINE_ADDR)
            for core in range(N_CORES)
        }
        owners = [c for c, s in states.items()
                  if s in (LineState.EXCLUSIVE, LineState.MODIFIED)]
        assert len(owners) <= 1
        if owners:
            others = [s for c, s in states.items() if c != owners[0]]
            assert all(s is LineState.INVALID for s in others)

    @invariant()
    def home_copy_current_when_unheld(self):
        """With no holders, the home copy is the latest data."""
        if all(
            self.fabric.holder_state(core, LINE_ADDR) is LineState.INVALID
            for core in range(N_CORES)
        ):
            assert self.fabric.device_peek(LINE_ADDR)[0] == self.expected_first_byte


CoherenceMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
TestCoherence = CoherenceMachine.TestCase
