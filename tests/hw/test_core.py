"""Unit tests for the CPU core model's cost accounting."""

import pytest

from repro.hw import (
    ECI,
    CacheParams,
    CoherenceFabric,
    CoreParams,
    FillResponse,
    HomeDevice,
    Region,
)
from repro.hw.core import Core, CoreCounters
from repro.sim import GHZ, Event, Simulator


def make_core(sim, fabric=None, ghz=2.0, cpi=1.0):
    return Core(
        sim,
        core_id=0,
        core_params=CoreParams(frequency=GHZ(ghz), cpi=cpi),
        cache_params=CacheParams(),
        fabric=fabric,
    )


def test_execute_charges_busy_time():
    sim = Simulator()
    core = make_core(sim, ghz=2.0, cpi=1.0)

    def proc():
        yield from core.execute(2000)

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(1000)  # 2000 cycles @ 2GHz
    assert core.counters.busy_ns == pytest.approx(1000)
    assert core.counters.instructions == 2000
    assert core.counters.stall_ns == 0


def test_cpi_scales_execution():
    sim = Simulator()
    core = make_core(sim, ghz=2.0, cpi=2.0)

    def proc():
        yield from core.execute(1000)

    sim.process(proc())
    sim.run()
    assert sim.now == pytest.approx(1000)  # 1000 instr * 2 cpi @ 2GHz


def test_cache_hit_levels_ordered():
    sim = Simulator()
    core = make_core(sim)
    durations = {}

    def proc():
        for level in ("l1", "l2", "llc"):
            t0 = sim.now
            yield from core.cache_hit(level)
            durations[level] = sim.now - t0

    sim.process(proc())
    sim.run()
    assert durations["l1"] < durations["l2"] < durations["llc"]


def test_dram_access_is_stall_time():
    sim = Simulator()
    core = make_core(sim)

    def proc():
        yield from core.dram_access()

    sim.process(proc())
    sim.run()
    assert core.counters.stall_ns == pytest.approx(CacheParams().dram_ns)
    assert core.counters.busy_ns == 0


def test_counters_snapshot_delta():
    c = CoreCounters(busy_ns=100, stall_ns=50, instructions=10)
    snap = c.snapshot()
    c.busy_ns += 25
    c.instructions += 5
    d = c.delta(snap)
    assert d.busy_ns == 25
    assert d.instructions == 5
    assert d.stall_ns == 0


def test_counters_idle():
    c = CoreCounters(busy_ns=100, stall_ns=50)
    assert c.active_ns() == 150
    assert c.idle_ns(1000) == 850
    assert c.idle_ns(100) == 0  # clamped


class _BlockedHome(HomeDevice):
    def __init__(self, sim, delay_ns):
        self.sim = sim
        self.delay_ns = delay_ns

    def service_fill(self, core_id, addr, for_write):
        ev = Event(self.sim)

        def answer():
            yield self.sim.timeout(self.delay_ns)
            ev.succeed(FillResponse(data=b"req!"))

        self.sim.process(answer())
        return ev


def test_blocked_load_accrues_stall_not_busy():
    sim = Simulator()
    fabric = CoherenceFabric(sim, ECI)
    core = make_core(sim, fabric=fabric)
    fabric.register_home(Region(0x4000, 128), _BlockedHome(sim, 40_000))
    got = []

    def proc():
        data = yield from core.load_line(0x4000)
        got.append(data[:4])

    sim.process(proc())
    sim.run()
    assert got == [b"req!"]
    assert core.counters.stall_ns > 40_000
    assert core.counters.busy_ns == 0


def test_hit_load_charges_l1_busy():
    sim = Simulator()
    fabric = CoherenceFabric(sim, ECI)
    core = make_core(sim, fabric=fabric)
    fabric.register_home(Region(0x4000, 128), _BlockedHome(sim, 0))

    def proc():
        yield from core.load_line(0x4000)
        before = core.counters.busy_ns
        yield from core.load_line(0x4000)
        assert core.counters.busy_ns > before

    sim.process(proc())
    sim.run()


def test_store_line_via_fabric():
    sim = Simulator()
    fabric = CoherenceFabric(sim, ECI)
    core = make_core(sim, fabric=fabric)
    fabric.register_home(Region(0x4000, 128), _BlockedHome(sim, 0))

    def proc():
        yield from core.store_line(0x4000, b"RSP")

    sim.process(proc())
    sim.run()
    assert fabric.device_peek(0x4000)[:3] == b"RSP"
    assert core.counters.stores == 1


def test_load_without_fabric_raises():
    sim = Simulator()
    core = make_core(sim, fabric=None)

    def proc():
        yield from core.load_line(0x1000)

    sim.process(proc())
    with pytest.raises(RuntimeError):
        sim.run()
