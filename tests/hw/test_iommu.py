"""Unit tests for the IOMMU/IOTLB model."""

import pytest

from repro.hw.iommu import PAGE_BYTES, Iommu, IommuParams
from repro.sim import Simulator


def run(sim, generator):
    sim.process(generator)
    sim.run()


def test_pages_of_spans():
    iommu = Iommu(Simulator())
    assert list(iommu.pages_of(0, 1)) == [0]
    assert list(iommu.pages_of(0, PAGE_BYTES)) == [0]
    assert list(iommu.pages_of(0, PAGE_BYTES + 1)) == [0, 1]
    assert list(iommu.pages_of(PAGE_BYTES - 1, 2)) == [0, 1]
    with pytest.raises(ValueError):
        list(iommu.pages_of(0, 0))


def test_miss_then_hit_costs():
    sim = Simulator()
    iommu = Iommu(sim, IommuParams(lookup_ns=25, walk_ns=600))
    run(sim, iommu.translate(0x1000, 64))
    first = sim.now
    run(sim, iommu.translate(0x1000, 64))
    second = sim.now - first
    assert first == pytest.approx(625)  # lookup + walk
    assert second == pytest.approx(25)  # hit
    assert iommu.stats.lookups == 2
    assert iommu.stats.misses == 1


def test_lru_eviction():
    sim = Simulator()
    iommu = Iommu(sim, IommuParams(iotlb_entries=2))
    for page in (0, 1, 2):  # page 0 evicted by 2
        run(sim, iommu.translate(page * PAGE_BYTES, 1))
    run(sim, iommu.translate(0, 1))  # page 0: miss again
    assert iommu.stats.misses == 4


def test_lru_touch_refreshes():
    sim = Simulator()
    iommu = Iommu(sim, IommuParams(iotlb_entries=2))
    run(sim, iommu.translate(0 * PAGE_BYTES, 1))
    run(sim, iommu.translate(1 * PAGE_BYTES, 1))
    run(sim, iommu.translate(0 * PAGE_BYTES, 1))  # refresh page 0
    run(sim, iommu.translate(2 * PAGE_BYTES, 1))  # evicts page 1
    run(sim, iommu.translate(0 * PAGE_BYTES, 1))  # still resident
    assert iommu.stats.misses == 3


def test_invalidate_forces_rewalk():
    sim = Simulator()
    iommu = Iommu(sim)
    run(sim, iommu.translate(0x5000, 64))
    iommu.invalidate(0x5000, 64)
    assert iommu.stats.invalidations == 1
    run(sim, iommu.translate(0x5000, 64))
    assert iommu.stats.misses == 2


def test_hit_rate_and_validation():
    sim = Simulator()
    iommu = Iommu(sim)
    assert iommu.stats.hit_rate == 0.0
    run(sim, iommu.translate(0, 1))
    run(sim, iommu.translate(0, 1))
    assert iommu.stats.hit_rate == pytest.approx(0.5)
    with pytest.raises(ValueError):
        Iommu(sim, IommuParams(iotlb_entries=0))


def test_link_integration_trusted_vs_untrusted():
    from repro.hw import ENZIAN_PCIE, Machine

    machine = Machine(ENZIAN_PCIE)
    times = []

    def dma(addr):
        t0 = machine.sim.now
        yield from machine.link.dma_read(64, addr=addr)
        times.append(machine.sim.now - t0)

    # Trusted: no IOMMU installed -> address ignored.
    machine.sim.process(dma(0x9000))
    machine.run()
    machine.link.iommu = Iommu(machine.sim)
    machine.sim.process(dma(0xA000))
    machine.run()
    assert times[1] > times[0]  # translation cost appeared
