"""Sanity tests over the calibration presets: the relationships the
experiments rely on must hold in the constants themselves."""

import dataclasses

from repro.hw.params import (
    CXL3,
    ECI,
    ENZIAN,
    ENZIAN_PCIE,
    MODERN_SERVER,
    MODERN_SERVER_CXL,
    PCIE_GEN3,
    PCIE_GEN5,
)


def test_coherence_flags():
    assert ECI.coherent and CXL3.coherent
    assert not PCIE_GEN3.coherent and not PCIE_GEN5.coherent


def test_line_sizes_match_platforms():
    assert ECI.line_bytes == 128       # Enzian
    assert CXL3.line_bytes == 64
    assert ENZIAN.cache.line_bytes == 128
    assert MODERN_SERVER_CXL.cache.line_bytes == 64


def test_latency_orderings():
    # Newer interconnects are faster, one way and MMIO both.
    assert CXL3.one_way_ns < ECI.one_way_ns
    assert PCIE_GEN5.one_way_ns < PCIE_GEN3.one_way_ns
    assert PCIE_GEN5.mmio_read_ns < PCIE_GEN3.mmio_read_ns
    # MMIO reads are round trips: at least 2x one-way everywhere.
    for link in (ECI, CXL3, PCIE_GEN3, PCIE_GEN5):
        assert link.mmio_read_ns >= 2 * link.one_way_ns
        assert link.mmio_write_ns >= link.one_way_ns


def test_enzian_shape():
    assert ENZIAN.n_cores == 48        # the paper: "48 on Enzian"
    assert ENZIAN.core.frequency.ghz == 2.0
    assert ENZIAN.interconnect is ECI
    assert ENZIAN_PCIE.interconnect is PCIE_GEN3
    # Same CPU socket in both Enzian presets.
    assert ENZIAN.core == ENZIAN_PCIE.core


def test_paper_constants():
    assert ENZIAN.nic.tryagain_timeout_ns == 15e6   # 15 ms, §5.1
    assert ENZIAN.link_bps == 100e9 / 8             # 100 Gb/s links


def test_presets_are_frozen():
    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        ENZIAN.n_cores = 1  # type: ignore[misc]


def test_modern_server_faster_cpu():
    assert MODERN_SERVER.core.frequency.hz > ENZIAN.core.frequency.hz
    assert MODERN_SERVER.core.cpi < ENZIAN.core.cpi


def test_sw_unmarshal_slower_than_nic():
    """The offload must actually be an offload: NIC deserialisation is
    orders of magnitude below the software path for a small message."""
    from repro.rpc.marshal import software_unmarshal_instructions

    sw_ns = ENZIAN.core.frequency.cycles_to_ns(
        software_unmarshal_instructions(3, 64) * ENZIAN.core.cpi
    )
    nic_ns = ENZIAN.nic.deserialize_ns_per_64b
    assert sw_ns > 20 * nic_ns
