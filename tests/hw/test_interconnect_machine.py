"""Unit tests for the device link and machine assembly."""

import pytest

from repro.hw import (
    ENZIAN,
    ENZIAN_PCIE,
    MODERN_SERVER,
    MODERN_SERVER_CXL,
    PCIE_GEN3,
    DeviceLink,
    Machine,
)
from repro.sim import Simulator


def test_mmio_read_stalls_core_full_roundtrip():
    machine = Machine(ENZIAN_PCIE)
    link, core = machine.link, machine.cores[0]

    def proc():
        yield from link.mmio_read(core)

    machine.sim.process(proc())
    machine.run()
    assert machine.sim.now == pytest.approx(PCIE_GEN3.mmio_read_ns)
    assert core.counters.stall_ns == pytest.approx(PCIE_GEN3.mmio_read_ns)


def test_mmio_write_is_posted_and_cheap():
    machine = Machine(ENZIAN_PCIE)
    link, core = machine.link, machine.cores[0]

    def proc():
        yield from link.mmio_write(core)

    machine.sim.process(proc())
    machine.run()
    # A posted write must cost the core far less than a read round trip.
    assert machine.sim.now < PCIE_GEN3.mmio_read_ns / 5
    assert link.stats.mmio_writes == 1


def test_dma_scales_with_size():
    machine = Machine(ENZIAN_PCIE)
    link = machine.link
    times = []

    def proc(nbytes):
        t0 = machine.sim.now
        yield from link.dma_read(nbytes)
        times.append(machine.sim.now - t0)

    machine.sim.process(proc(64))
    machine.run()
    machine.sim.process(proc(65536))
    machine.run()
    assert times[1] > times[0]
    assert link.stats.dma_bytes == 64 + 65536


def test_interrupt_delivery_counts():
    machine = Machine(ENZIAN_PCIE)

    def proc():
        yield from machine.link.raise_interrupt(100.0)

    machine.sim.process(proc())
    machine.run()
    assert machine.link.stats.interrupts == 1
    assert machine.sim.now == pytest.approx(100.0 + PCIE_GEN3.one_way_ns)


def test_enzian_machine_is_coherent_with_48_cores():
    machine = Machine(ENZIAN)
    assert machine.coherent
    assert machine.n_cores == 48
    assert machine.fabric.line_bytes == 128


def test_pcie_machine_not_coherent():
    machine = Machine(ENZIAN_PCIE)
    assert not machine.coherent
    assert machine.fabric is None


def test_modern_presets():
    assert not Machine(MODERN_SERVER).coherent
    cxl = Machine(MODERN_SERVER_CXL)
    assert cxl.coherent
    assert cxl.fabric.line_bytes == 64


def test_machine_aggregate_counters():
    machine = Machine(ENZIAN)

    def proc(core):
        yield from core.execute(1000)

    machine.sim.process(proc(machine.cores[0]))
    machine.sim.process(proc(machine.cores[1]))
    machine.run()
    assert machine.total_instructions() == 2000
    assert machine.total_busy_ns() > 0
    assert machine.total_stall_ns() == 0


def test_machine_seeded_rng_reproducible():
    a = Machine(ENZIAN, seed=5).rng.stream("w").random()
    b = Machine(ENZIAN, seed=5).rng.stream("w").random()
    assert a == b
