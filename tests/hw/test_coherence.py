"""Unit tests for the MESI coherence fabric and device-homed lines."""

import pytest

from repro.hw import (
    ECI,
    CoherenceError,
    CoherenceFabric,
    FillResponse,
    HomeDevice,
    LineState,
    Region,
)
from repro.sim import Event, Simulator


class ImmediateHome(HomeDevice):
    """A home that answers every fill instantly with fixed data."""

    def __init__(self, sim, data=b"", service_ns=0.0):
        self.sim = sim
        self.data = data
        self.service_ns = service_ns
        self.fills = []
        self.writebacks = []

    def service_fill(self, core_id, addr, for_write):
        self.fills.append((core_id, addr))
        ev = Event(self.sim)
        ev.succeed(FillResponse(data=self.data))
        return ev

    def on_writeback(self, addr, data):
        self.writebacks.append((addr, data))

    def service_time_ns(self):
        return self.service_ns


class DeferredHome(HomeDevice):
    """A home that parks fills until told to answer (blocked load)."""

    def __init__(self, sim):
        self.sim = sim
        self.pending = []

    def service_fill(self, core_id, addr, for_write):
        ev = Event(self.sim)
        self.pending.append((core_id, addr, ev))
        return ev

    def answer_all(self, data):
        pending, self.pending = self.pending, []
        for _core, _addr, ev in pending:
            ev.succeed(FillResponse(data=data))


@pytest.fixture()
def fabric():
    sim = Simulator()
    fab = CoherenceFabric(sim, ECI)
    return sim, fab


def test_fabric_requires_coherent_interconnect():
    from repro.hw import PCIE_GEN3

    with pytest.raises(CoherenceError):
        CoherenceFabric(Simulator(), PCIE_GEN3)


def test_register_home_rejects_overlap(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 256), home)
    with pytest.raises(CoherenceError):
        fab.register_home(Region(0x1080, 256), home)


def test_load_miss_takes_round_trip_and_grants_exclusive(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim, data=b"\xAB" * 16, service_ns=10.0)
    fab.register_home(Region(0x1000, 128), home)

    results = []

    def proc():
        data = yield from fab.load(0, 0x1000)
        results.append((sim.now, data[:16]))

    sim.process(proc())
    sim.run()
    time, data = results[0]
    # request one-way + 10ns service + line transfer back
    assert time > 2 * ECI.one_way_ns
    assert data == b"\xAB" * 16
    assert fab.holder_state(0, 0x1000) is LineState.EXCLUSIVE
    assert fab.stats.fills == 1


def test_load_hit_is_free_at_fabric_level(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    times = []

    def proc():
        yield from fab.load(0, 0x1000)
        t0 = sim.now
        yield from fab.load(0, 0x1000)
        times.append(sim.now - t0)

    sim.process(proc())
    sim.run()
    assert times == [0.0]
    assert fab.stats.fills == 1


def test_second_sharer_demotes_exclusive(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    def core0():
        yield from fab.load(0, 0x1000)

    def core1():
        yield sim.timeout(5000)
        yield from fab.load(1, 0x1000)

    sim.process(core0())
    sim.process(core1())
    sim.run()
    assert fab.holder_state(0, 0x1000) is LineState.SHARED
    assert fab.holder_state(1, 0x1000) is LineState.SHARED


def test_store_upgrades_and_invalidates_sharers(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    def core0():
        yield from fab.load(0, 0x1000)
        yield sim.timeout(10_000)
        yield from fab.store(0, 0x1000, b"hello")

    def core1():
        yield sim.timeout(5000)
        yield from fab.load(1, 0x1000)

    sim.process(core0())
    sim.process(core1())
    sim.run()
    assert fab.holder_state(0, 0x1000) is LineState.MODIFIED
    assert fab.holder_state(1, 0x1000) is LineState.INVALID
    assert fab.stats.invalidations >= 1
    assert fab.device_peek(0x1000)[:5] == b"hello"


def test_store_to_owned_line_is_local(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    elapsed = []

    def proc():
        yield from fab.load(0, 0x1000)
        t0 = sim.now
        yield from fab.store(0, 0x1000, b"x")
        elapsed.append(sim.now - t0)

    sim.process(proc())
    sim.run()
    assert elapsed == [0.0]
    assert fab.stats.upgrades == 0


def test_store_offset_merge(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    def proc():
        yield from fab.store(0, 0x1000 + 8, b"ZZ")

    sim.process(proc())
    sim.run()
    line = fab.device_peek(0x1000)
    assert line[8:10] == b"ZZ"
    assert line[0] == 0


def test_store_crossing_line_rejected(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    def proc():
        yield from fab.store(0, 0x1000 + 120, b"123456789")

    sim.process(proc())
    with pytest.raises(CoherenceError):
        sim.run()


def test_blocked_load_defers_until_home_answers(fabric):
    sim, fab = fabric
    home = DeferredHome(sim)
    fab.register_home(Region(0x2000, 128), home)

    done = []

    def loader():
        data = yield from fab.load(3, 0x2000)
        done.append((sim.now, data[:2]))

    def responder():
        yield sim.timeout(50_000)  # NIC waits for a packet
        home.answer_all(b"OK")

    sim.process(loader())
    sim.process(responder())
    sim.run()
    time, data = done[0]
    assert time > 50_000
    assert data == b"OK"


def test_pending_loaders_visible_to_device(fabric):
    sim, fab = fabric
    home = DeferredHome(sim)
    fab.register_home(Region(0x2000, 128), home)
    seen = []

    def loader():
        yield from fab.load(7, 0x2000)

    def checker():
        yield sim.timeout(1000)
        seen.append(fab.pending_loaders(0x2000))
        home.answer_all(b"")
        yield sim.timeout(10_000)
        seen.append(fab.pending_loaders(0x2000))

    sim.process(loader())
    sim.process(checker())
    sim.run()
    assert seen[0] == frozenset({7})
    assert seen[1] == frozenset()


def test_device_recall_pulls_dirty_data(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)
    got = []

    def cpu():
        yield from fab.load(0, 0x1000)
        yield from fab.store(0, 0x1000, b"RESPONSE")

    def device():
        yield sim.timeout(10_000)
        data = yield from fab.device_recall(0x1000)
        got.append(data[:8])

    sim.process(cpu())
    sim.process(device())
    sim.run()
    assert got == [b"RESPONSE"]
    assert fab.holder_state(0, 0x1000) is LineState.INVALID
    assert fab.stats.recalls == 1


def test_device_recall_clean_line_no_data_transfer(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)
    durations = []

    def cpu():
        yield from fab.load(0, 0x1000)

    def device():
        yield sim.timeout(10_000)
        t0 = sim.now
        yield from fab.device_recall(0x1000)
        durations.append(sim.now - t0)

    sim.process(cpu())
    sim.process(device())
    sim.run()
    # Clean recall: only the request flit, no line transfer.
    assert durations[0] == pytest.approx(ECI.one_way_ns)


def test_device_write_requires_no_holders(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)
    fab.device_write(0x1000, b"STAGED")
    assert fab.device_peek(0x1000)[:6] == b"STAGED"

    def cpu():
        yield from fab.load(0, 0x1000)

    sim.process(cpu())
    sim.run()
    with pytest.raises(CoherenceError):
        fab.device_write(0x1000, b"X")


def test_evict_modified_writes_back(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)

    def cpu():
        yield from fab.load(0, 0x1000)
        yield from fab.store(0, 0x1000, b"dirty")
        yield from fab.evict(0, 0x1000)

    sim.process(cpu())
    sim.run()
    assert fab.holder_state(0, 0x1000) is LineState.INVALID
    assert home.writebacks and home.writebacks[0][1][:5] == b"dirty"
    assert fab.stats.writebacks == 1


def test_unregistered_address_rejected(fabric):
    sim, fab = fabric

    def cpu():
        yield from fab.load(0, 0xDEAD_0000)

    sim.process(cpu())
    with pytest.raises(CoherenceError):
        sim.run()


def test_is_homed(fabric):
    sim, fab = fabric
    home = ImmediateHome(sim)
    fab.register_home(Region(0x1000, 128), home)
    assert fab.is_homed(0x1000)
    assert fab.is_homed(0x107F)
    assert not fab.is_homed(0x1080)
