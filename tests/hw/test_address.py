"""Unit tests for address regions and the allocator."""

import pytest

from repro.hw import AddressAllocator, Region, align_down, align_up


def test_alignment_helpers():
    assert align_down(130, 128) == 128
    assert align_down(128, 128) == 128
    assert align_up(129, 128) == 256
    assert align_up(128, 128) == 128


def test_region_contains():
    r = Region(0x1000, 0x100)
    assert 0x1000 in r
    assert 0x10FF in r
    assert 0x1100 not in r
    assert 0xFFF not in r


def test_region_end():
    assert Region(10, 5).end == 15


def test_region_rejects_bad_sizes():
    with pytest.raises(ValueError):
        Region(0, 0)
    with pytest.raises(ValueError):
        Region(-1, 10)


def test_region_overlap():
    a = Region(0, 100)
    assert a.overlaps(Region(50, 100))
    assert a.overlaps(Region(0, 1))
    assert not a.overlaps(Region(100, 10))


def test_region_lines_iteration():
    r = Region(256, 300)
    lines = list(r.lines(128))
    assert lines == [256, 384, 512]


def test_region_lines_unaligned_base():
    r = Region(130, 10)
    assert list(r.lines(128)) == [128]


def test_allocator_non_overlapping():
    alloc = AddressAllocator()
    a = alloc.allocate(100, "a")
    b = alloc.allocate(5000, "b")
    c = alloc.allocate(1, "c")
    assert not a.overlaps(b)
    assert not b.overlaps(c)
    assert a.base % 4096 == 0
    assert b.base % 4096 == 0


def test_allocator_find():
    alloc = AddressAllocator()
    a = alloc.allocate(128, "x")
    assert alloc.find(a.base) is a
    assert alloc.find(a.base + 127) is a
    assert alloc.find(a.base - 1) is None
