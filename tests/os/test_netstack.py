"""Unit tests for the kernel UDP stack."""

import pytest

from repro.experiments import build_linux_testbed
from repro.net.packet import Frame, build_udp_frame
from repro.os import ops
from repro.os.kernel import KernelError
from repro.sim import MS


def test_bind_rejects_duplicate_port():
    bed = build_linux_testbed()
    bed.netstack.bind(9000)
    with pytest.raises(ValueError):
        bed.netstack.bind(9000)


def test_send_without_neighbor_entry_raises():
    bed = build_linux_testbed()
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("app")

    def body():
        yield ops.SendDatagram(socket, dst_ip=0xDEAD, dst_port=1, payload=b"x")

    bed.kernel.spawn_thread(process, body())
    with pytest.raises(KernelError):
        bed.machine.run(until=10 * MS)


def test_socket_queue_capacity_drops():
    bed = build_linux_testbed()
    socket = bed.netstack.bind(9000, capacity=3)
    client = bed.clients[0]
    for i in range(8):
        client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [i])
    bed.machine.run(until=10 * MS)
    assert len(socket.rx_queue) == 3
    assert socket.stats.dropped == 5


def test_recv_returns_queued_before_blocking():
    bed = build_linux_testbed()
    socket = bed.netstack.bind(9000)
    client = bed.clients[0]
    client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [1])
    bed.machine.run(until=5 * MS)
    assert len(socket.rx_queue) == 1
    got = []
    process = bed.kernel.spawn_process("app")

    def body():
        datagram = yield ops.RecvFromSocket(socket)
        got.append(datagram)

    bed.kernel.spawn_thread(process, body())
    bed.machine.run(until=10 * MS)
    assert len(got) == 1
    assert got[0].src_ip == client.ip
    assert socket.stats.delivered == 1


def test_multiple_waiters_fifo():
    bed = build_linux_testbed()
    socket = bed.netstack.bind(9000)
    order = []
    process = bed.kernel.spawn_process("app")

    def body(tag):
        datagram = yield ops.RecvFromSocket(socket)
        order.append(tag)

    bed.kernel.spawn_thread(process, body("first"))
    bed.machine.run(until=1 * MS)
    bed.kernel.spawn_thread(process, body("second"))
    bed.machine.run(until=2 * MS)
    client = bed.clients[0]
    client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [1])
    client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [2])
    bed.machine.run(until=10 * MS)
    assert order == ["first", "second"]


def test_parse_error_counted():
    bed = build_linux_testbed()
    bed.netstack.bind(9000)
    client = bed.clients[0]
    good = build_udp_frame(
        client.mac, bed.server_mac, client.ip, bed.server_ip, 1, 9000, b"x"
    )
    corrupted = bytearray(good.data)
    corrupted[20] ^= 0xFF  # break the IP header checksum
    bed.sim.process(client.port.send(Frame(bytes(corrupted))))
    bed.machine.run(until=10 * MS)
    assert bed.netstack.rx_parse_errors == 1


def test_wakeup_charges_pending_instructions():
    """A thread woken from recvmsg pays the copy-out on its next slice."""
    bed = build_linux_testbed()
    socket = bed.netstack.bind(9000)
    process = bed.kernel.spawn_process("app")
    state = {}

    def body():
        datagram = yield ops.RecvFromSocket(socket)
        state["datagram"] = datagram

    thread = bed.kernel.spawn_thread(process, body())
    bed.machine.run(until=1 * MS)
    assert thread.pending_charge_instructions > 0  # armed while blocked
    client = bed.clients[0]
    client.send_request(bed.server_mac, bed.server_ip, 9000, 1, 1, [1])
    bed.machine.run(until=10 * MS)
    assert "datagram" in state
    assert thread.pending_charge_instructions == 0  # charged on resume
