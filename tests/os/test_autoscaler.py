"""Tests for NIC-load-driven dispatcher autoscaling (Section 5.2)."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import NicScheduler
from repro.sim import MS
from repro.workloads.generator import OpenLoopGenerator, ServiceMix, Target


def make_scheduler(bed, n_dispatchers=1):
    service = bed.registry.create_service("svc", udp_port=9000)
    method = bed.registry.add_method(
        service, "m", lambda args: [1], cost_instructions=20_000  # slow
    )
    process = bed.kernel.spawn_process("svc")
    bed.nic.register_service(service, process.pid)
    scheduler = NicScheduler(
        bed.kernel, bed.nic, bed.registry, n_dispatchers=n_dispatchers,
        promote=False,
    )
    return scheduler, service, method


def test_autoscaler_grows_under_load():
    bed = build_lauberhorn_testbed()
    scheduler, service, method = make_scheduler(bed, n_dispatchers=1)
    scheduler.start_autoscaler(interval_ns=200_000, max_dispatchers=4)
    generator = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(service, method)]),
        bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("load"),
    )
    # Offered load ~80k/s of 12us handlers ≈ 1 core's capacity; one
    # dispatcher queues, so the autoscaler must add more.
    done = bed.sim.process(generator.run(rate_per_sec=80_000, n_requests=150))
    bed.machine.run(until=done)
    assert len(scheduler.dispatchers) > 1
    assert generator.completed == 150


def test_autoscaler_shrinks_when_idle():
    bed = build_lauberhorn_testbed()
    scheduler, service, method = make_scheduler(bed, n_dispatchers=3)
    scheduler.start_autoscaler(
        interval_ns=200_000, min_dispatchers=1, max_dispatchers=4
    )
    bed.machine.run(until=5 * MS)  # no traffic at all
    assert len(scheduler.dispatchers) == 1
    assert bed.nic.lstats.retires == 2


def test_autoscaler_respects_max():
    bed = build_lauberhorn_testbed()
    scheduler, service, method = make_scheduler(bed, n_dispatchers=1)
    scheduler.start_autoscaler(interval_ns=100_000, max_dispatchers=2)
    generator = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(service, method)]),
        bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("load"),
    )
    done = bed.sim.process(generator.run(rate_per_sec=200_000, n_requests=200))
    bed.machine.run(until=done)
    assert len(scheduler.dispatchers) <= 2


def test_autoscaler_bounds_validation():
    bed = build_lauberhorn_testbed()
    scheduler, *_ = make_scheduler(bed)
    with pytest.raises(ValueError):
        scheduler.start_autoscaler(min_dispatchers=3, max_dispatchers=2)


def test_scale_up_then_down_cycle():
    bed = build_lauberhorn_testbed()
    scheduler, service, method = make_scheduler(bed, n_dispatchers=1)
    scheduler.start_autoscaler(
        interval_ns=200_000, min_dispatchers=1, max_dispatchers=4
    )
    generator = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(service, method)]),
        bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("load"),
    )
    done = bed.sim.process(generator.run(rate_per_sec=100_000, n_requests=120))
    bed.machine.run(until=done)
    grown = len(scheduler.dispatchers)
    assert grown > 1
    # Load stops; the scheduler hands cores back.
    bed.machine.run(until=bed.sim.now + 10 * MS)
    assert len(scheduler.dispatchers) == 1
