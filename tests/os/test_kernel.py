"""Integration tests for the kernel: dispatch, blocking, preemption, IRQs."""

import pytest

from repro.hw import ENZIAN, Machine
from repro.os import Kernel, ops
from repro.os.kernel import Irq
from repro.sim import MS, US


def make_kernel(n_cores=None, **kw):
    machine = Machine(ENZIAN)
    kernel = Kernel(machine, **kw)
    kernel.start()
    return machine, kernel


def test_thread_runs_and_exits_with_value():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")

    def body():
        yield ops.Exec(1000)
        return "done"

    thread = kernel.spawn_thread(proc, body())
    machine.run(until=thread.exit_event)
    assert thread.exit_value == "done"
    assert machine.sim.now > 0


def test_exec_charges_expected_time():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")

    def body():
        yield ops.Exec(2000)

    thread = kernel.spawn_thread(proc, body())
    machine.run(until=thread.exit_event)
    core0 = machine.cores[0]
    # 2000 instructions plus context-switch cost, all busy time.
    expected_min = core0.instructions_ns(2000)
    assert core0.counters.busy_ns >= expected_min


def test_context_switch_charged_between_processes():
    machine, kernel = make_kernel()
    a = kernel.spawn_process("a")
    b = kernel.spawn_process("b")

    def body():
        yield ops.Exec(100)

    # Pin both to core 0 so they serialize.
    t1 = kernel.spawn_thread(a, body(), pinned_core=0)
    t2 = kernel.spawn_thread(b, body(), pinned_core=0)
    machine.run()
    assert kernel.stats.context_switches >= 2


def test_same_process_switch_is_cheap():
    machine, kernel = make_kernel()
    a = kernel.spawn_process("a")

    def body():
        yield ops.Exec(100)

    kernel.spawn_thread(a, body(), pinned_core=0)
    kernel.spawn_thread(a, body(), pinned_core=0)
    machine.run()
    # Only the first dispatch crosses an address space.
    assert kernel.stats.context_switches == 1
    assert kernel.stats.thread_switches == 2


def test_threads_spread_across_cores():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    used = set()

    def body(tag):
        yield ops.Exec(10_000)
        used.add(tag)

    threads = [kernel.spawn_thread(proc, body(i)) for i in range(4)]
    machine.run()
    assert len(used) == 4
    # Parallel execution: total time ~ one thread's time, not 4x.
    single = machine.cores[0].instructions_ns(10_000)
    assert machine.sim.now < single * 3


def test_block_and_wake():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    ev = machine.sim.event()
    got = []

    def body():
        value = yield ops.Block(ev)
        got.append((machine.sim.now, value))

    def firer():
        yield machine.sim.timeout(500_000)
        ev.succeed("payload")

    kernel.spawn_thread(proc, body())
    machine.sim.process(firer())
    machine.run()
    assert got[0][0] >= 500_000
    assert got[0][1] == "payload"


def test_sleep_op_blocks_thread():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    woke = []

    def body():
        yield ops.Sleep(2 * MS)
        woke.append(machine.sim.now)

    kernel.spawn_thread(proc, body())
    machine.run()
    assert woke[0] >= 2 * MS


def test_blocked_thread_releases_core():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    ev = machine.sim.event()
    order = []

    def blocker():
        yield ops.Block(ev)
        order.append("blocker")

    def runner():
        yield ops.Exec(100)
        order.append("runner")
        ev.succeed()

    kernel.spawn_thread(proc, blocker(), pinned_core=0)
    kernel.spawn_thread(proc, runner(), pinned_core=0)
    machine.run()
    assert order == ["runner", "blocker"]


def test_yield_cpu_round_robins():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    order = []

    def body(tag):
        for _ in range(2):
            order.append(tag)
            yield ops.YieldCpu()

    kernel.spawn_thread(proc, body("a"), pinned_core=0)
    kernel.spawn_thread(proc, body("b"), pinned_core=0)
    machine.run()
    assert order == ["a", "b", "a", "b"]


def test_timeslice_preemption():
    machine, kernel = make_kernel(timeslice_ns=1 * MS)
    proc = kernel.spawn_process("app")
    finished = []

    def long_body(tag):
        for _ in range(10):
            yield ops.Exec(500_000)  # ~0.3ms per chunk at 2GHz/1.2cpi
        finished.append(tag)

    t1 = kernel.spawn_thread(proc, long_body("a"), pinned_core=0)
    t2 = kernel.spawn_thread(proc, long_body("b"), pinned_core=0)
    machine.run()
    assert kernel.stats.preemptions > 0
    assert t1.stats.preempted_count + t2.stats.preempted_count > 0
    assert set(finished) == {"a", "b"}


def test_no_preemption_when_alone():
    machine, kernel = make_kernel(timeslice_ns=1 * MS)
    proc = kernel.spawn_process("app")

    def body():
        for _ in range(10):
            yield ops.Exec(500_000)

    kernel.spawn_thread(proc, body(), pinned_core=0)
    machine.run()
    assert kernel.stats.preemptions == 0


def test_irq_interrupts_running_thread():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    log = []

    def handler(k, core):
        log.append(("irq", machine.sim.now))
        return
        yield

    def body():
        for _ in range(100):
            yield ops.Exec(1000)

    kernel.spawn_thread(proc, body(), pinned_core=0)

    def inject():
        yield machine.sim.timeout(100_000)
        kernel.deliver_irq(0, Irq(name="test", handler=handler))

    machine.sim.process(inject())
    machine.run()
    assert log and log[0][1] >= 100_000
    assert kernel.stats.irqs == 1


def test_irq_wakes_idle_core():
    machine, kernel = make_kernel()
    log = []

    def handler(k, core):
        log.append(machine.sim.now)
        return
        yield

    def inject():
        yield machine.sim.timeout(50_000)
        kernel.deliver_irq(5, Irq(name="test", handler=handler))

    machine.sim.process(inject())
    machine.run(until=1 * MS)
    assert log and log[0] >= 50_000


def test_ipi_sets_need_resched_and_preempts():
    machine, kernel = make_kernel(timeslice_ns=100 * MS)  # no tick preemption
    proc = kernel.spawn_process("app")
    progress = []

    def hog():
        for i in range(1000):
            progress.append(i)
            yield ops.Exec(10_000)

    def waiter():
        yield ops.Exec(100)
        progress.append("waiter-ran")

    kernel.spawn_thread(proc, hog(), pinned_core=0)

    def later():
        yield machine.sim.timeout(200_000)
        kernel.spawn_thread(proc, waiter(), pinned_core=0)
        kernel.preempt_core(0)

    machine.sim.process(later())
    machine.run(until=50 * MS)
    index = progress.index("waiter-ran")
    assert 0 < index < 1000  # preempted the hog mid-way
    assert kernel.stats.ipis == 1


def test_exception_in_thread_body_propagates():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")

    def body():
        yield ops.Exec(10)
        raise ValueError("app bug")

    kernel.spawn_thread(proc, body())
    with pytest.raises(ValueError):
        machine.run()


def test_call_op_runs_inline_generator():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    got = []

    def library(core, thread):
        yield from core.execute(500)
        return "lib-result"

    def body():
        result = yield ops.Call(library)
        got.append(result)

    kernel.spawn_thread(proc, body())
    machine.run()
    assert got == ["lib-result"]


def test_mmio_ops_charge_core():
    machine, kernel = make_kernel()
    proc = kernel.spawn_process("app")
    landed = []

    def body():
        yield ops.MmioRead()
        yield ops.MmioWrite(on_device=lambda: landed.append(machine.sim.now))

    kernel.spawn_thread(proc, body())
    machine.run()
    assert machine.link.stats.mmio_reads == 1
    assert machine.link.stats.mmio_writes == 1
    assert landed  # the posted write eventually became device-visible
