"""Unit/integration tests for NIC-driven scheduling helpers."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import (
    NicScheduler,
    lauberhorn_nested_call,
    lauberhorn_user_loop,
)
from repro.sim import MS


def make_service(bed, name="svc", port=9000, cost=500, handler=None):
    service = bed.registry.create_service(name, udp_port=port)
    method = bed.registry.add_method(
        service, "m", handler or (lambda args: list(args)),
        cost_instructions=cost,
    )
    process = bed.kernel.spawn_process(name)
    bed.nic.register_service(service, process.pid)
    return service, method, process


def test_user_loop_exits_on_retire():
    bed = build_lauberhorn_testbed()
    service, method, process = make_service(bed)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    thread = bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    bed.machine.run(until=1 * MS)
    assert ep.armed
    bed.nic.retire(ep)
    bed.machine.run(until=2 * MS)
    assert thread.exit_event.triggered
    assert thread.exit_value == 0  # served nothing


def test_user_loop_serves_then_exits_after_max():
    bed = build_lauberhorn_testbed(tryagain_timeout_ns=1 * MS)
    service, method, process = make_service(bed)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    thread = bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, ep, bed.registry, max_requests=3),
        pinned_core=0,
    )
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(3):
            yield from client.call(args=[i], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=20 * MS)
    assert thread.exit_event.triggered
    assert thread.exit_value == 3


def test_user_loop_yield_on_tryagain_mode():
    bed = build_lauberhorn_testbed(tryagain_timeout_ns=1 * MS)
    service, method, process = make_service(bed)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    thread = bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, ep, bed.registry,
                             yield_on_tryagain=True),
        pinned_core=0,
    )
    bed.machine.run(until=5 * MS)
    assert thread.stats.voluntary_yields >= 2


def test_nic_scheduler_spawns_armed_dispatchers():
    bed = build_lauberhorn_testbed()
    sched = NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=3)
    bed.machine.run(until=1 * MS)
    assert len(sched.dispatchers) == 3
    assert all(h.endpoint.armed for h in sched.dispatchers)
    assert bed.nic.preempt_on_backlog  # enabled by the scheduler


def test_nic_scheduler_add_and_retire():
    bed = build_lauberhorn_testbed()
    sched = NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1)
    bed.machine.run(until=1 * MS)
    sched.add_dispatcher(pinned_core=5)
    bed.machine.run(until=2 * MS)
    assert len(sched.dispatchers) == 2
    assert sched.retire_dispatcher()
    bed.machine.run(until=3 * MS)
    assert len(sched.dispatchers) == 1


def test_service_report_reflects_traffic():
    bed = build_lauberhorn_testbed()
    service, method, process = make_service(bed)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    sched = NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=1)
    client = bed.clients[0]

    def driver():
        yield bed.sim.timeout(10_000)
        for i in range(4):
            yield from client.call(args=[i], **bed.call_args(service, method))

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    report = {load.service_id: load for load in sched.service_report()}
    svc = report[service.service_id]
    assert svc.arrivals == 4
    assert svc.completed == 4
    assert svc.delivered_fast == 4


def test_nested_call_roundtrip():
    bed = build_lauberhorn_testbed()
    svc_b, m_b, proc_b = make_service(bed, name="b", port=9001)
    ep_b = bed.nic.create_endpoint(EndpointKind.USER, service=svc_b)
    bed.kernel.spawn_thread(
        proc_b, lauberhorn_user_loop(bed.nic, ep_b, bed.registry),
        pinned_core=1,
    )
    bed.nic.create_continuation_pool(2)
    results = []

    def caller_body():
        out = yield from lauberhorn_nested_call(
            bed.nic, 9001, svc_b.service_id, m_b.method_id, ["ping"]
        )
        results.append(out)

    proc_a = bed.kernel.spawn_process("caller")
    bed.kernel.spawn_thread(proc_a, caller_body(), pinned_core=0)
    bed.machine.run(until=50 * MS)
    assert results == [["ping"]]
    # The continuation endpoint went back to the pool.
    assert len(bed.nic._continuation_pool) == 2
    assert not bed.nic._continuations


def test_continuation_pool_exhaustion():
    bed = build_lauberhorn_testbed()
    bed.nic.create_continuation_pool(1)
    bed.nic.acquire_continuation()
    with pytest.raises(RuntimeError):
        bed.nic.acquire_continuation()


def test_continuation_reply_queued_if_not_armed():
    """A reply arriving before the caller's load parks is backlogged on
    the continuation endpoint and delivered by the eventual load."""
    bed = build_lauberhorn_testbed()
    svc_b, m_b, proc_b = make_service(bed, name="b", port=9001, cost=100)
    ep_b = bed.nic.create_endpoint(EndpointKind.USER, service=svc_b)
    bed.kernel.spawn_thread(
        proc_b, lauberhorn_user_loop(bed.nic, ep_b, bed.registry),
        pinned_core=1,
    )
    bed.nic.create_continuation_pool(1)
    results = []

    def caller_body():
        from repro.os import ops

        out = yield from lauberhorn_nested_call(
            bed.nic, 9001, svc_b.service_id, m_b.method_id, ["x"]
        )
        results.append(out)

    proc_a = bed.kernel.spawn_process("caller")
    bed.kernel.spawn_thread(proc_a, caller_body(), pinned_core=0)
    bed.machine.run(until=50 * MS)
    assert results == [["x"]]
