"""Kernel edge cases: IRQs vs blocked loads, determinism, CXL machines."""

import pytest

from repro.experiments import build_lauberhorn_testbed
from repro.hw import MODERN_SERVER_CXL
from repro.nic.lauberhorn import EndpointKind
from repro.os import ops
from repro.os.kernel import Irq
from repro.os.nicsched import lauberhorn_user_loop
from repro.sim import MS


def test_irq_deferred_while_core_stalled_in_blocked_load():
    """A core stalled in a Lauberhorn blocked load cannot take an IRQ
    until the load completes (hardware semantics) — exactly why the
    paper needs Tryagain for clean descheduling."""
    bed = build_lauberhorn_testbed(tryagain_timeout_ns=3 * MS)
    service = bed.registry.create_service("s", udp_port=9000)
    bed.registry.add_method(service, "m", lambda a: list(a))
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    handled = []

    def handler(kernel, core):
        handled.append(bed.sim.now)
        return
        yield

    def inject():
        yield bed.sim.timeout(1 * MS)  # the loop is now parked
        bed.kernel.deliver_irq(0, Irq(name="late", handler=handler))

    bed.sim.process(inject())
    bed.machine.run(until=10 * MS)
    # The IRQ was only handled after the 3ms Tryagain released the core.
    assert handled
    assert handled[0] >= 3 * MS


def test_irq_plus_send_tryagain_releases_core_quickly():
    """The paper's descheduling recipe: IPI the core, then have the NIC
    answer the blocked load with Tryagain — the core enters the kernel
    promptly, long before the 15ms timeout."""
    bed = build_lauberhorn_testbed()  # 15ms timeout
    service = bed.registry.create_service("s", udp_port=9000)
    bed.registry.add_method(service, "m", lambda a: list(a))
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, ep, bed.registry, yield_on_tryagain=True),
        pinned_core=0,
    )
    handled = []

    def handler(kernel, core):
        handled.append(bed.sim.now)
        return
        yield

    def deschedule():
        yield bed.sim.timeout(1 * MS)
        bed.kernel.deliver_irq(0, Irq(name="resched", handler=handler))
        bed.nic.send_tryagain(ep)

    bed.sim.process(deschedule())
    bed.machine.run(until=5 * MS)
    assert handled
    assert handled[0] < 1.1 * MS  # released by Tryagain, not the timeout


def test_lauberhorn_on_cxl_machine_end_to_end():
    """The whole stack also runs with 64 B CXL 3.0 lines."""
    bed = build_lauberhorn_testbed(params=MODERN_SERVER_CXL)
    assert bed.machine.fabric.line_bytes == 64
    service = bed.registry.create_service("s", udp_port=9000)
    method = bed.registry.add_method(service, "m", lambda a: list(a),
                                     cost_instructions=300)
    process = bed.kernel.spawn_process("s")
    bed.nic.register_service(service, process.pid)
    ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
        pinned_core=0,
    )
    client = bed.clients[0]
    results = []

    def driver():
        yield bed.sim.timeout(10_000)
        # A payload that needs AUX lines on 64 B lines.
        result = yield from client.call(
            args=[b"z" * 300], **bed.call_args(service, method)
        )
        results.append(result)

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)
    assert results and results[0].results == [b"z" * 300]


def test_simulation_is_deterministic():
    """Same seed, same program -> bit-identical outcomes."""

    def run_once():
        bed = build_lauberhorn_testbed(seed=42)
        service = bed.registry.create_service("s", udp_port=9000)
        method = bed.registry.add_method(service, "m", lambda a: list(a),
                                         cost_instructions=400)
        process = bed.kernel.spawn_process("s")
        bed.nic.register_service(service, process.pid)
        ep = bed.nic.create_endpoint(EndpointKind.USER, service=service)
        bed.kernel.spawn_thread(
            process, lauberhorn_user_loop(bed.nic, ep, bed.registry),
            pinned_core=0,
        )
        client = bed.clients[0]
        rtts = []

        def driver():
            yield bed.sim.timeout(10_000)
            for i in range(5):
                result = yield from client.call(
                    args=[i], **bed.call_args(service, method)
                )
                rtts.append(result.rtt_ns)

        bed.sim.process(driver())
        bed.machine.run(until=50 * MS)
        return rtts, bed.machine.total_busy_ns(), bed.sim.now

    assert run_once() == run_once()


def test_thread_priority_respected_on_shared_core():
    bed = build_lauberhorn_testbed()
    order = []
    process = bed.kernel.spawn_process("app")

    def body(tag):
        yield ops.Exec(100)
        order.append(tag)

    # Spawned while core 0 is busy with the first: priorities order the
    # queue behind it.
    def blocker():
        yield ops.ExecNs(100_000)

    bed.kernel.spawn_thread(process, blocker(), pinned_core=0)
    bed.kernel.spawn_thread(process, body("normal"), pinned_core=0, priority=0)
    bed.kernel.spawn_thread(process, body("urgent"), pinned_core=0, priority=-1)
    bed.machine.run(until=5 * MS)
    assert order == ["urgent", "normal"]
