"""Remaining kernel/client coverage: unknown ops, introspection,
cross-core stealing, and client-side bookkeeping."""

import pytest

from repro.experiments import build_linux_testbed
from repro.hw import ENZIAN, Machine
from repro.net.packet import Frame, build_udp_frame
from repro.os import Kernel, KernelError, ops
from repro.rpc.message import RpcMessage
from repro.sim import MS


def test_unknown_thread_op_rejected():
    machine = Machine(ENZIAN)
    kernel = Kernel(machine)
    kernel.start()
    process = kernel.spawn_process("app")

    class Bogus(ops.ThreadOp):
        pass

    def body():
        yield Bogus()

    kernel.spawn_thread(process, body())
    with pytest.raises(KernelError):
        machine.run()


def test_current_thread_introspection():
    machine = Machine(ENZIAN)
    kernel = Kernel(machine)
    kernel.start()
    process = kernel.spawn_process("app")
    observed = []

    def body():
        yield ops.Exec(10)
        observed.append(kernel.current_thread(0))
        yield ops.Exec(10)

    thread = kernel.spawn_thread(process, body(), pinned_core=0)
    machine.run()
    assert observed == [thread]
    assert kernel.current_thread(0) is None  # parked after exit


def test_work_stealing_spreads_unpinned_backlog():
    machine = Machine(ENZIAN)
    kernel = Kernel(machine, steal=True)
    kernel.start()
    process = kernel.spawn_process("app")
    cores_used = set()

    def body(tag):
        yield ops.ExecNs(200_000)
        cores_used.add(tag)

    # Pile several unpinned threads up; idle cores should steal them.
    for index in range(6):
        kernel.spawn_thread(process, body(index))
    machine.run()
    assert len(cores_used) == 6
    # Parallel execution: far faster than serial on one core.
    assert machine.sim.now < 6 * 200_000


def test_client_counts_unmatched_and_garbage():
    bed = build_linux_testbed()
    client = bed.clients[0]
    # Deliver a response nobody asked for, straight to the client port.
    bogus = RpcMessage.response(1, 1, request_id=999, payload=b"")
    frame = build_udp_frame(
        bed.server_mac, client.mac, bed.server_ip, client.ip,
        9000, 40_000, bogus.pack(),
    )
    switch_port = bed.switch.ports[bed.server_mac.value]

    def send():
        yield from switch_port.send(frame)

    bed.sim.process(send())
    bed.machine.run(until=5 * MS)
    assert client.unmatched_responses == 1

    # And complete garbage increments parse_errors.
    garbage = Frame(b"\x00" * 40)

    def send_garbage():
        yield from switch_port.send(
            build_udp_frame(bed.server_mac, client.mac, bed.server_ip,
                            client.ip, 1, 2, b"not-an-rpc")
        )

    bed.sim.process(send_garbage())
    bed.machine.run(until=10 * MS)
    assert client.parse_errors == 1


def test_client_outstanding_tracks_pending():
    bed = build_linux_testbed()
    client = bed.clients[0]
    client.send_request(bed.server_mac, bed.server_ip, 9999, 1, 1, [1])
    assert client.outstanding == 1  # nobody will ever answer port 9999
    bed.machine.run(until=5 * MS)
    assert client.outstanding == 1
