"""Unit tests for run-queue placement and stealing."""

import pytest

from repro.os.process import OsProcess, OsThread, ThreadState
from repro.os.scheduler import Scheduler


def make_thread(tid, pinned=None, priority=0):
    proc = OsProcess(pid=tid, name=f"p{tid}")

    def body():
        yield None

    return OsThread(tid=tid, process=proc, body=body(), pinned_core=pinned,
                    priority=priority)


def test_enqueue_prefers_idle_core():
    sched = Scheduler(4)
    sched.idle_cores.update({2, 3})
    t = make_thread(1)
    core = sched.enqueue(t)
    assert core == 2
    assert t.state is ThreadState.READY


def test_enqueue_respects_pinning():
    sched = Scheduler(4)
    sched.idle_cores.add(0)
    t = make_thread(1, pinned=3)
    assert sched.enqueue(t) == 3


def test_enqueue_least_loaded_when_no_idle():
    sched = Scheduler(2)
    for tid in range(3):
        sched.enqueue(make_thread(tid))
    # 3 threads over 2 cores: queue lengths 2 and 1 or balanced
    assert sched.total_queued() == 3
    assert abs(sched.queue_length(0) - sched.queue_length(1)) <= 1


def test_wake_prefers_previous_core_when_idle():
    sched = Scheduler(4)
    t = make_thread(1)
    sched.enqueue(t, core_id=2)
    assert sched.pick_next(2) is t
    sched.idle_cores.update({0, 2})
    # Previous core 2 is idle: go back there, not core 0.
    assert sched.enqueue(t) == 2


def test_pick_next_fifo():
    sched = Scheduler(1)
    a, b = make_thread(1), make_thread(2)
    sched.enqueue(a)
    sched.enqueue(b)
    assert sched.pick_next(0) is a
    assert sched.pick_next(0) is b
    assert sched.pick_next(0) is None


def test_priority_ordering():
    sched = Scheduler(1)
    normal = make_thread(1, priority=0)
    urgent = make_thread(2, priority=-1)
    sched.enqueue(normal)
    sched.enqueue(urgent)
    assert sched.pick_next(0) is urgent


def test_stealing_takes_unpinned_from_loaded_core():
    sched = Scheduler(2, steal=True)
    a, b = make_thread(1), make_thread(2)
    sched.enqueue(a, core_id=0)
    sched.enqueue(b, core_id=0)
    stolen = sched.pick_next(1)
    assert stolen is b  # steals from the tail


def test_stealing_skips_pinned():
    sched = Scheduler(2, steal=True)
    t = make_thread(1, pinned=0)
    sched.enqueue(t, core_id=0)
    assert sched.pick_next(1) is None
    assert sched.pick_next(0) is t


def test_no_stealing_when_disabled():
    sched = Scheduler(2, steal=False)
    sched.enqueue(make_thread(1), core_id=0)
    assert sched.pick_next(1) is None


def test_remove_queued_thread():
    sched = Scheduler(1)
    t = make_thread(1)
    sched.enqueue(t)
    assert sched.remove(t)
    assert not sched.remove(t)
    assert sched.pick_next(0) is None


def test_priority_zero_runs_before_background_work():
    """Regression: a priority-0 thread enqueued behind background
    (priority > 0) work must run first, not be appended after it."""
    sched = Scheduler(1)
    background = make_thread(1, priority=5)
    normal = make_thread(2, priority=0)
    sched.enqueue(background)
    sched.enqueue(normal)
    assert sched.pick_next(0) is normal
    assert sched.pick_next(0) is background


def test_priority_fifo_within_level():
    sched = Scheduler(1)
    bg = make_thread(1, priority=3)
    a = make_thread(2, priority=0)
    b = make_thread(3, priority=0)
    sched.enqueue(bg)
    sched.enqueue(a)
    sched.enqueue(b)
    assert sched.pick_next(0) is a
    assert sched.pick_next(0) is b
    assert sched.pick_next(0) is bg


def test_steal_leaves_single_queued_thread():
    """Regression: stealing a victim's only queued thread just moves
    the imbalance; the victim must keep it."""
    sched = Scheduler(2, steal=True)
    only = make_thread(1)
    sched.enqueue(only, core_id=0)
    assert sched.pick_next(1) is None
    assert sched.pick_next(0) is only


def test_steal_never_targets_requesting_core():
    """Regression: the requester must not pick itself as victim."""
    sched = Scheduler(1, steal=True)
    sched.enqueue(make_thread(1), core_id=0)
    sched.enqueue(make_thread(2), core_id=0)
    # The only "victim" is the requester itself: no steal.
    assert sched._steal_for(0) is None
    assert sched.queue_length(0) == 2


def test_enqueue_done_thread_rejected():
    sched = Scheduler(1)
    t = make_thread(1)
    t.state = ThreadState.DONE
    with pytest.raises(ValueError):
        sched.enqueue(t)
