"""Timer-wheel cascade, rollover and overflow edge cases.

The differential test in ``tests/properties`` proves order equivalence
statistically; these tests pin the specific wheel mechanics — level
boundaries, cascades, the 2^32-tick overflow horizon, and cursor-ahead
inserts — with hand-built schedules whose expected behaviour is obvious.
"""

from repro.sim import Simulator, attach_profile

#: Ticks per level window: L0 covers 2^8, L1 2^16, L2 2^24, L3 2^32.
L0, L1, L2, L3 = 256, 65536, 16777216, 4294967296


def _fire_order(sim, delays):
    """Arm one timer per delay; return values in dispatch order."""
    fired = []
    for i, delay in enumerate(delays):
        sim.timeout(delay, value=(delay, i)).add_callback(
            lambda ev: fired.append(ev._value)
        )
    sim.run()
    return fired


def test_level_boundary_delays_dispatch_in_time_order():
    sim = Simulator()
    delays = [L0 - 1, L0, L0 + 1, L1 - 1, L1, L1 + 1,
              L2 - 1, L2, L2 + 1, L3 - 1, 3, 1000]
    fired = _fire_order(sim, delays)
    assert [d for d, _ in fired] == sorted(delays)
    assert sim.now == L3 - 1


def test_same_delay_preserves_arming_order():
    sim = Simulator()
    # Ten timers at one instant, spanning an L1 cascade: seq must break
    # the tie in creation order even after the bucket is re-filed.
    fired = _fire_order(sim, [L1 + 5] * 10)
    assert fired == [(L1 + 5, i) for i in range(10)]


def test_fractional_delays_within_one_tick():
    sim = Simulator()
    fired = _fire_order(sim, [5.75, 5.25, 5.5, 5.0, 6.0])
    assert [d for d, _ in fired] == [5.0, 5.25, 5.5, 5.75, 6.0]


def test_cascades_are_counted():
    sim = Simulator()
    sim.timeout(L2 + 7)  # parked in L2, cascades via L1 to L0
    sim.run()
    report = attach_profile(sim).report()
    assert report["cascaded_entries"] >= 1
    assert sim.now == L2 + 7


def test_overflow_beyond_top_level():
    sim = Simulator()
    fired = _fire_order(sim, [2 * L3 + 3, 5, L3 + 1])
    assert [d for d, _ in fired] == [5, L3 + 1, 2 * L3 + 3]
    assert sim.now == 2 * L3 + 3


def test_lone_timer_exactly_on_overflow_page_boundary():
    """Regression: a sole timer at exactly 2^32 ticks used to bounce
    through the overflow list forever (the cursor jump landed one tick
    short, in the previous 2^32 page, where no level test can pass)."""
    sim = Simulator()
    fired = _fire_order(sim, [float(L3)])
    assert fired == [(float(L3), 0)]
    assert sim.now == L3


def test_overflow_rescan_keeps_relative_order():
    sim = Simulator()
    # All beyond the horizon at arming time; the rescan must re-file
    # them without reordering, including ties broken by seq.
    delays = [L3 + 100, L3 + 1, L3 + 100, L3 + 50]
    fired = _fire_order(sim, delays)
    assert fired == [(L3 + 1, 1), (L3 + 50, 3),
                     (L3 + 100, 0), (L3 + 100, 2)]


def test_insert_behind_cursor_after_bounded_run():
    """run(until=) can leave the drain cursor ahead of the clock (the
    thin-bucket drain batches neighbouring slots); a new timer landing
    at or behind the cursor must still fire, in time order."""
    sim = Simulator()
    fired = []

    def note(ev):
        fired.append((ev._value, sim.now))

    sim.timeout(505, value=505).add_callback(note)
    sim.run(until=sim.timeout(500))
    assert sim.now == 500
    assert sim._cur >= 502  # 505's slot was already drained into _due
    # t=502 sits behind the drained bucket: the insort path must merge
    # it into the pending due batch ahead of the 505 timer.
    sim.timeout(2, value=502).add_callback(note)
    sim.run()
    assert fired == [(502, 502.0), (505, 505.0)]
    assert sim.now == 505


def test_peek_spans_refills():
    sim = Simulator()
    sim.timeout(L1 + 9)
    sim.timeout(3)
    assert sim.peek() == 3
    sim.step()
    assert sim.now == 3
    assert sim.peek() == L1 + 9
    sim.step()
    assert sim.now == L1 + 9
    assert sim.peek() == float("inf")


def test_cancel_inside_overflow_is_swept():
    sim = Simulator()
    guards = [sim.timeout(L3 + 10 + i) for i in range(200)]
    keeper = sim.timeout(50, value="keep")
    for guard in guards:
        assert guard.cancel()
    assert sim.run(until=keeper) == "keep"
    sim.run()
    assert sim.now == 50  # no tombstone held the clock at the horizon
