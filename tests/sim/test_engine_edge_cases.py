"""Additional edge-case coverage for the simulation engine."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, SimulationError, Simulator


def test_anyof_propagates_failure():
    sim = Simulator()
    good = sim.timeout(100)
    bad = sim.event()
    caught = []

    def proc():
        try:
            yield AnyOf(sim, [good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    bad.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_allof_propagates_failure():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield AllOf(sim, [sim.timeout(100), _failing(sim, 50)])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.run()
    assert caught == ["late fail"]


def _failing(sim, delay):
    event = sim.event()

    def failer():
        yield sim.timeout(delay)
        event.fail(ValueError("late fail"))

    sim.process(failer())
    return event


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(5, value="ding")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["ding"]


def test_event_value_access_rules():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok
    event.fail(RuntimeError("x"))
    assert event.ok is False
    with pytest.raises(SimulationError):
        _ = event.value
    # Drain the queue; the failure is defused by our inspection.
    event._defused = True
    sim.run()


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_add_callback_after_processed_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run()
    got = []
    event.add_callback(lambda ev: got.append(ev._value))
    assert got == ["v"]


def test_peek_and_step_directly():
    sim = Simulator()
    sim.timeout(30)
    sim.timeout(10)
    assert sim.peek() == 10
    sim.step()
    assert sim.now == 10
    assert sim.peek() == 30


def test_cross_simulator_wait_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.event()

    def proc():
        yield foreign

    sim_a.process(proc())
    foreign.succeed()
    with pytest.raises(SimulationError):
        sim_a.run()
        sim_b.run()


def test_interrupt_during_zero_delay_chain():
    """An interrupt delivered mid wake-up chain lands at the next
    yield even though the chain never advances the clock (the urgent
    FIFO must outrank queued zero-delay timers)."""
    sim = Simulator()
    hops = []
    caught = []

    def chain():
        try:
            for i in range(10):
                hops.append(i)
                yield sim.timeout(0)
        except Interrupt as intr:
            caught.append(intr.cause)

    target = sim.process(chain())

    def interrupter():
        yield sim.timeout(0)
        target.interrupt("stop")

    sim.process(interrupter())
    sim.run()
    assert caught == ["stop"]
    assert sim.now == 0
    assert 0 < len(hops) < 10  # the chain was cut short mid-flight


def test_cancelled_timeout_never_fires():
    sim = Simulator()
    fired = []
    guard = sim.timeout(100)
    guard.add_callback(fired.append)

    def canceller():
        yield sim.timeout(10)
        assert guard.cancel() is True
        yield sim.timeout(500)

    sim.process(canceller())
    sim.run()
    assert fired == []
    assert guard.cancelled
    assert not guard.triggered
    assert sim.now == 510  # the dead timer did not hold the clock


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    timer = sim.timeout(5)
    sim.run()
    assert timer.triggered
    assert timer.cancel() is False
    assert not timer.cancelled


def test_cancel_zero_delay_timeout():
    """Tombstones in the same-instant FIFO are skipped too."""
    sim = Simulator()
    dead = sim.timeout(0)
    assert dead.cancel()
    done = []

    def proc():
        yield sim.timeout(0)
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_wait_on_cancelled_timeout_rejected():
    sim = Simulator()
    guard = sim.timeout(50)
    guard.cancel()

    def proc():
        yield guard

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_anyof_over_already_fired_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()  # the event is fired *and processed* before the AnyOf exists
    got = []

    def proc():
        result = yield AnyOf(sim, [done, sim.timeout(100)])
        got.append(result)

    sim.process(proc())
    sim.run()
    assert got == [{done: "early"}]  # satisfied at t=0, timer excluded


def test_mass_cancellation_compacts_heap():
    sim = Simulator()
    guards = [sim.timeout(1000 + i) for i in range(300)]
    keeper = sim.timeout(5000, value="keep")
    for guard in guards:
        assert guard.cancel()
    # Tombstones came to dominate, so the wheel was swept in place.
    assert sim._stat_sweeps >= 1
    assert sim.pending_timers < 300
    assert sim.run(until=keeper) == "keep"
    assert sim.now == 5000


def test_priority_store_blocking_put_rejected():
    from repro.sim import PriorityStore

    sim = Simulator()
    store = PriorityStore(sim, capacity=1)
    store.put("a")
    with pytest.raises(SimulationError):
        store.put("b")
