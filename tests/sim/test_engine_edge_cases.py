"""Additional edge-case coverage for the simulation engine."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_anyof_propagates_failure():
    sim = Simulator()
    good = sim.timeout(100)
    bad = sim.event()
    caught = []

    def proc():
        try:
            yield AnyOf(sim, [good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    bad.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_allof_propagates_failure():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield AllOf(sim, [sim.timeout(100), _failing(sim, 50)])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.run()
    assert caught == ["late fail"]


def _failing(sim, delay):
    event = sim.event()

    def failer():
        yield sim.timeout(delay)
        event.fail(ValueError("late fail"))

    sim.process(failer())
    return event


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc():
        value = yield sim.timeout(5, value="ding")
        got.append(value)

    sim.process(proc())
    sim.run()
    assert got == ["ding"]


def test_event_value_access_rules():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok
    event.fail(RuntimeError("x"))
    assert event.ok is False
    with pytest.raises(SimulationError):
        _ = event.value
    # Drain the queue; the failure is defused by our inspection.
    event._defused = True
    sim.run()


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_add_callback_after_processed_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run()
    got = []
    event.add_callback(lambda ev: got.append(ev._value))
    assert got == ["v"]


def test_peek_and_step_directly():
    sim = Simulator()
    sim.timeout(30)
    sim.timeout(10)
    assert sim.peek() == 10
    sim.step()
    assert sim.now == 10
    assert sim.peek() == 30


def test_cross_simulator_wait_rejected():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.event()

    def proc():
        yield foreign

    sim_a.process(proc())
    foreign.succeed()
    with pytest.raises(SimulationError):
        sim_a.run()
        sim_b.run()


def test_priority_store_blocking_put_rejected():
    from repro.sim import PriorityStore

    sim = Simulator()
    store = PriorityStore(sim, capacity=1)
    store.put("a")
    with pytest.raises(SimulationError):
        store.put("b")
