"""Unit tests for Store, PriorityStore, Resource, and Gate."""

import pytest

from repro.sim import Gate, PriorityStore, Resource, Simulator, Store


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(50)
        yield store.put("x")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [(50, "x")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a-accepted", sim.now))
        yield store.put("b")
        log.append(("b-accepted", sim.now))

    def consumer():
        yield sim.timeout(30)
        item = yield store.get()
        log.append((item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("a-accepted", 0.0) in log
    assert ("b-accepted", 30.0) in log


def test_store_try_put_drop_when_full():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.try_put("z")
    ok, item = store.try_get()
    assert ok and item == "z"


def test_store_bad_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_priority_store_orders_by_priority():
    sim = Simulator()
    ps = PriorityStore(sim)
    got = []

    def run():
        ps.put("low", priority=10)
        ps.put("high", priority=0)
        ps.put("mid", priority=5)
        for _ in range(3):
            item = yield ps.get()
            got.append(item)

    sim.process(run())
    sim.run()
    assert got == ["high", "mid", "low"]


def test_priority_store_fifo_within_priority():
    sim = Simulator()
    ps = PriorityStore(sim)
    ps.put("first", priority=1)
    ps.put("second", priority=1)
    ok, a = ps.try_get()
    ok2, b = ps.try_get()
    assert (a, b) == ("first", "second")


def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    timeline = []

    def worker(tag):
        yield res.acquire()
        timeline.append((tag, "in", sim.now))
        yield sim.timeout(10)
        timeline.append((tag, "out", sim.now))
        res.release()

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    assert timeline == [
        ("a", "in", 0.0),
        ("a", "out", 10.0),
        ("b", "in", 10.0),
        ("b", "out", 20.0),
    ]


def test_resource_capacity_two_admits_pair():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def worker(tag):
        yield res.acquire()
        entered.append((tag, sim.now))
        yield sim.timeout(10)
        res.release()

    for tag in ("a", "b", "c"):
        sim.process(worker(tag))
    sim.run()
    assert entered == [("a", 0.0), ("b", 0.0), ("c", 10.0)]


def test_resource_release_idle_rejected():
    sim = Simulator()
    res = Resource(sim)
    from repro.sim import SimulationError

    with pytest.raises(SimulationError):
        res.release()


def test_gate_broadcasts_to_all_waiters():
    sim = Simulator()
    gate = Gate(sim)
    woke = []

    def waiter(tag):
        value = yield gate.wait()
        woke.append((tag, value, sim.now))

    def opener():
        yield sim.timeout(5)
        released = gate.open("go")
        assert released == 2

    sim.process(waiter("a"))
    sim.process(waiter("b"))
    sim.process(opener())
    sim.run()
    assert sorted(woke) == [("a", "go", 5.0), ("b", "go", 5.0)]


def test_gate_open_with_no_waiters():
    sim = Simulator()
    gate = Gate(sim)
    assert gate.open() == 0
