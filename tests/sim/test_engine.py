"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def proc():
        yield sim.timeout(100)
        fired.append(sim.now)

    sim.process(proc())
    sim.run()
    assert fired == [100]


def test_timeouts_fire_in_order():
    sim = Simulator()
    order = []

    def proc(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(30, "c"))
    sim.process(proc(10, "a"))
    sim.process(proc(20, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(5)
        order.append(tag)

    for tag in ("x", "y", "z"):
        sim.process(proc(tag))
    sim.run()
    assert order == ["x", "y", "z"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(1)
        return 42

    p = sim.process(proc())
    assert sim.run(until=p) == 42


def test_run_until_timestamp_stops_clock():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10)

    sim.process(proc())
    sim.run(until=55)
    assert sim.now == 55


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(ValueError):
        sim.run(until=5)


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def firer():
        yield sim.timeout(7)
        ev.succeed("payload")

    sim.process(waiter())
    sim.process(firer())
    sim.run()
    assert got == ["payload"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    ev.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_event_failure_surfaces():
    sim = Simulator()
    ev = sim.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError):
        sim.run()


def test_process_crash_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def crasher():
        yield sim.timeout(1)
        raise ValueError("dead")

    def parent():
        try:
            yield sim.process(crasher())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["dead"]


def test_interrupt_delivery_and_cause():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield sim.timeout(1000)
        except Interrupt as intr:
            seen.append((sim.now, intr.cause))

    def attacker(target):
        yield sim.timeout(40)
        target.interrupt("ipi")

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert seen == [(40, "ipi")]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(1000)
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(10)
        log.append(sim.now)

    def attacker(target):
        yield sim.timeout(5)
        target.interrupt()

    v = sim.process(victim())
    sim.process(attacker(v))
    sim.run()
    assert log == ["interrupted", 15]


def test_anyof_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        t1 = sim.timeout(10, value="fast")
        t2 = sim.timeout(20, value="slow")
        got = yield AnyOf(sim, [t1, t2])
        results.append((sim.now, list(got.values())))

    sim.process(proc())
    sim.run()
    assert results == [(10, ["fast"])]


def test_allof_waits_for_all():
    sim = Simulator()
    results = []

    def proc():
        t1 = sim.timeout(10, value=1)
        t2 = sim.timeout(25, value=2)
        got = yield AllOf(sim, [t1, t2])
        results.append((sim.now, sorted(got.values())))

    sim.process(proc())
    sim.run()
    assert results == [(25, [1, 2])]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    done = []

    def proc():
        yield AllOf(sim, [])
        done.append(sim.now)

    sim.process(proc())
    sim.run()
    assert done == [0.0]


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc():
        yield 42

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_event_value():
    sim = Simulator()
    ev = sim.event()

    def firer():
        yield sim.timeout(3)
        ev.succeed("done")

    sim.process(firer())
    assert sim.run(until=ev) == "done"
    assert sim.now == 3


def test_run_until_event_starves_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=ev)


def test_zero_delay_chain_runs_at_same_time():
    sim = Simulator()
    stamps = []

    def proc():
        for _ in range(5):
            yield sim.timeout(0)
            stamps.append(sim.now)

    sim.process(proc())
    sim.run()
    assert stamps == [0.0] * 5


def test_nested_processes():
    sim = Simulator()

    def child(n):
        yield sim.timeout(n)
        return n * 2

    def parent():
        a = yield sim.process(child(5))
        b = yield sim.process(child(7))
        return a + b

    p = sim.process(parent())
    assert sim.run(until=p) == 24
    assert sim.now == 12
