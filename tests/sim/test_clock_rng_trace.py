"""Unit tests for clock conversions, RNG streams, and the tracer."""

import pytest

from repro.sim import GHZ, MS, SEC, US, Frequency, RngRegistry, Simulator, Tracer
from repro.sim.clock import bytes_time_ns


def test_unit_constants():
    assert US == 1000
    assert MS == 1_000_000
    assert SEC == 1_000_000_000


def test_frequency_cycle_conversion_roundtrip():
    f = GHZ(2.0)
    assert f.cycles_to_ns(2000) == pytest.approx(1000)
    assert f.ns_to_cycles(1000) == pytest.approx(2000)
    assert f.ns_to_cycles(f.cycles_to_ns(12345)) == pytest.approx(12345)


def test_frequency_ghz_property():
    assert GHZ(3.5).ghz == pytest.approx(3.5)


def test_frequency_rejects_nonpositive():
    with pytest.raises(ValueError):
        Frequency(0)


def test_bytes_time_ns():
    # 100 Gb/s = 12.5 GB/s -> 1250 bytes take 100ns
    assert bytes_time_ns(1250, 12.5e9) == pytest.approx(100)
    with pytest.raises(ValueError):
        bytes_time_ns(10, 0)


def test_rng_streams_deterministic():
    a = RngRegistry(seed=7).stream("nic").random()
    b = RngRegistry(seed=7).stream("nic").random()
    assert a == b


def test_rng_streams_independent_by_name():
    reg = RngRegistry(seed=7)
    xs = [reg.stream("a").random() for _ in range(5)]
    reg2 = RngRegistry(seed=7)
    reg2.stream("b").random()  # consuming another stream must not matter
    ys = [reg2.stream("a").random() for _ in range(5)]
    assert xs == ys


def test_rng_different_seeds_differ():
    a = RngRegistry(seed=1).stream("s").random()
    b = RngRegistry(seed=2).stream("s").random()
    assert a != b


def test_rng_fork_independent():
    reg = RngRegistry(seed=3)
    child = reg.fork("trial-1")
    assert child.stream("s").random() != reg.stream("s").random()
    # Fork is deterministic too.
    again = RngRegistry(seed=3).fork("trial-1")
    assert again.stream("s").random() == RngRegistry(seed=3).fork("trial-1").stream("s").random()


def test_tracer_emit_and_query():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("nic", "rx", size=64)
    sim.run(until=10)
    tracer.emit("nic", "tx", size=128)
    tracer.emit("os", "sched")
    assert len(list(tracer.query(category="nic"))) == 2
    assert len(list(tracer.query(category="nic", label="rx"))) == 1
    rx = next(tracer.query(label="rx"))
    assert rx["size"] == 64 and rx.time_ns == 0


def test_tracer_field_filter():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("x", "y", core=1)
    tracer.emit("x", "y", core=2)
    assert len(list(tracer.query(core=2))) == 1


def test_tracer_disabled_drops_records():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    tracer.emit("a", "b")
    assert tracer.records == []


def test_tracer_span_duration():
    sim = Simulator()
    tracer = Tracer(sim)
    done = []

    def proc():
        span = tracer.span("stage", "demux", pkt=1)
        yield sim.timeout(42)
        done.append(span.close())

    sim.process(proc())
    sim.run()
    assert done == [42]
    record = next(tracer.query(label="demux"))
    assert record["duration_ns"] == 42 and record["pkt"] == 1


def test_tracer_subscribe():
    sim = Simulator()
    tracer = Tracer(sim)
    seen = []
    tracer.subscribe(lambda r: seen.append(r.label))
    tracer.emit("c", "one")
    tracer.emit("c", "two")
    assert seen == ["one", "two"]
