"""Smoke test for the engine microbenchmark harness.

Runs every benchmark at --quick size, headless, and checks the report
shape — so the tier-1 suite catches a bench_engine.py that no longer
runs long before anyone compares numbers across PRs.
"""

import json
import sys
from pathlib import Path

BENCH_DIR = str(Path(__file__).resolve().parents[2] / "benchmarks")
if BENCH_DIR not in sys.path:  # benchmarks/ is not a package
    sys.path.insert(0, BENCH_DIR)

import bench_engine  # noqa: E402


def test_quick_run_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert bench_engine.main(["--quick", "--repeat", "1",
                              "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["mode"] == "quick"
    assert report["has_cancel"] is True
    names = set(report["benchmarks"])
    assert names == {"timer_churn", "zero_delay_chain",
                     "anyof_fanin", "cancel_churn"}
    for result in report["benchmarks"].values():
        assert result["events"] > 0
        assert result["events_per_sec"] > 0
        profile = result["profile"]
        assert profile["events_dispatched"] > 0
        assert profile["heap_high_water"] >= 0
    # The quick run prints a table but must not prompt or block.
    assert "benchmark" in capsys.readouterr().out


def test_benchmark_subset_selection(tmp_path):
    out = tmp_path / "subset.json"
    assert bench_engine.main(["--quick", "--repeat", "1", "--out", str(out),
                              "timer_churn"]) == 0
    report = json.loads(out.read_text())
    assert list(report["benchmarks"]) == ["timer_churn"]


def test_profile_counters_consistent():
    sim, events = bench_engine._run_timer_churn(50, 20)
    from repro.sim import attach_profile

    report = attach_profile(sim).report()
    assert report["events_dispatched"] >= events
    # Every timer in this workload is future-dated: all heap pushes.
    assert report["heap_pushes"] >= events
    assert 0 < report["heap_high_water"] <= 50 + 1
    assert report["timeouts_cancelled"] == 0
    assert report["heap_size"] == 0  # run() drained the heap
