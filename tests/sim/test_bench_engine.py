"""Smoke test for the engine microbenchmark harness.

Runs every benchmark at --quick size, headless, and checks the report
shape — so the tier-1 suite catches a bench_engine.py that no longer
runs long before anyone compares numbers across PRs.
"""

import json
import sys
from pathlib import Path

BENCH_DIR = str(Path(__file__).resolve().parents[2] / "benchmarks")
if BENCH_DIR not in sys.path:  # benchmarks/ is not a package
    sys.path.insert(0, BENCH_DIR)

import bench_engine  # noqa: E402


def test_quick_run_writes_report(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert bench_engine.main(["--quick", "--repeat", "1",
                              "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["mode"] == "quick"
    assert report["has_cancel"] is True
    names = set(report["benchmarks"])
    assert names == {"timer_churn", "zero_delay_chain", "anyof_fanin",
                     "cancel_churn", "wheel_stress", "frame_churn"}
    for result in report["benchmarks"].values():
        assert result["events"] > 0
        assert result["events_per_sec"] > 0
        profile = result["profile"]
        assert profile["events_dispatched"] > 0
        assert profile["wheel_high_water"] >= 0
    # The quick run prints a table but must not prompt or block.
    assert "benchmark" in capsys.readouterr().out


def test_benchmark_subset_selection(tmp_path):
    out = tmp_path / "subset.json"
    assert bench_engine.main(["--quick", "--repeat", "1", "--out", str(out),
                              "timer_churn"]) == 0
    report = json.loads(out.read_text())
    assert list(report["benchmarks"]) == ["timer_churn"]


def test_profile_counters_consistent():
    sim, events = bench_engine._run_timer_churn(50, 20)
    from repro.sim import attach_profile

    report = attach_profile(sim).report()
    assert report["events_dispatched"] >= events
    # Every timer in this workload is future-dated: all wheel pushes.
    assert report["wheel_pushes"] >= events
    assert 0 < report["wheel_high_water"] <= 50 + 1
    assert report["timeouts_cancelled"] == 0
    assert report["wheel_size"] == 0  # run() drained the wheel


def test_wheel_stress_exercises_cascades():
    sim, events = bench_engine._run_wheel_stress(50, 20)
    from repro.sim import attach_profile

    report = attach_profile(sim).report()
    assert report["events_dispatched"] >= events
    # Multi-level delays mean upper-level inserts cascading back down
    # and L0 buckets actually draining — the paths this workload exists
    # to stress.
    assert report["cascaded_entries"] > 0
    assert report["bucket_drains"] > 0
    assert report["wheel_size"] == 0


def test_guard_fails_on_missing_baseline_entry():
    report = {"benchmarks": {
        "timer_churn": {"args": [1, 1], "events_per_sec": 100},
        "brand_new": {"args": [1, 1], "events_per_sec": 100},
    }}
    baseline = {"benchmarks": {
        "timer_churn": {"args": [1, 1], "events_per_sec": 100},
    }}
    failures = bench_engine.check_guard(report, baseline, tolerance=0.05)
    assert len(failures) == 1
    assert "brand_new" in failures[0]
    assert "no baseline entry" in failures[0]


def test_guard_update_rewrites_baseline_canonically(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "benchmarks": {
            "retired_bench": {"args": [9, 9], "events_per_sec": 1},
        },
    }))
    assert bench_engine.main(["--quick", "--repeat", "1",
                              "--guard", str(baseline), "--update",
                              "timer_churn"]) == 0
    text = baseline.read_text()
    updated = json.loads(text)
    # The run's entries replace their baseline counterparts; untouched
    # entries survive, and the file is in canonical sorted-key order.
    assert "timer_churn" in updated["benchmarks"]
    assert "retired_bench" in updated["benchmarks"]
    assert text == json.dumps(updated, indent=2, sort_keys=True) + "\n"
