"""The Controller: epoch cadence, the inert contract, the tap."""

import pytest

from repro.ctrl import Actuators, Controller, PolicySpec
from repro.ctrl.policy import Policy
from repro.obs.timeseries import Window


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeSampler:
    def __init__(self):
        self.taps = []

    def subscribe(self, tap):
        self.taps.append(tap)

    def push(self, index):
        window = Window(index, index * 100.0, (index + 1) * 100.0, {})
        for tap in self.taps:
            tap(window)
        return window


class RecordingPolicy(Policy):
    def __init__(self):
        super().__init__(PolicySpec.from_spec("static"))
        self.calls = []

    def decide(self, view, acts):
        self.calls.append((view.epoch, view.now_ns, len(view.windows),
                           acts.epoch))


def _controller(policy, **kwargs):
    sampler = FakeSampler()
    acts = Actuators(FakeSim())
    return Controller(sampler, acts, policy, **kwargs), sampler, acts


def test_inert_controller_registers_no_tap():
    for inert in (None, PolicySpec.from_spec("none")):
        controller, sampler, _acts = _controller(inert)
        assert not controller.armed
        assert sampler.taps == []
        assert controller.epochs == 0


def test_armed_controller_decides_every_epoch_windows():
    policy = RecordingPolicy()
    controller, sampler, _acts = _controller(policy, epoch_windows=2)
    assert controller.armed
    for index in range(5):
        sampler.push(index)
    assert controller.epochs == 2
    # Decisions at windows 1 and 3 (0-based), epoch stamped on acts.
    assert policy.calls == [(1, 200.0, 2, 1), (2, 400.0, 4, 2)]


def test_spec_policy_brings_its_own_epoch_length():
    controller, sampler, _acts = _controller(
        PolicySpec.from_spec("static,epoch=3"))
    assert controller.armed
    assert controller.epoch_windows == 3
    for index in range(3):
        sampler.push(index)
    assert controller.epochs == 1


def test_window_history_is_bounded():
    policy = RecordingPolicy()
    controller, sampler, _acts = _controller(policy, epoch_windows=1)
    for index in range(40):
        sampler.push(index)
    assert controller.epochs == 40
    assert policy.calls[-1][2] <= 16  # _HISTORY bound


def test_epoch_windows_must_be_positive():
    with pytest.raises(ValueError, match="at least one window"):
        _controller(RecordingPolicy(), epoch_windows=0)


def test_actuation_log_round_trips_through_the_controller():
    from repro.ctrl import AdmissionGate

    sampler = FakeSampler()
    acts = Actuators(FakeSim(), gate=AdmissionGate())
    controller = Controller(sampler, acts, RecordingPolicy())
    assert controller.actuation_log() == []
    acts.epoch = 1
    assert acts.set_admission_hold(5_000.0)
    assert controller.actuation_log() == [
        {"t_ns": 0.0, "epoch": 1, "knob": "admission_hold", "value": 5000.0}
    ]
