"""The Actuators facade: knob mapping, skip rules, and the log."""

from repro.ctrl import AdmissionGate, Actuators


class FakeSim:
    def __init__(self):
        self.now = 0.0


class BypassLikeNic:
    def __init__(self):
        self.poll_quantum_ns = 1_000_000.0


class DmaLikeNic:
    def __init__(self):
        self.irq_coalesce_ns = 0.0


class LauberhornLikeNic:
    def __init__(self):
        self.tryagain_timeout_ns = 1_000.0

    def set_tryagain_timeout_ns(self, value):
        if value <= 0:
            raise ValueError("timeout must be positive")
        self.tryagain_timeout_ns = float(value)


def test_gate_counts_only_positive_holds():
    gate = AdmissionGate()
    assert gate() == 0.0
    assert gate.holds == 0
    gate.hold_ns = 500.0
    assert gate() == 500.0
    assert gate() == 500.0
    assert gate.holds == 2


def test_current_reports_none_for_unsupported_knobs():
    acts = Actuators(FakeSim(), nic=BypassLikeNic(), gate=None)
    assert acts.current("poll_quantum") == 1_000_000.0
    assert acts.current("admission_hold") is None   # no gate installed
    assert acts.current("irq_coalesce") is None     # wrong NIC kind
    assert acts.current("tryagain") is None


def test_setters_skip_unsupported_surfaces_without_logging():
    acts = Actuators(FakeSim(), nic=DmaLikeNic(), gate=None)
    assert not acts.set_admission_hold(10_000.0)
    assert not acts.set_poll_quantum(500_000.0)
    assert not acts.set_tryagain_timeout(4_000.0)
    assert acts.set_irq_coalesce(1_500.0)
    assert [r.knob for r in acts.log] == ["irq_coalesce"]


def test_setters_reject_invalid_values():
    acts = Actuators(FakeSim(), nic=BypassLikeNic(), gate=AdmissionGate())
    assert not acts.set_admission_hold(-1.0)
    assert not acts.set_poll_quantum(0.0)
    assert not acts.set_poll_quantum(-5.0)
    assert acts.log == []


def test_no_change_writes_are_not_logged():
    nic = LauberhornLikeNic()
    acts = Actuators(FakeSim(), nic=nic, gate=AdmissionGate())
    assert not acts.set_admission_hold(0.0)        # already zero
    assert not acts.set_tryagain_timeout(1_000.0)  # already the value
    assert acts.log == []
    assert acts.set_tryagain_timeout(2_000.0)
    assert nic.tryagain_timeout_ns == 2_000.0
    assert len(acts.log) == 1


def test_log_records_time_epoch_knob_and_value():
    sim = FakeSim()
    acts = Actuators(sim, nic=BypassLikeNic(), gate=AdmissionGate())
    sim.now = 123.0
    acts.epoch = 3
    assert acts.set_poll_quantum(250_000.0)
    sim.now = 456.0
    acts.epoch = 4
    assert acts.set_admission_hold(9_000.0)
    assert acts.log_as_dicts() == [
        {"t_ns": 123.0, "epoch": 3, "knob": "poll_quantum",
         "value": 250_000.0},
        {"t_ns": 456.0, "epoch": 4, "knob": "admission_hold",
         "value": 9_000.0},
    ]
