"""Epoch migration: chooser behaviour and schedule determinism."""

import pytest

from repro.ctrl import EpochMigrator, EpochRecord, greedy_chooser, \
    sticky_chooser
from repro.faults.plan import FaultPlan

STACKS = ("linux", "snap", "bypass", "lauberhorn")


def _record(epoch, stack, p50, completed=10):
    return EpochRecord(epoch=epoch, stack=stack, migrated=False,
                       completed=completed, p50_rtt_ns=p50, penalty_ns=0.0,
                       samples=4)


def test_greedy_explores_every_stack_in_order_first():
    history = []
    for epoch, expect in enumerate(STACKS, start=1):
        assert greedy_chooser(history, STACKS) == expect
        history.append(_record(epoch, expect, p50=1000.0 * epoch))


def test_greedy_exploits_the_best_mean_p50_after_exploring():
    history = [
        _record(1, "linux", 9000.0),
        _record(2, "snap", 5000.0),
        _record(3, "bypass", 4000.0),
        _record(4, "lauberhorn", 2000.0),
    ]
    assert greedy_chooser(history, STACKS) == "lauberhorn"
    # Epochs that served nothing carry no signal.
    history.append(_record(5, "lauberhorn", 0.0, completed=0))
    assert greedy_chooser(history, STACKS) == "lauberhorn"


def test_sticky_chooser_never_migrates():
    chooser = sticky_chooser("bypass")
    assert chooser([], STACKS) == "bypass"
    assert chooser([_record(1, "bypass", 1.0)], STACKS) == "bypass"


def test_migrator_validates_its_configuration():
    with pytest.raises(ValueError, match="unknown chooser"):
        EpochMigrator(chooser="random")
    with pytest.raises(ValueError, match="at least one stack"):
        EpochMigrator(stacks=())
    with pytest.raises(ValueError, match="at least one epoch"):
        EpochMigrator(n_epochs=0)
    with pytest.raises(ValueError, match="unknown stack"):
        EpochMigrator(chooser=lambda history, stacks: "vax",
                      stacks=("linux",), n_epochs=1,
                      requests_per_epoch=1,
                      epoch_horizon_ns=1_000_000.0).run()


def _small_migrator():
    return EpochMigrator(
        chooser="greedy",
        stacks=("linux", "lauberhorn"),
        n_epochs=3,
        requests_per_epoch=4,
        epoch_horizon_ns=4_000_000.0,
        plan=FaultPlan.from_spec("loss=0.2,seed=3"),
    )


def test_migration_schedule_replays_identically():
    first = [r.as_dict() for r in _small_migrator().run()]
    second = [r.as_dict() for r in _small_migrator().run()]
    assert first == second
    assert len(first) == 3
    # The exploration epochs cover both stacks before exploitation.
    assert {r["stack"] for r in first[:2]} == {"linux", "lauberhorn"}


def test_migration_pays_the_penalty_only_on_stack_changes():
    history = _small_migrator().run()
    for previous, record in zip(history, history[1:]):
        if record.stack != previous.stack:
            assert record.migrated and record.penalty_ns > 0
        else:
            assert not record.migrated and record.penalty_ns == 0.0
    assert not history[0].migrated
