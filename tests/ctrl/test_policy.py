"""PolicySpec parsing/canonicalisation and the built-in policies."""

import pytest

from repro.ctrl import AdmissionGate, Actuators, PolicySpec, SignalView
from repro.ctrl.policy import (POLICIES, BackoffPolicy, SloGuardPolicy,
                               StaticPolicy, TunerPolicy)
from repro.obs.timeseries import Window


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeNic:
    """Exposes every knob the Actuators facade knows about."""

    def __init__(self):
        self.poll_quantum_ns = 1_000_000.0
        self.irq_coalesce_ns = 0.0
        self.tryagain_timeout_ns = 1_000.0

    def set_tryagain_timeout_ns(self, value):
        if value <= 0:
            raise ValueError("timeout must be positive")
        self.tryagain_timeout_ns = float(value)


def _acts():
    return Actuators(FakeSim(), nic=FakeNic(), gate=AdmissionGate())


def _view(values_per_window, epoch=1, epoch_windows=1):
    windows = [
        Window(i, i * 100.0, (i + 1) * 100.0, dict(values))
        for i, values in enumerate(values_per_window)
    ]
    return SignalView(windows, epoch=epoch,
                      now_ns=windows[-1].end_ns if windows else 0.0,
                      epoch_windows=epoch_windows)


# -- PolicySpec ---------------------------------------------------------


def test_spec_parses_name_reserved_keys_and_params():
    spec = PolicySpec.from_spec("backoff,epoch=4,seed=7,hold_step=50000")
    assert spec.name == "backoff"
    assert spec.epoch_windows == 4
    assert spec.seed == 7
    assert spec.params == (("hold_step", 50000.0),)
    assert not spec.inert


def test_spec_params_are_canonically_sorted():
    a = PolicySpec.from_spec("tuner,lo=1,hi=9")
    b = PolicySpec.from_spec("tuner,hi=9,lo=1")
    assert a == b
    assert a.as_dict() == b.as_dict()


def test_empty_and_none_specs_are_inert():
    assert PolicySpec.from_spec("").inert
    assert PolicySpec.from_spec("none").inert
    assert PolicySpec.from_spec("none").build() is None


def test_spec_rejects_unknown_policy_and_bad_entries():
    with pytest.raises(ValueError, match="unknown policy"):
        PolicySpec.from_spec("warp_drive")
    with pytest.raises(ValueError, match="policy name"):
        PolicySpec.from_spec("epoch=2")
    with pytest.raises(ValueError, match="key=value"):
        PolicySpec.from_spec("backoff,oops")
    with pytest.raises(ValueError, match="at least one window"):
        PolicySpec.from_spec("backoff,epoch=0")


def test_registry_builds_every_policy():
    assert set(POLICIES) == {"none", "static", "backoff", "tuner",
                             "slo_guard"}
    assert isinstance(PolicySpec.from_spec("static").build(), StaticPolicy)
    assert isinstance(PolicySpec.from_spec("backoff").build(), BackoffPolicy)
    assert isinstance(PolicySpec.from_spec("tuner").build(), TunerPolicy)
    assert isinstance(PolicySpec.from_spec("slo_guard").build(),
                      SloGuardPolicy)


# -- SignalView ---------------------------------------------------------


def test_view_latest_delta_and_defaults():
    view = _view([{"a": 5.0}, {"a": 9.0}], epoch_windows=1)
    assert view.latest("a") == 9.0
    assert view.delta("a") == 4.0
    assert view.latest("missing", default=-1.0) == -1.0
    assert view.delta("missing", default=0.0) == 0.0


def test_view_delta_spans_one_epoch_of_windows():
    view = _view([{"a": 1.0}, {"a": 4.0}, {"a": 9.0}], epoch_windows=2)
    assert view.delta("a") == 8.0  # newest vs two windows back


def test_view_delta_defaults_without_enough_history():
    view = _view([{"a": 3.0}], epoch_windows=2)
    assert view.delta("a", default=0.0) == 0.0


def test_view_suffix_aggregates_sum_across_components():
    view = _view([
        {"c0.retries": 1.0, "c1.retries": 2.0, "nic.rx": 5.0},
        {"c0.retries": 3.0, "c1.retries": 7.0, "nic.rx": 6.0},
    ], epoch_windows=1)
    assert view.total_latest(".retries") == 10.0
    assert view.total_delta(".retries") == 7.0


# -- StaticPolicy -------------------------------------------------------


def test_static_policy_applies_knobs_once_at_first_epoch():
    acts = _acts()
    policy = PolicySpec.from_spec(
        "static,hold=30000,coalesce=1500,quantum=400000,tryagain=2000"
    ).build()
    policy.decide(_view([{}], epoch=1), acts)
    assert acts.gate.hold_ns == 30000.0
    assert acts.nic.irq_coalesce_ns == 1500.0
    assert acts.nic.poll_quantum_ns == 400000.0
    assert acts.nic.tryagain_timeout_ns == 2000.0
    applied = len(acts.log)
    policy.decide(_view([{}], epoch=2), acts)
    assert len(acts.log) == applied  # later epochs leave knobs alone


# -- BackoffPolicy ------------------------------------------------------


def test_backoff_is_aimd_and_restores_the_tryagain_timeout():
    acts = _acts()
    policy = PolicySpec.from_spec(
        "backoff,trigger=1,hold_step=10000,hold_max=40000").build()
    calm = _view([{"nic.lauberhorn.tryagains": 0.0},
                  {"nic.lauberhorn.tryagains": 0.0}])
    storm = _view([{"nic.lauberhorn.tryagains": 0.0},
                   {"nic.lauberhorn.tryagains": 5.0}])

    policy.decide(storm, acts)       # multiplicative increase from zero
    assert acts.gate.hold_ns == 10000.0
    assert acts.nic.tryagain_timeout_ns == 2000.0  # base 1000 doubled
    policy.decide(storm, acts)
    assert acts.gate.hold_ns == 20000.0
    policy.decide(storm, acts)
    policy.decide(storm, acts)       # capped at hold_max
    assert acts.gate.hold_ns == 40000.0

    for _ in range(4):               # additive decrease back to zero
        policy.decide(calm, acts)
    assert acts.gate.hold_ns == 0.0
    assert acts.nic.tryagain_timeout_ns == 1000.0  # base restored
    policy.decide(calm, acts)        # already open: nothing to decay
    assert acts.gate.hold_ns == 0.0


def test_backoff_counts_retries_and_drops_as_storm_pressure():
    acts = _acts()
    policy = PolicySpec.from_spec("backoff,trigger=1").build()
    view = _view([{"c0.retries": 0.0, "nic.rx_dropped": 0.0},
                  {"c0.retries": 1.0, "nic.rx_dropped": 1.0}])
    policy.decide(view, acts)
    assert acts.gate.hold_ns > 0.0


# -- TunerPolicy --------------------------------------------------------


def test_tuner_hysteresis_has_a_dead_band():
    acts = _acts()
    policy = PolicySpec.from_spec("tuner,hi=10,lo=2").build()
    busy = _view([{"nic.rx_frames": 0.0}, {"nic.rx_frames": 15.0}])
    mid = _view([{"nic.rx_frames": 0.0}, {"nic.rx_frames": 5.0}])
    quiet = _view([{"nic.rx_frames": 0.0}, {"nic.rx_frames": 1.0}])

    policy.decide(busy, acts)
    assert acts.nic.irq_coalesce_ns == 2000.0
    assert acts.nic.poll_quantum_ns == 250_000.0
    applied = len(acts.log)

    policy.decide(mid, acts)         # dead band: no flapping
    policy.decide(busy, acts)        # already busy: no re-apply
    assert len(acts.log) == applied

    policy.decide(quiet, acts)
    assert acts.nic.irq_coalesce_ns == 0.0
    assert acts.nic.poll_quantum_ns == 1_000_000.0
