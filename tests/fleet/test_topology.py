"""Topology shape and frame-level behaviour of the rack fabric."""

import pytest

from repro.net import MacAddress, build_udp_frame, ip_address
from repro.net.topology import Topology, TopologySpec
from repro.sim import Simulator

MAC_A = MacAddress.from_string("02:00:00:00:00:aa")
MAC_B = MacAddress.from_string("02:00:00:00:00:bb")
IP_A, IP_B = ip_address("10.9.0.1"), ip_address("10.9.0.2")


def _frame(src_port=7000, dst_port=9000, payload=b"x" * 64):
    return build_udp_frame(MAC_A, MAC_B, IP_A, IP_B,
                           src_port, dst_port, payload)


def _deliver_one(topology, frame, *, src_tor, dst_tor):
    """Send one frame A->B across the topology; return the arrival time."""
    sim = topology.sim
    a = topology.attach(MAC_A, "a", tor=src_tor)
    b = topology.attach(MAC_B, "b", tor=dst_tor)
    arrivals = []

    def sender():
        yield from a.send(frame)

    def receiver():
        got = yield from b.receive()
        arrivals.append((sim.now, got))

    sim.process(sender())
    sim.process(receiver())
    sim.run()
    assert len(arrivals) == 1
    assert arrivals[0][1].data == frame.data
    return arrivals[0][0]


def test_spec_validation():
    with pytest.raises(ValueError):
        TopologySpec(n_tors=0)
    with pytest.raises(ValueError):
        TopologySpec(n_tors=2, n_trunks=0)


def test_degenerate_single_tor_is_the_legacy_switch():
    sim = Simulator()
    topology = Topology(sim, TopologySpec(n_tors=1))
    assert [s.name for s in topology.switches()] == ["switch"]
    assert topology.spine is None
    assert topology.uplinks == [()]
    # No trunk shuttles: the simulator has nothing scheduled at all.
    assert sim.peek() == float("inf")


def test_multi_tor_shape_and_salts():
    sim = Simulator()
    spec = TopologySpec(n_tors=2, n_trunks=2)
    topology = Topology(sim, spec, seed=7)
    names = [s.name for s in topology.switches()]
    assert names == ["tor0", "tor1", "spine"]
    for index in range(2):
        assert len(topology.uplinks[index]) == 2
        assert len(topology.downlinks[index]) == 2
        # Unknown destinations default-route up the ECMP trunk group.
        assert topology.tors[index].default_routes == topology.uplinks[index]
    # Distinct per-fabric salts (else the spine mirrors ToR decisions).
    salts = [s.ecmp_salt for s in topology.switches()]
    assert len(set(salts)) == len(salts)
    # ... and they are a pure function of the topology seed.
    replay = Topology(Simulator(), spec, seed=7)
    assert [s.ecmp_salt for s in replay.switches()] == salts


def test_hops_and_endpoint_registration():
    topology = Topology(Simulator(), TopologySpec(n_tors=2))
    topology.register_endpoint(MAC_A, 0)
    topology.register_endpoint(MAC_B, 1)
    assert topology.hops(MAC_A, MAC_A) == 1
    assert topology.hops(MAC_A, MAC_B) == 3
    with pytest.raises(KeyError):
        topology.hops(MAC_A, MacAddress.from_string("02:00:00:00:00:cc"))
    with pytest.raises(ValueError):
        topology.register_endpoint(MAC_A, 5)
    # The spine learned where B lives: a route toward ToR 1's downlinks.
    assert topology.spine.routes[MAC_B.value] == topology.downlinks[1]


def test_same_rack_delivery_and_cross_rack_costs_more():
    spec = TopologySpec(n_tors=2)
    frame = _frame()
    same = _deliver_one(Topology(Simulator(), spec), frame,
                        src_tor=0, dst_tor=0)
    cross = _deliver_one(Topology(Simulator(), spec), _frame(),
                         src_tor=0, dst_tor=1)
    assert same > 0
    # Cross-rack pays two trunk runs, the spine, and the far ToR.
    assert cross > same + 2 * spec.trunk_latency_ns


def test_ecmp_spreads_flows_over_parallel_trunks():
    sim = Simulator()
    topology = Topology(sim, TopologySpec(n_tors=2, n_trunks=2), seed=0)
    a = topology.attach(MAC_A, "a", tor=0)
    topology.attach(MAC_B, "b", tor=1)

    def sender():
        for flow in range(32):
            yield from a.send(_frame(src_port=40_000 + flow))

    sim.process(sender())
    sim.run()
    per_trunk = [up.egress.stats.delivered for up in topology.uplinks[0]]
    assert sum(per_trunk) == 32
    # Both members of the ECMP group carry traffic.
    assert all(count > 0 for count in per_trunk)


def test_trunk_choice_is_flow_affine():
    sim = Simulator()
    topology = Topology(sim, TopologySpec(n_tors=2, n_trunks=2), seed=0)
    a = topology.attach(MAC_A, "a", tor=0)
    topology.attach(MAC_B, "b", tor=1)

    def sender():
        for _ in range(10):
            yield from a.send(_frame(src_port=41_000))

    sim.process(sender())
    sim.run()
    per_trunk = [up.egress.stats.delivered for up in topology.uplinks[0]]
    # One flow, one path: all ten frames rode the same trunk.
    assert sorted(per_trunk) == [0, 10]
