"""Fleet assembly: identities, wiring, deployment, and replay."""

import pytest

from repro.experiments.testbed import SERVER_IP, SERVER_MAC
from repro.faults.context import active
from repro.faults.plan import FaultPlan
from repro.fleet import HostSpec, build_fleet, host_ip, host_mac
from repro.net.topology import TopologySpec
from repro.sim.clock import MS

MIXED = [
    HostSpec(stack="linux", tor=0),
    HostSpec(stack="snap", tor=1),
    HostSpec(stack="bypass", tor=0),
    HostSpec(stack="lauberhorn", tor=1),
]


def _drive(fleet, n_flows=8, per_flow=3):
    """Closed-loop flows through the balancer; returns the RTT list."""
    rtts = []

    def flow_loop(flow):
        client = fleet.clients[flow % len(fleet.clients)]
        yield fleet.sim.timeout(10_000)
        for k in range(per_flow):
            result = yield fleet.send(client, 42_000 + flow, [k])
            rtts.append((flow, k, result.rtt_ns))

    for flow in range(n_flows):
        fleet.sim.process(flow_loop(flow), name=f"flow{flow}")
    fleet.run(until=100 * MS)
    return rtts


def test_build_validation():
    with pytest.raises(ValueError):
        build_fleet([])
    with pytest.raises(ValueError):
        build_fleet([HostSpec(tor=1)])  # only 1 ToR by default
    with pytest.raises(ValueError):
        HostSpec(stack="windows")


def test_host_identities_are_positional_and_legacy_compatible():
    fleet = build_fleet(MIXED, topo=TopologySpec(n_tors=2), n_clients=2)
    assert len(fleet.hosts) == 4
    # Host 0 *is* the legacy server: identity, port, and NIC names.
    h0 = fleet.hosts[0]
    assert h0.server_mac == SERVER_MAC and h0.server_ip == SERVER_IP
    assert h0.nic.port.name == "server"
    assert h0.nic.name == "dma-nic"
    # Host i > 0: positional MAC/IP, suffixed names (no fault-stream
    # or metric collisions with host 0).
    for index, host in enumerate(fleet.hosts):
        assert host.server_mac == host_mac(index)
        assert host.server_ip == host_ip(index)
        assert host.index == index
        if index:
            assert host.nic.port.name == f"host{index}"
            assert host.nic.name.endswith(f"-h{index}")
    # Everyone ticks on host 0's simulator.
    assert all(m.sim is fleet.sim for m in fleet.machines)
    assert [s.name for s in fleet.switches] == ["tor0", "tor1", "spine"]
    assert fleet.host_for("snap") is fleet.hosts[1]
    with pytest.raises(KeyError):
        fleet.host_for("windows")


def test_deploy_and_send_round_trip_across_racks():
    fleet = build_fleet(MIXED, topo=TopologySpec(n_tors=2), n_clients=2)
    deployments = fleet.deploy(cost_instructions=500)
    assert [d.host.index for d in deployments] == [0, 1, 2, 3]
    rtts = _drive(fleet, n_flows=8, per_flow=3)
    assert len(rtts) == 24
    spread = fleet.balancer.spread()
    assert spread["requests"] == 24 and spread["flows"] == 8
    assert sum(spread["routed"]) == 24


def test_send_requires_a_deployment():
    fleet = build_fleet([HostSpec()])
    with pytest.raises(RuntimeError):
        fleet.send(fleet.clients[0], 40_000, [0])


def test_replica_subset_gets_all_the_traffic():
    fleet = build_fleet(MIXED, topo=TopologySpec(n_tors=2))
    fleet.deploy(replicas=[2])
    rtts = _drive(fleet, n_flows=4, per_flow=2)
    assert len(rtts) == 8
    assert fleet.balancer.routed == [8]
    assert all(d.host.index == 2 for d in fleet.deployments)


def test_same_seed_replays_identically():
    def run(seed):
        fleet = build_fleet(MIXED, topo=TopologySpec(n_tors=2, n_trunks=2),
                            n_clients=2, seed=seed)
        fleet.deploy(cost_instructions=500)
        return _drive(fleet, n_flows=6, per_flow=2)

    assert run(3) == run(3)


def test_ambient_fault_plan_reaches_the_fleet():
    with active(FaultPlan.from_spec("seed=3,loss=0.05,stall=0.02")):
        fleet = build_fleet(MIXED, topo=TopologySpec(n_tors=2))
    assert fleet.plan is not None and fleet.plan.link.lossy
    assert fleet.fault_stats is not None
    fleet.deploy(cost_instructions=500)
    rtts = _drive(fleet, n_flows=8, per_flow=4)
    assert len(rtts) == 32  # retransmission recovers every loss
    injected = fleet.fault_stats.total() + sum(
        m.fault_stats.total() for m in fleet.machines
        if m.fault_stats is not None)
    assert injected > 0  # the plan actually fired somewhere


def test_calm_fleet_has_no_plan():
    fleet = build_fleet([HostSpec()])
    assert fleet.plan is None and fleet.fault_stats is None
