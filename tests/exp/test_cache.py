"""Cache keys, fingerprints, and invalidation rules."""

from pathlib import Path

import repro.experiments.sched_state
from repro.exp.cache import ResultCache, code_fingerprint, module_closure
from repro.exp.pool import JobSpec, execute_job


def _spec(job_id="e7/main", experiment="e7",
          fn="repro.experiments.model_check:run_model_check", seed=None,
          **params):
    return JobSpec.make(job_id, experiment, fn, seed=seed, **params)


def test_module_closure_is_transitive():
    closure = module_closure("repro.experiments.load_sweep")
    assert "repro.experiments.load_sweep" in closure
    assert "repro.experiments.testbed" in closure   # direct import
    assert "repro.sim.engine" in closure            # transitive
    runner_modules = {"repro.exp", "repro.exp.cache", "repro.exp.jobs",
                      "repro.exp.pool"}
    assert not (set(closure) & runner_modules), \
        "runner modules must not invalidate experiment results"


def test_store_then_lookup_roundtrip(tmp_path):
    cache = ResultCache(root=tmp_path)
    spec = _spec()
    assert cache.lookup(spec) is None
    result = execute_job(spec)
    assert result.ok
    cache.store(spec, result)
    hit = cache.lookup(spec)
    assert hit is not None and hit.cached
    assert hit.value == result.value
    assert hit.stdout == result.stdout


def test_key_changes_with_params_and_seed(tmp_path):
    cache = ResultCache(root=tmp_path)
    base = _spec(fn="repro.experiments.report:fmt_ns", value_ns=1.0)
    other_params = _spec(fn="repro.experiments.report:fmt_ns", value_ns=2.0)
    other_seed = _spec(fn="repro.experiments.report:fmt_ns", seed=7,
                       value_ns=1.0)
    keys = {cache.key(base), cache.key(other_params), cache.key(other_seed)}
    assert len(keys) == 3


def test_code_change_invalidates_only_importers(tmp_path):
    cache = ResultCache(root=tmp_path)
    touched = _spec(fn="repro.experiments.sched_state:run_sched_state",
                    experiment="e8", job_id="e8/main")
    untouched = _spec(fn="repro.experiments.model_check:run_model_check")
    key_touched = cache.key(touched)
    key_untouched = cache.key(untouched)

    target = Path(repro.experiments.sched_state.__file__)
    original = target.read_bytes()
    try:
        target.write_bytes(original + b"\n# fingerprint probe\n")
        assert cache.key(touched) != key_touched
        assert cache.key(untouched) == key_untouched
    finally:
        target.write_bytes(original)


def test_key_includes_active_fault_plan(tmp_path):
    from repro.faults.context import active
    from repro.faults.plan import FaultPlan

    cache = ResultCache(root=tmp_path)
    spec = _spec()
    calm_key = cache.key(spec)

    with active(FaultPlan.from_spec("default")):
        default_key = cache.key(spec)
        assert cache.key(spec) == default_key  # stable under one plan
    assert default_key != calm_key

    # Distinct specs key separately; re-entering a spec reproduces it.
    with active(FaultPlan.from_spec("loss=0.01")):
        low_loss_key = cache.key(spec)
    with active(FaultPlan.from_spec("loss=0.02")):
        assert cache.key(spec) != low_loss_key
    with active(FaultPlan.from_spec("loss=0.01")):
        assert cache.key(spec) == low_loss_key

    # An all-zero plan is behaviourally a no-plan run and keys as one.
    with active(FaultPlan()):
        assert cache.key(spec) == calm_key


def test_faulty_results_cached_separately(tmp_path):
    from repro.faults.context import active
    from repro.faults.plan import FaultPlan

    cache = ResultCache(root=tmp_path)
    spec = _spec(fn="repro.experiments.report:fmt_ns", value_ns=1.0)
    calm = execute_job(spec)
    cache.store(spec, calm)
    with active(FaultPlan.from_spec("default")):
        assert cache.lookup(spec) is None  # calm result must not leak in
        cache.store(spec, execute_job(spec))
        assert cache.lookup(spec) is not None
    assert cache.lookup(spec) is not None  # calm entry still intact


def test_fingerprint_stable_within_process():
    assert (code_fingerprint("repro.experiments.model_check")
            == code_fingerprint("repro.experiments.model_check"))


def test_policy_spec_is_part_of_the_key():
    from repro.ctrl import PolicySpec
    from repro.ctrl.context import active

    cache = ResultCache()
    spec = _spec()
    bare_key = cache.key(spec)

    with active(PolicySpec.from_spec("backoff,epoch=4")):
        backoff_key = cache.key(spec)
    with active(PolicySpec.from_spec("tuner")):
        tuner_key = cache.key(spec)
    assert len({bare_key, backoff_key, tuner_key}) == 3

    # Same spec ⇒ same key (replay), different params ⇒ different key.
    with active(PolicySpec.from_spec("backoff,epoch=4")):
        assert cache.key(spec) == backoff_key
    with active(PolicySpec.from_spec("backoff,epoch=8")):
        assert cache.key(spec) != backoff_key

    # An inert spec behaves byte-identically to no spec and keys as one.
    with active(PolicySpec.from_spec("none")):
        assert cache.key(spec) == bare_key


def test_policy_results_cached_separately(tmp_path):
    from repro.ctrl import PolicySpec
    from repro.ctrl.context import active

    cache = ResultCache(root=tmp_path)
    spec = _spec(fn="repro.experiments.report:fmt_ns", value_ns=1.0)
    cache.store(spec, execute_job(spec))
    with active(PolicySpec.from_spec("backoff")):
        assert cache.lookup(spec) is None  # bare result must not leak in
        cache.store(spec, execute_job(spec))
        assert cache.lookup(spec) is not None
    assert cache.lookup(spec) is not None  # bare entry still intact


def test_policy_env_var_reaches_the_key(monkeypatch):
    from repro.ctrl.context import ENV_VAR

    cache = ResultCache()
    spec = _spec()
    bare_key = cache.key(spec)
    monkeypatch.setenv(ENV_VAR, "backoff,epoch=4")
    assert cache.key(spec) != bare_key
    monkeypatch.setenv(ENV_VAR, "none")
    assert cache.key(spec) == bare_key
