"""End-to-end runner behavior: CLI flags, parity, cache reuse."""

import json

from repro.exp.cache import ResultCache
from repro.exp.jobs import EXPERIMENT_SPECS, run_experiments
from repro.experiments.run_all import EXPERIMENTS, main

FAST = ["e7", "e18"]  # sub-second experiments: one monolithic, one sweep


def _tables(text: str) -> str:
    """Output minus the (run-dependent) per-experiment timing lines."""
    return "\n".join(
        line for line in text.splitlines() if "completed in" not in line
    )


def test_registry_covers_all_experiments():
    assert list(EXPERIMENT_SPECS) == [f"e{i}" for i in range(1, 26)]
    assert list(EXPERIMENTS) == list(EXPERIMENT_SPECS)
    for name, spec in EXPERIMENT_SPECS.items():
        jobs = spec.build_jobs(0)
        assert jobs, name
        assert len({job.job_id for job in jobs}) == len(jobs)
        assert all(job.experiment == name for job in jobs)


def test_subset_selection_and_order(capsys):
    assert main(["e18", "e7", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert out.index("E18:") < out.index("E7:")
    assert "E1:" not in out


def test_unknown_experiment_exit_code():
    assert main(["e7", "e99", "--no-cache"]) == 2


def test_flag_value_errors():
    assert main(["--jobs"]) == 2
    assert main(["--jobs", "two"]) == 2
    assert main(["--json"]) == 2


def test_json_includes_timings(tmp_path, capsys):
    path = tmp_path / "out.json"
    assert main(["e7", "--no-cache", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert data["e7"][0]["ok"] is True
    assert set(data["_timings_s"]) == {"e7"}
    assert data["_timings_s"]["e7"] >= 0.0


def test_parallel_results_and_tables_match_serial(capsys):
    serial = run_experiments(FAST, jobs=1, cache=None)
    serial_out = capsys.readouterr().out
    parallel = run_experiments(FAST, jobs=2, cache=None)
    parallel_out = capsys.readouterr().out
    assert serial.values == parallel.values
    assert _tables(serial_out) == _tables(parallel_out)
    assert not serial.failed and not parallel.failed


def test_cache_reuse_and_identical_replay(tmp_path, capsys):
    cache = ResultCache(root=tmp_path)
    cold = run_experiments(FAST, jobs=1, cache=cache)
    cold_out = capsys.readouterr().out
    assert cache.hits == 0 and cache.misses > 0

    warm_cache = ResultCache(root=tmp_path)
    warm = run_experiments(FAST, jobs=1, cache=warm_cache)
    warm_out = capsys.readouterr().out
    assert warm_cache.misses == 0
    assert warm_cache.hits == cache.misses
    assert warm.values == cold.values
    assert _tables(warm_out) == _tables(cold_out)
    assert all(r.cached for r in warm.job_results)


def test_timings_flag_prints_job_table(capsys):
    assert main(["e7", "--no-cache", "--timings"]) == 0
    out = capsys.readouterr().out
    assert "Per-job timings" in out
    assert "e7/main" in out


def test_failure_is_isolated_and_reported(capsys, monkeypatch):
    from repro.exp import jobs as jobs_mod
    from repro.exp.pool import JobSpec

    spec = EXPERIMENT_SPECS["e7"]
    broken = [JobSpec.make("e7/main", "e7",
                           "repro.exp.pool:resolve", fn_path="bad")]
    monkeypatch.setitem(
        jobs_mod.EXPERIMENT_SPECS, "e7",
        jobs_mod.ExperimentSpec(name="e7", title=spec.title,
                                build_jobs=lambda seed: broken),
    )
    outcome = run_experiments(["e7", "e18"], jobs=1, cache=None)
    out = capsys.readouterr().out
    assert outcome.failed
    assert "JOB FAILED: e7/main" in out
    assert "error" in outcome.values["e7"]
    assert "e18" in outcome.values and "error" not in outcome.values["e18"]
