"""Pool mechanics: execution, capture, crash isolation, parallel fan-out."""

import pytest

from repro.exp.pool import (
    JobSpec,
    default_jobs,
    execute_job,
    jsonable,
    resolve,
    run_jobs,
)


def _spec(job_id, fn, capture=True, **params):
    return JobSpec.make(job_id, "t", fn, capture=capture, **params)


def test_resolve_imports_callable():
    fn = resolve("repro.experiments.report:fmt_ns")
    assert fn(1500.0) == "1.50 us"


def test_resolve_rejects_bare_module():
    with pytest.raises(ValueError):
        resolve("repro.experiments.report")


def test_execute_job_returns_value_and_timing():
    result = execute_job(_spec("t/fmt", "repro.experiments.report:fmt_ns",
                               value_ns=1500.0))
    assert result.ok
    assert result.value == "1.50 us"
    assert result.wall_s >= 0.0
    assert not result.cached


def test_execute_job_captures_stdout():
    result = execute_job(_spec(
        "t/table", "repro.experiments.report:print_table",
        headers=["a"], rows=[["x"]], title="T",
    ))
    assert result.ok
    assert "T" in result.stdout and "x" in result.stdout


def test_execute_job_isolates_crashes():
    result = execute_job(_spec("t/boom", "repro.exp.pool:resolve",
                               fn_path="no-colon-here"))
    assert not result.ok
    assert result.value is None
    assert "ValueError" in result.error


def test_run_jobs_preserves_order_and_isolates_failures():
    specs = [
        _spec("t/good1", "repro.experiments.report:fmt_ns", value_ns=10.0),
        _spec("t/bad", "repro.exp.pool:resolve", fn_path="nope"),
        _spec("t/good2", "repro.experiments.report:fmt_ns", value_ns=2e6),
    ]
    results = run_jobs(specs, jobs=2)
    assert list(results) == ["t/good1", "t/bad", "t/good2"]
    assert results["t/good1"].value == "10 ns"
    assert not results["t/bad"].ok
    assert results["t/good2"].value == "2.00 ms"


def test_run_jobs_parallel_matches_serial():
    specs = [
        _spec(f"t/{i}", "repro.experiments.report:fmt_ns",
              value_ns=float(10 ** i))
        for i in range(6)
    ]
    serial = run_jobs(specs, jobs=1)
    parallel = run_jobs(specs, jobs=3)
    assert {k: r.value for k, r in serial.items()} == \
        {k: r.value for k, r in parallel.items()}


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert default_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "junk")
    assert default_jobs() == 1


def test_jsonable_roundtrips_dataclasses():
    from repro.experiments.load_sweep import LoadPoint

    point = LoadPoint(stack="linux", rate_per_sec=5e4, completed=3,
                      p50_ns=1.5, p99_ns=2.5)
    encoded = jsonable(point)
    assert LoadPoint(**encoded) == point
