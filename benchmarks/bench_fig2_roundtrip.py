"""E1 — regenerate Figure 2 (64 B message round-trip latencies)."""

from repro.experiments.fig2_roundtrip import run_fig2


def test_fig2_roundtrip(once):
    results = once(run_fig2)
    by_label = {r.label: r.round_trip_ns for r in results}
    eci = by_label["Enzian / ECI (coherent)"]
    pcie_enzian = by_label["Enzian / PCIe Gen3 DMA"]
    pcie_modern = by_label["Modern server / PCIe Gen5 DMA"]
    cxl = by_label["Modern server / CXL 3.0 (coherent, projected)"]

    # The paper's shape: coherent interaction is dramatically faster
    # than DMA on the same machine (Enzian: several-fold), and the ECI
    # round trip lands in the sub-microsecond regime of [21].
    assert eci < pcie_enzian / 2.5
    assert eci < 1500
    assert cxl < pcie_modern / 3
    # Even against a much newer PCIe generation, old-ECI competes.
    assert eci < pcie_modern * 1.5
