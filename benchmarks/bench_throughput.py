"""E14 — peak per-core throughput and Lauberhorn end-point scaling."""

from repro.experiments.throughput import run_lauberhorn_scaling, run_throughput


def test_peak_throughput(once):
    results = once(run_throughput, concurrency=32, n_requests=250)
    by_stack = {r.config: r for r in results}
    linux = by_stack["linux"].requests_per_sec_per_core
    bypass = by_stack["bypass"].requests_per_sec_per_core
    lauberhorn = by_stack["lauberhorn"].requests_per_sec_per_core

    # Everyone finished the workload.
    assert all(r.completed == 250 for r in results)
    # Throughput ordering matches the per-request cost ordering.
    assert lauberhorn > bypass > linux
    # Absolute regimes: the software stacks land in the 10^5/s band,
    # Lauberhorn in the ~10^6/s band a zero-software path implies.
    assert linux > 50e3
    assert lauberhorn > 500e3


def test_lauberhorn_scaling(once):
    results = once(run_lauberhorn_scaling, core_counts=(1, 2, 4))
    rates = [r.requests_per_sec for r in results]
    # More armed end-points -> more throughput, near-linearly (the NIC
    # pipeline and wire are nowhere near saturation).
    assert rates[0] < rates[1] < rates[2]
    assert rates[2] > rates[0] * 2.5
