"""E9 — nested RPCs with continuation end-points (Section 6)."""

from repro.experiments.nested_rpc import run_nested_rpc


def test_nested_rpc(once):
    results = once(run_nested_rpc, n_requests=10)
    by_stack = {r.stack: r for r in results}
    lauberhorn = by_stack["lauberhorn"]
    linux = by_stack["linux"]
    # "significant performance benefits": several-fold over sockets.
    assert lauberhorn.p50_rtt_ns < linux.p50_rtt_ns / 2.5
    # The whole nested call stays in the ~10us regime.
    assert lauberhorn.p50_rtt_ns < 15_000
