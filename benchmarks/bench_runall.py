"""Wall-clock benchmarks for the parallel experiment runner.

Four timed configurations of the same experiment selection:

* **serial**   — ``--jobs 1``, cache disabled (the historical runner);
* **parallel** — ``--jobs N``, cache disabled (process-pool fan-out);
* **cold**     — ``--jobs N`` into an empty ``.repro-cache`` root;
* **warm**     — the same run again, everything served from cache.

Usage::

    PYTHONPATH=src python benchmarks/bench_runall.py                 # full
    PYTHONPATH=src python benchmarks/bench_runall.py --quick         # smoke
    PYTHONPATH=src python benchmarks/bench_runall.py --out BENCH_runall.json

The JSON report records host core counts alongside the timings: the
pool cannot beat the serial runner on a single-core container, so the
≥3x parallel target is only meaningful where ``cpus_available >=
jobs`` (the cache speedup is core-count independent).
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import tempfile
import time
from contextlib import redirect_stdout

from repro.exp.cache import ResultCache
from repro.exp.jobs import EXPERIMENT_SPECS, run_experiments

QUICK_SELECTION = ["e1", "e8", "e10"]


def _timed_run(selected, jobs, cache) -> float:
    sink = io.StringIO()
    started = time.perf_counter()
    with redirect_stdout(sink):
        outcome = run_experiments(selected, jobs=jobs, cache=cache)
    elapsed = time.perf_counter() - started
    if outcome.failed:
        raise RuntimeError(f"benchmark run failed (jobs={jobs})")
    return elapsed


def bench(selected, jobs: int) -> dict:
    try:
        cpus_available = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus_available = os.cpu_count() or 1

    print(f"serial:   --jobs 1, no cache ({len(selected)} experiments)...")
    serial_s = _timed_run(selected, jobs=1, cache=None)
    print(f"          {serial_s:.2f} s")
    print(f"parallel: --jobs {jobs}, no cache...")
    parallel_s = _timed_run(selected, jobs=jobs, cache=None)
    print(f"          {parallel_s:.2f} s")

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        print(f"cold:     --jobs {jobs}, empty cache...")
        cold_s = _timed_run(selected, jobs=jobs, cache=ResultCache(root=root))
        print(f"          {cold_s:.2f} s")
        print(f"warm:     --jobs {jobs}, all cached...")
        warm_cache = ResultCache(root=root)
        warm_s = _timed_run(selected, jobs=jobs, cache=warm_cache)
        print(f"          {warm_s:.2f} s "
              f"({warm_cache.hits} hits, {warm_cache.misses} misses)")

    return {
        "benchmark": "run_all",
        "selected": list(selected),
        "jobs": jobs,
        "host": {
            "cpus_total": os.cpu_count(),
            "cpus_available": cpus_available,
            "platform": sys.platform,
        },
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cache_cold_s": round(cold_s, 3),
        "cache_warm_s": round(warm_s, 3),
        "warm_speedup": round(cold_s / warm_s, 2),
        "warm_hits": warm_cache.hits,
        "note": (
            "parallel_speedup is bounded by cpus_available; the >=3x "
            "target for --jobs 4 assumes a host with >=4 usable cores"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel runs")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI smoke: only {' '.join(QUICK_SELECTION)}")
    parser.add_argument("--out", help="write the JSON report here")
    args = parser.parse_args(argv)

    selected = QUICK_SELECTION if args.quick else list(EXPERIMENT_SPECS)
    report = bench(selected, jobs=max(2, args.jobs))
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
