"""E16 — Section 3's trust argument, quantified: the IOMMU tax."""

from repro.experiments.iommu_tax import run_iommu_tax


def test_iommu_tax(once):
    results = once(run_iommu_tax)
    by_config = {r.config: r for r in results}
    trusted = by_config["trusted NIC (no IOMMU)"]
    resident = by_config["IOMMU, IOTLB-resident pool (16 pages)"]
    thrash = by_config["IOMMU, thrashing ring (1024 pages)"]
    strict = by_config["IOMMU, thrashing + strict unmap"]

    # Monotone cost ordering across the regimes.
    assert (trusted.rtt_ns < resident.rtt_ns < thrash.rtt_ns
            < strict.rtt_ns)
    # A resident working set keeps the tax small (<10%); thrashing a
    # real-sized ring costs 15%+ per small DMA; strict mode more.
    assert resident.rtt_ns < trusted.rtt_ns * 1.10
    assert thrash.rtt_ns > trusted.rtt_ns * 1.15
    assert strict.rtt_ns > trusted.rtt_ns * 1.25
    # Hit rates explain it.
    assert resident.iotlb_hit_rate > 0.95
    assert thrash.iotlb_hit_rate < 0.80
