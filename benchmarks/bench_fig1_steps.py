"""E2 — regenerate the Section 2 receive-path step breakdown."""

from repro.experiments.fig1_steps import run_fig1_steps


def test_fig1_step_breakdown(once):
    rows, measured = once(run_fig1_steps, n_requests=20)
    assert len(rows) == 12  # the paper's twelve steps

    linux = measured["linux"].busy_ns_per_request
    bypass = measured["bypass"].busy_ns_per_request
    lauberhorn = measured["lauberhorn"].busy_ns_per_request

    # Ordering: Lauberhorn << bypass << linux; the common case leaves
    # "essentially zero" software on the host.
    assert lauberhorn < bypass < linux
    assert lauberhorn < 500            # ns of software per RPC
    assert lauberhorn < bypass / 3
    assert lauberhorn < linux / 10
