"""E5 — the line-vs-DMA delivery crossover (Section 6: ~4 KiB)."""

from repro.experiments.crossover import run_crossover


def test_crossover(once):
    points, crossover = once(run_crossover)
    by_size = {p.payload_bytes: p for p in points}

    # Small messages: the cache-line path wins (that's the fast path).
    assert not by_size[64].dma_wins
    assert not by_size[512].dma_wins
    # Large messages: DMA wins (throughput dominates).
    assert by_size[16384].dma_wins
    # The crossover falls in the paper's regime (~4 KiB on Enzian;
    # we accept the same order of magnitude: 1-8 KiB).
    assert crossover is not None
    assert 1024 <= crossover <= 8192
    # Both curves are monotone in size.
    sizes = sorted(by_size)
    line_rtts = [by_size[s].line_rtt_ns for s in sizes]
    dma_rtts = [by_size[s].dma_rtt_ns for s in sizes]
    assert line_rtts == sorted(line_rtts)
    assert dma_rtts == sorted(dma_rtts)
