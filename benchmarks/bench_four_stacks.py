"""The Section 2 design space, quantified: linux vs snap vs bypass vs
lauberhorn on the same static workload."""

from repro.experiments.four_stacks import run_four_stacks


def test_four_stacks(once):
    results = once(run_four_stacks, n_requests=20)
    by_stack = {r.stack: r for r in results}
    lauberhorn = by_stack["lauberhorn"]
    bypass = by_stack["bypass"]
    snap = by_stack["snap"]
    linux = by_stack["linux"]

    # Latency ordering across the whole design space.
    assert lauberhorn.p50_rtt_ns < bypass.p50_rtt_ns
    assert bypass.p50_rtt_ns < snap.p50_rtt_ns  # the cross-core hop
    assert snap.p50_rtt_ns < linux.p50_rtt_ns
    # Host software per request: Lauberhorn is an order of magnitude
    # below every software stack.
    assert lauberhorn.busy_ns_per_request * 3 < min(
        bypass.busy_ns_per_request,
        snap.busy_ns_per_request,
        linux.busy_ns_per_request,
    )
