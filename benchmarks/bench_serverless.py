"""E17 — serverless consolidation under a Zipf+bursty trace."""

from repro.experiments.serverless import run_serverless


def test_serverless_consolidation(once):
    results = once(run_serverless, n_functions=24, n_serving=4)
    by_stack = {r.stack: r for r in results}
    linux = by_stack["linux"]
    lauberhorn = by_stack["lauberhorn"]

    # Same trace completed by both.
    assert lauberhorn.invocations == linux.invocations > 200
    # Lauberhorn wins median, tail, and CPU per invocation.
    assert lauberhorn.p50_ns < linux.p50_ns / 1.5
    assert lauberhorn.p99_ns < linux.p99_ns / 1.5
    assert lauberhorn.busy_ns_per_invocation < linux.busy_ns_per_invocation / 1.5
    # The Zipf head rides the fast path: a meaningful share of
    # invocations avoid the kernel entirely, despite 24 functions
    # sharing 4 cores.
    assert lauberhorn.kernel_dispatch_fraction < 0.7
