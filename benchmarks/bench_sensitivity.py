"""E18 — sensitivity of the paper's bet to coherent-link latency."""

from repro.experiments.sensitivity import run_sensitivity


def test_sensitivity(once):
    points, break_even = once(run_sensitivity)
    by_latency = {p.one_way_ns: p for p in points}

    # At realistic latencies (CXL-class through ECI-class and beyond),
    # Lauberhorn wins.
    assert by_latency[125].lauberhorn_wins
    assert by_latency[350].lauberhorn_wins   # "even the comparatively
    assert by_latency[700].lauberhorn_wins   #  slow ECI"
    # Only an implausibly slow coherent link loses to PCIe bypass.
    assert break_even is not None
    assert break_even >= 1000
    # The RTT degrades monotonically with link latency.
    rtts = [p.lauberhorn_rtt_ns for p in points]
    assert rtts == sorted(rtts)
