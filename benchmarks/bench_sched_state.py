"""E8 — the cost of keeping the NIC's scheduling state fresh."""

from repro.experiments.sched_state import run_sched_state


def test_sched_state_push(once):
    result = once(run_sched_state)
    # "negligible overhead": under 2% of a context switch.
    assert result.push_overhead_pct < 2.0
    assert result.push_overhead_ns < 50
    # The coherent posted store is competitive with a posted MMIO write
    # and far cheaper than a synchronous MMIO read or a descriptor DMA.
    coherent = result.alternatives["coherent posted line store (Lauberhorn)"]
    assert coherent < result.alternatives["PCIe MMIO read (synchronous)"] / 10
    assert coherent < result.alternatives["descriptor DMA enqueue (driver)"]
