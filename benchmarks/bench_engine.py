"""Microbenchmarks for the discrete-event engine hot path.

The engine in :mod:`repro.sim.engine` is the substrate every experiment
runs on, so its events/sec throughput bounds how much simulated load,
how many seeds, and how many scenarios the reproduction can explore.
This script measures the three patterns that dominate real experiment
profiles:

* **timer_churn** — thousands of interleaved processes each sleeping on
  fresh :class:`Timeout` objects (the NIC/OS pipeline-stage pattern);
  exercises timer-wheel insert/drain throughput.
* **zero_delay_chain** — long chains of ``yield sim.timeout(0)`` (the
  wake-up-chain pattern used for same-instant hand-offs); exercises the
  same-timestamp fast path.
* **anyof_fanin** — repeated ``AnyOf`` over a fan-in of timers (the
  quantum/poll pattern in the kernel-bypass and SNAP models).
* **cancel_churn** — retry loops that arm a guard timer and cancel it
  (the Tryagain pattern); only runs on engines with ``Timeout.cancel``.
* **wheel_stress** — delays hopping across wheel levels (microseconds
  to hundreds of thousands of ticks), forcing upper-level cascades and
  bucket drains rather than the L0 steady state.
* **frame_churn** — build + parse a byte-exact UDP frame per event (the
  data-plane allocation pattern); exercises the ``Frame`` slots/lazy-
  meta diet alongside the engine.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine.py --guard BENCH_engine.json
    PYTHONPATH=src python benchmarks/bench_engine.py --guard BENCH_engine.json --update

Each benchmark reports events/sec (scheduled engine events divided by
wall-clock time, best of ``--repeat`` runs).  ``--out`` writes a JSON
report so successive PRs can track the trajectory; ``--guard BASELINE``
compares the current run against a stored report and fails (exit 1) if
any benchmark regresses more than ``--tolerance`` (default 5%) — the
regression fence for hot-path changes like the observability hooks.  A
benchmark that ran at baseline size but has no baseline entry is a
guard failure too, so new benchmarks cannot silently dodge the fence;
``--guard BASELINE --update`` rewrites the baseline from this run (in
canonical key order) instead of judging it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.net.headers import MacAddress
from repro.net.packet import build_udp_frame, ip_address, parse_udp_frame
from repro.sim import AnyOf, Simulator
from repro.sim.engine import Timeout

try:  # profiling hooks shipped with the hot-path overhaul
    from repro.sim.profile import attach_profile
except ImportError:  # pragma: no cover - pre-overhaul engine
    attach_profile = None

HAS_CANCEL = hasattr(Timeout, "cancel")


# -- workloads ---------------------------------------------------------------


def _run_timer_churn(n_procs: int, n_timers: int) -> tuple[Simulator, int]:
    """Interleaved timers with co-prime delays: pure heap churn."""
    sim = Simulator()

    def sleeper(delay):
        for _ in range(n_timers):
            yield sim.timeout(delay)

    # Co-prime-ish delays keep timestamps mostly distinct, so nearly
    # every event is a genuine heap reorder rather than a same-time pop.
    for i in range(n_procs):
        sim.process(sleeper(7 + (i * 13) % 97))
    sim.run()
    return sim, n_procs * n_timers


def _run_zero_delay_chain(n_procs: int, chain_len: int) -> tuple[Simulator, int]:
    """Same-instant wake-up chains: the urgent/zero-delay fast path."""
    sim = Simulator()

    def chain():
        for _ in range(chain_len):
            yield sim.timeout(0)

    for _ in range(n_procs):
        sim.process(chain())
    sim.run()
    return sim, n_procs * chain_len


def _run_anyof_fanin(n_rounds: int, fan_in: int) -> tuple[Simulator, int]:
    """Repeated AnyOf over a timer fan-in (quantum/poll pattern)."""
    sim = Simulator()

    def poller():
        for round_no in range(n_rounds):
            timers = [
                sim.timeout(10 + ((round_no + k) * 7) % 31, value=k)
                for k in range(fan_in)
            ]
            yield AnyOf(sim, timers)

    sim.process(poller())
    sim.run()
    return sim, n_rounds * fan_in


def _run_cancel_churn(n_procs: int, n_rounds: int) -> tuple[Simulator, int]:
    """Arm a long guard timer, win the race, cancel it (Tryagain)."""
    sim = Simulator()

    def retrier():
        for _ in range(n_rounds):
            guard = sim.timeout(1_000_000)  # would fire far in the future
            yield sim.timeout(5)
            guard.cancel()

    for _ in range(n_procs):
        sim.process(retrier())
    sim.run()
    return sim, n_procs * n_rounds * 2


def _run_wheel_stress(n_procs: int, n_timers: int) -> tuple[Simulator, int]:
    """Delays hopping across wheel levels: cascade/drain stress."""
    sim = Simulator()

    def sleeper(delay):
        for _ in range(n_timers):
            yield sim.timeout(delay)
            # A multiplicative hop keeps successive delays spread over
            # ~five orders of magnitude, so inserts land on every wheel
            # level and each long sleep cascades back down to L0.
            delay = (delay * 5) % 199_999 + 1

    for i in range(n_procs):
        sim.process(sleeper(3 + i))
    sim.run()
    return sim, n_procs * n_timers


def _run_frame_churn(n_procs: int, n_frames: int) -> tuple[Simulator, int]:
    """One byte-exact UDP frame built and parsed per event."""
    sim = Simulator()
    src_mac, dst_mac = MacAddress(0x0A0B0C0D0E01), MacAddress(0x0A0B0C0D0E02)
    src_ip, dst_ip = ip_address("10.0.0.1"), ip_address("10.0.0.2")
    payload = bytes(64)

    def pump(delay):
        for _ in range(n_frames):
            frame = build_udp_frame(
                src_mac, dst_mac, src_ip, dst_ip, 9000, 9001, payload,
                born_ns=sim.now,
            )
            parse_udp_frame(frame, verify=False)
            yield sim.timeout(delay)

    for i in range(n_procs):
        sim.process(pump(5 + (i * 11) % 53))
    sim.run()
    return sim, n_procs * n_frames


BENCHMARKS = {
    "timer_churn": {
        "runner": _run_timer_churn,
        "full": (2_000, 200),
        "quick": (200, 50),
    },
    "zero_delay_chain": {
        "runner": _run_zero_delay_chain,
        "full": (500, 800),
        "quick": (50, 100),
    },
    "anyof_fanin": {
        "runner": _run_anyof_fanin,
        "full": (4_000, 16),
        "quick": (200, 8),
    },
    "cancel_churn": {
        "runner": _run_cancel_churn,
        "full": (1_000, 200),
        "quick": (100, 40),
        "requires_cancel": True,
    },
    "wheel_stress": {
        "runner": _run_wheel_stress,
        "full": (1_000, 100),
        "quick": (100, 20),
    },
    "frame_churn": {
        "runner": _run_frame_churn,
        "full": (500, 200),
        "quick": (50, 40),
    },
}


# -- harness -----------------------------------------------------------------


def run_benchmark(name: str, quick: bool = False, repeat: int = 3) -> dict:
    """Run one benchmark; returns a JSON-ready result dict."""
    spec = BENCHMARKS[name]
    args = spec["quick" if quick else "full"]
    best_elapsed = float("inf")
    events = 0
    profile_report = None
    for _ in range(repeat):
        started = time.perf_counter()
        sim, events = spec["runner"](*args)
        elapsed = time.perf_counter() - started
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            if attach_profile is not None:
                # Counters live on the simulator; a post-run attach sees
                # the whole run, including heap high-water marks.
                profile_report = attach_profile(sim).report()
    result = {
        "events": events,
        "seconds": round(best_elapsed, 6),
        "events_per_sec": round(events / best_elapsed),
        "args": list(args),
    }
    if profile_report is not None:
        result["profile"] = profile_report
    return result


def check_guard(report: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regressions of ``report`` vs ``baseline`` beyond ``tolerance``.

    Benchmarks present in both and run at matching sizes are compared
    (a --quick run against a full baseline would be noise).  A
    benchmark in the current report with *no* baseline entry at all is
    a failure — new benchmarks must be recorded (``--update``) before
    the fence can vouch for them.  Returns human-readable failure
    lines; empty means within fence.
    """
    failures = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name in report["benchmarks"]:
        if name not in base_benchmarks:
            failures.append(
                f"{name}: no baseline entry — rerun with --update (or "
                f"`make bench-engine`) to record one"
            )
    for name, base in base_benchmarks.items():
        current = report["benchmarks"].get(name)
        if current is None or current["args"] != base["args"]:
            continue
        floor = base["events_per_sec"] * (1.0 - tolerance)
        if current["events_per_sec"] < floor:
            drop = 100.0 * (1 - current["events_per_sec"]
                            / base["events_per_sec"])
            failures.append(
                f"{name}: {current['events_per_sec']} ev/s is {drop:.1f}% "
                f"below baseline {base['events_per_sec']} "
                f"(allowed {100 * tolerance:.0f}%)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N runs (default 3)")
    parser.add_argument("--out", default=None,
                        help="write a JSON report to this path")
    parser.add_argument("--guard", default=None, metavar="BASELINE",
                        help="compare against a stored JSON report; exit 1 "
                             "if any benchmark regresses past --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed fractional regression for --guard "
                             "(default 0.05)")
    parser.add_argument("--update", action="store_true",
                        help="with --guard: rewrite the baseline from this "
                             "run (canonical key order) instead of judging "
                             "it; benchmarks not run this time keep their "
                             "old entries")
    parser.add_argument("names", nargs="*", choices=[[], *BENCHMARKS],
                        help="subset of benchmarks to run")
    opts = parser.parse_args(argv)
    if opts.repeat < 1:
        parser.error("--repeat must be >= 1")
    if not 0 <= opts.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    if opts.update and not opts.guard:
        parser.error("--update requires --guard BASELINE")

    selected = opts.names or list(BENCHMARKS)
    report = {
        "engine": "repro.sim.engine",
        "mode": "quick" if opts.quick else "full",
        "has_cancel": HAS_CANCEL,
        "benchmarks": {},
    }
    print(f"{'benchmark':<20} {'events':>10} {'seconds':>9} {'events/sec':>12}")
    for name in selected:
        if BENCHMARKS[name].get("requires_cancel") and not HAS_CANCEL:
            print(f"{name:<20} {'skipped (no Timeout.cancel)':>33}")
            continue
        result = run_benchmark(name, quick=opts.quick, repeat=opts.repeat)
        report["benchmarks"][name] = result
        print(f"{name:<20} {result['events']:>10} {result['seconds']:>9.4f} "
              f"{result['events_per_sec']:>12}")
    if opts.out:
        with open(opts.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {opts.out}")
    if opts.guard:
        if opts.update:
            try:
                with open(opts.guard) as handle:
                    baseline = json.load(handle)
            except FileNotFoundError:
                baseline = {}
            merged = dict(baseline)
            merged.update({k: v for k, v in report.items()
                           if k != "benchmarks"})
            merged_benchmarks = dict(baseline.get("benchmarks", {}))
            merged_benchmarks.update(report["benchmarks"])
            merged["benchmarks"] = merged_benchmarks
            with open(opts.guard, "w") as handle:
                json.dump(merged, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nbaseline {opts.guard} updated "
                  f"({len(report['benchmarks'])} benchmark(s) rewritten)")
            return 0
        with open(opts.guard) as handle:
            baseline = json.load(handle)
        failures = check_guard(report, baseline, opts.tolerance)
        if failures:
            print(f"\nBENCH GUARD FAILED vs {opts.guard}:")
            for line in failures:
                print(f"  - {line}")
            return 1
        print(f"\nbench guard: within {100 * opts.tolerance:.0f}% "
              f"of {opts.guard}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
