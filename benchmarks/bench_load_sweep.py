"""E15 — latency vs offered load (the hockey-stick curves)."""

from repro.experiments.load_sweep import run_load_sweep


def test_load_sweep(once):
    points = once(run_load_sweep, rates=(50e3, 300e3, 600e3), n_requests=200)

    def get(stack, rate):
        return next(p for p in points
                    if p.stack == stack and p.rate_per_sec == rate)

    # At low load the latency ordering is the per-request cost ordering.
    assert (get("lauberhorn", 50e3).p50_ns
            < get("bypass", 50e3).p50_ns
            < get("linux", 50e3).p50_ns)
    # Linux saturates by 600k/s (its capacity is ~270k/s): the queue
    # blows its latency up by an order of magnitude.
    assert get("linux", 600e3).p50_ns > get("linux", 50e3).p50_ns * 5
    # Bypass and Lauberhorn still ride flat at 600k/s.
    assert get("bypass", 600e3).p50_ns < get("bypass", 50e3).p50_ns * 1.5
    assert get("lauberhorn", 600e3).p50_ns < get("lauberhorn", 50e3).p50_ns * 1.5
    # Everyone completed everything (no losses at these rates).
    assert all(p.completed == 200 for p in points)
