"""Shared benchmark configuration.

Each benchmark runs one experiment end-to-end (rounds=1): the metric of
interest is the experiment's *output table* (printed to stdout, matching
the paper's figures), with pytest-benchmark recording the harness
wall-clock as a by-product.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
