"""E4 — static vs dynamic workloads across the three stacks."""

from repro.experiments.dynamic_mix import run_dynamic_mix


def test_dynamic_mix(once):
    results = once(
        run_dynamic_mix,
        service_counts=(2, 8, 32),
        n_requests=200,
    )

    def get(stack, n):
        return next(r for r in results if r.stack == stack and r.n_services == n)

    for n_services in (2, 8, 32):
        linux = get("linux", n_services)
        bypass = get("bypass", n_services)
        lauberhorn = get("lauberhorn", n_services)
        # Everyone finishes the workload.
        assert lauberhorn.completed == bypass.completed == linux.completed
        # Median latency: Lauberhorn beats bypass beats Linux, even as
        # services outnumber cores (the paper's headline).
        assert lauberhorn.p50_ns < bypass.p50_ns < linux.p50_ns
        # CPU efficiency: the spinning bypass cores burn vastly more
        # cycles per request; Lauberhorn uses the least.
        assert lauberhorn.busy_ns_per_request < linux.busy_ns_per_request
        assert lauberhorn.busy_ns_per_request < bypass.busy_ns_per_request / 10

    # Bypass's poll-sweep cost grows with the number of queues it must
    # multiplex; Lauberhorn's per-request cost stays roughly flat.
    assert get("bypass", 32).busy_ns_per_request > get("bypass", 2).busy_ns_per_request
    assert (
        get("lauberhorn", 32).busy_ns_per_request
        < get("lauberhorn", 2).busy_ns_per_request * 3
    )
