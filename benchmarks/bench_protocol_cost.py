"""E10 — steady-state coherence traffic per RPC (Figure 4)."""

from repro.experiments.protocol_cost import run_protocol_cost


def test_protocol_cost(once):
    cost = once(run_protocol_cost, n_requests=32)
    # Figure 4's steady state: the single CONTROL load both completes
    # request N-1 and waits for request N, and the response store is a
    # silent local upgrade.
    assert cost.fills_per_request == 1.0
    assert cost.recalls_per_request == 1.0
    assert cost.upgrades_per_request == 0.0
    # One line in (request), one line out (dirty response recall).
    assert cost.line_transfers_per_request == 2.0
