"""E7 — model-check the Figure 4 protocol (Section 6's TLA+ claim)."""

from repro.experiments.model_check import run_model_check


def test_model_check(once):
    rows = once(run_model_check)
    by_config = {r.config: r for r in rows}

    # The correct protocol verifies at every bound, with preemption.
    for label in ("correct n=2", "correct n=3", "correct n=4",
                  "correct n=3 + preemption"):
        assert by_config[label].ok, label
        # "relatively easily": tiny state spaces.
        assert by_config[label].states < 10_000

    # The ownership protocol (end-points are single-consumer) verifies.
    assert by_config["ownership: correct"].ok

    # The verification has teeth: seeded bugs are caught — including
    # the overwrite-parked-fill defect an earlier revision actually had.
    assert not by_config["bug: skip response store"].ok
    assert (by_config["bug: skip response store"].violated
            == "NoStaleResponseExtraction")
    assert not by_config["bug: tryagain keeps parked"].ok
    assert not by_config["ownership bug: overwrite parked fill"].ok
    assert (by_config["ownership bug: overwrite parked fill"].violated
            == "NoOrphanedLoad")
