"""Ablation benches for the design choices DESIGN.md §6 calls out."""

from repro.experiments.ablation import run_crypto_ablation, run_deserialize_ablation
from repro.experiments.telemetry_breakdown import run_telemetry_breakdown


def test_deserialize_offload(once):
    rows = once(run_deserialize_ablation, payload_bytes=512)
    offloaded = next(r for r in rows if r.config == "lauberhorn")
    software = next(r for r in rows if "sw-unmarshal" in r.config)
    # The offload removes the software unmarshal from the host path.
    assert offloaded.busy_ns_per_request < software.busy_ns_per_request / 1.5
    assert offloaded.p50_rtt_ns < software.p50_rtt_ns


def test_crypto_placement(once):
    rows = once(run_crypto_ablation, payload_bytes=1024)
    by_config = {r.config: r for r in rows}
    lb_plain = by_config["lauberhorn"]
    lb_enc = by_config["lauberhorn+encrypted"]
    lx_plain = by_config["linux"]
    lx_enc = by_config["linux+encrypted"]

    # NIC inline crypto: small latency add, zero host-cycle add.
    assert lb_enc.p50_rtt_ns - lb_plain.p50_rtt_ns < 500
    assert abs(lb_enc.busy_ns_per_request - lb_plain.busy_ns_per_request) < 50
    # Host crypto: pays both latency and cycles.
    assert lx_enc.busy_ns_per_request > lx_plain.busy_ns_per_request + 500
    assert lx_enc.p50_rtt_ns > lx_plain.p50_rtt_ns + 500


def test_telemetry_breakdown(once):
    telemetry = once(run_telemetry_breakdown, n_requests=20)
    assert len(telemetry.completed) == 20
    assert telemetry.kernel_dispatch_fraction() == 0.5
    # The cold (kernel-dispatched) service shows a larger service stage
    # than the hot one — exactly the signal an operator needs.
    hot = telemetry.breakdown(1)["service"].p50
    cold = telemetry.breakdown(2)["service"].p50
    assert cold > hot * 1.5
