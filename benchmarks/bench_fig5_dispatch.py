"""E3 — regenerate the Figure 5 dispatch-loop comparison."""

from repro.experiments.fig5_dispatch import run_fig5_dispatch


def test_fig5_dispatch(once):
    results = once(run_fig5_dispatch, n_requests=20)
    by_config = {r.config: r for r in results}
    linux = by_config["linux"]
    hot = by_config["lauberhorn-hot"]
    kernel = by_config["lauberhorn-kernel"]
    promote = by_config["lauberhorn-promote"]

    # Hot path beats the kernel-dispatch path beats Linux.
    assert hot.p50_rtt_ns < kernel.p50_rtt_ns < linux.p50_rtt_ns
    # Promotion converges to the hot path after the first request.
    assert promote.p50_rtt_ns <= hot.p50_rtt_ns * 1.2
    assert promote.kernel_dispatches <= 2
    assert promote.fast_dispatches >= 15
    # Software cost: hot path is near-zero; kernel dispatch pays the
    # context switch but still undercuts Linux.
    assert hot.busy_ns_per_request < 500
    assert kernel.busy_ns_per_request < linux.busy_ns_per_request
