"""E6 — Tryagain: wait-mechanism energy + timeout ablation."""

from repro.experiments.tryagain import run_timeout_ablation, run_tryagain_energy
from repro.sim import MS


def test_wait_mechanism_energy(once):
    rows = once(run_tryagain_energy, gap_ns=5 * MS, n_requests=5)
    by_stack = {r.stack: r for r in rows}
    linux = by_stack["linux (interrupt)"]
    bypass = by_stack["bypass (spin)"]
    lauberhorn = by_stack["lauberhorn (blocked load)"]

    # Spinning burns the core the whole time; the blocked load does not.
    assert bypass.busy_ns > 10 * lauberhorn.busy_ns
    assert lauberhorn.busy_ns < 10_000  # <10us of instructions total
    # The blocked load shows up as stall (clock-gated), not busy.
    assert lauberhorn.stall_ns > 20 * MS
    # Energy: blocked-load waiting is far cheaper than spinning.  (The
    # halted Linux core is cheapest while idle — it pays instead in
    # per-request latency/CPU, and a stalled Lauberhorn core is a
    # reclaimable scheduling point, per Section 5.1.)
    assert lauberhorn.energy_mj < bypass.energy_mj / 2
    assert linux.energy_mj < lauberhorn.energy_mj


def test_timeout_ablation(once):
    rows = once(run_timeout_ablation)
    by_timeout = {r.timeout_ns: r for r in rows}
    # Keep-alive traffic decays ~1/timeout.
    assert by_timeout[1 * MS].tryagains_per_sec > 900
    assert by_timeout[15 * MS].tryagains_per_sec < 70
    assert by_timeout[100 * MS].tryagains_per_sec < 11
    # At the paper's 15 ms setting, fabric traffic is a rounding error
    # (tens of transactions per second vs millions for spin-polling).
    assert by_timeout[15 * MS].fabric_transactions_per_sec < 100
