PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench-engine run-all

test:
	$(PYTHON) -m pytest -q

test-fast:
	$(PYTHON) -m pytest -q -x

# Engine microbenchmarks; writes BENCH_engine.json at the repo root so
# successive PRs can track the events/sec trajectory.
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json

# CI-sized smoke run of the same benchmarks (seconds, not minutes).
bench-engine-quick:
	$(PYTHON) benchmarks/bench_engine.py --quick

run-all:
	$(PYTHON) -m repro.experiments.run_all
