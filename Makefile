# Targets:
#   test               tier-1 suite (ROADMAP.md): pytest -x -q, stop on
#                      first failure — the gate every PR must keep green
#   test-fast          alias of the tier-1 command (kept for muscle memory)
#   test-props         property tests only (replay, null-plan, fault matrix)
#   test-faults        fault-injection + invariant-layer tests only
#   regen-golden       re-record tests/golden/*.json + hashes.json (then
#                      review the diff!)
#   coverage           src/repro line coverage (stdlib tracer) -> coverage.json
#   bench-engine       sim-engine microbenchmarks -> BENCH_engine.json
#   bench-engine-quick CI-sized engine smoke (seconds, not minutes)
#   bench-frames       frame-churn benchmark alone: Frame build/parse
#                      allocation diet (slots + lazy meta)
#   bench-guard        engine benchmarks vs the recorded BENCH_engine.json
#                      baseline; fails on a >5% events/sec regression
#                      (run with --update via bench-engine to re-record)
#   bench-runall       serial-vs-parallel + cold-vs-warm-cache wall clock
#                      for the experiment runner -> BENCH_runall.json
#   run-all            all 24 experiments, serial (bit-for-bit the
#                      historical output)
#   run-all-par        the same artifact fanned out over REPRO_JOBS
#                      workers (default 4); tables are identical
#   run-all-faults     the artifact under the default fault plan (cached
#                      under its own keys — the plan is in the cache key)
#   run-e20            the observability experiment alone: per-stage
#                      attribution + overhead + results/e20_trace.json
#   run-e21            timelines/flight/tail forensics alone ->
#                      results/e21_timeline.json
#   run-e22            control-plane policy tournaments + epoch
#                      migration -> results/e22_control.json
#   run-e23            rack-scale fleet grid: replica scaling, Zipf
#                      skew, NIC placement -> results/e23_fleet.json
#   run-e24            multi-tenant isolation grid: budgets, DWRR,
#                      noisy neighbours -> results/e24_tenancy.json
#   run-e25            tenant SLO grid: burn-rate alerts, budget
#                      ledgers, flame attribution -> results/e25_slo.json
#   trace-export       Perfetto/Chrome-trace artifact for all four
#                      stacks -> results/e20_trace.json (schema-checked)
#   dashboard          self-contained HTML from the E21 artifact (plus
#                      the E25 SLO/flamegraph pane when its artifact
#                      exists) -> results/e21_dashboard.html
#   flamegraph         collapsed-stack + speedscope exports from the
#                      E25 artifact (see tools/flamegraph.py --help)
PYTHON ?= python
export PYTHONPATH := src
REPRO_JOBS ?= 4
#: CI coverage gate; see .github/workflows/ci.yml for the recorded baseline
COVER_MIN ?= 92

.PHONY: test test-fast test-props test-faults regen-golden coverage \
	bench-engine bench-engine-quick bench-frames bench-guard bench-runall \
	run-all run-all-par run-all-faults run-e20 run-e21 run-e22 \
	run-e23 run-e24 run-e25 trace-export dashboard flamegraph

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q

test-props:
	$(PYTHON) -m pytest tests/properties -q

test-faults:
	$(PYTHON) -m pytest tests/faults tests/check tests/net/test_link_drops.py -q

regen-golden:
	$(PYTHON) tools/regen_golden.py
	$(PYTHON) tools/regen_golden.py --hashes

coverage:
	$(PYTHON) tools/coverage_gate.py --fail-under $(COVER_MIN) --report coverage.json

# Engine microbenchmarks; writes BENCH_engine.json at the repo root so
# successive PRs can track the events/sec trajectory.
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json

# CI-sized smoke run of the same benchmarks (seconds, not minutes).
bench-engine-quick:
	$(PYTHON) benchmarks/bench_engine.py --quick

# Frame allocation diet alone: one built+parsed UDP frame per event.
bench-frames:
	$(PYTHON) benchmarks/bench_engine.py frame_churn

# Regression fence: fail if the engine hot path lost more than 5%
# events/sec against the recorded baseline (use --repeat to de-noise).
bench-guard:
	$(PYTHON) benchmarks/bench_engine.py --guard BENCH_engine.json --repeat 5

bench-runall:
	$(PYTHON) benchmarks/bench_runall.py --out BENCH_runall.json

run-all:
	$(PYTHON) -m repro.experiments.run_all

run-all-par:
	$(PYTHON) -m repro.experiments.run_all --jobs $(REPRO_JOBS)

run-all-faults:
	$(PYTHON) -m repro.experiments.run_all --faults

run-e20:
	$(PYTHON) -m repro.experiments.run_all e20

run-e21:
	$(PYTHON) -m repro.experiments.run_all e21

# Policy tournaments + epoch migration -> results/e22_control.json.
run-e22:
	$(PYTHON) -m repro.experiments.run_all e22

# Rack-scale fleets (scaling/skew/placement) -> results/e23_fleet.json.
run-e23:
	$(PYTHON) -m repro.experiments.run_all e23

# Multi-tenant isolation (noisy neighbours) -> results/e24_tenancy.json.
run-e24:
	$(PYTHON) -m repro.experiments.run_all e24

# Tenant SLOs: burn-rate alerts, budgets, flames -> results/e25_slo.json.
run-e25:
	$(PYTHON) -m repro.experiments.run_all e25

trace-export:
	$(PYTHON) tools/trace_export.py --all --out results/e20_trace.json --validate

# Needs results/e21_timeline.json (make run-e21 writes it); renders the
# E25 SLO pane too when results/e25_slo.json exists (make run-e25).
dashboard:
	$(PYTHON) tools/dashboard.py --validate --out results/e21_dashboard.html

# Needs results/e25_slo.json (make run-e25 writes it).
flamegraph:
	$(PYTHON) tools/flamegraph.py --list
	$(PYTHON) tools/flamegraph.py --cell 2t-tight-storm \
		--out results/e25_storm.collapsed.txt
	$(PYTHON) tools/flamegraph.py --cell 2t-tight-storm --format speedscope \
		--out results/e25_storm.speedscope.json
