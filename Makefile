# Targets:
#   test               tier-1 suite (ROADMAP.md): pytest -x -q, stop on
#                      first failure — the gate every PR must keep green
#   test-fast          alias of the tier-1 command (kept for muscle memory)
#   bench-engine       sim-engine microbenchmarks -> BENCH_engine.json
#   bench-engine-quick CI-sized engine smoke (seconds, not minutes)
#   bench-runall       serial-vs-parallel + cold-vs-warm-cache wall clock
#                      for the experiment runner -> BENCH_runall.json
#   run-all            all 18 experiments, serial (bit-for-bit the
#                      historical output)
#   run-all-par        the same artifact fanned out over REPRO_JOBS
#                      workers (default 4); tables are identical
PYTHON ?= python
export PYTHONPATH := src
REPRO_JOBS ?= 4

.PHONY: test test-fast bench-engine bench-engine-quick bench-runall \
	run-all run-all-par

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q

# Engine microbenchmarks; writes BENCH_engine.json at the repo root so
# successive PRs can track the events/sec trajectory.
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json

# CI-sized smoke run of the same benchmarks (seconds, not minutes).
bench-engine-quick:
	$(PYTHON) benchmarks/bench_engine.py --quick

bench-runall:
	$(PYTHON) benchmarks/bench_runall.py --out BENCH_runall.json

run-all:
	$(PYTHON) -m repro.experiments.run_all

run-all-par:
	$(PYTHON) -m repro.experiments.run_all --jobs $(REPRO_JOBS)
