#!/usr/bin/env python3
"""Regenerate the golden regression corpus under tests/golden/.

Runs every deterministic experiment (E1-E18; E19 is the fault sweep
and pins its own behaviour through tests/properties/) at the default
root seed and writes each one's structured results to
``tests/golden/<name>.json``.  The tier-1 test
``tests/golden/test_golden.py`` re-runs the experiments and diffs
against these files, so regenerate (``make regen-golden``) whenever an
intentional behaviour change shifts the numbers — and eyeball the git
diff of the JSON to confirm the shift is the one you meant to make.

Usage::

    python tools/regen_golden.py          # all of e1..e18
    python tools/regen_golden.py e5 e11   # a subset
"""

from __future__ import annotations

import io
import json
import pathlib
import sys
from contextlib import redirect_stdout

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.exp.jobs import run_experiments  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"
GOLDEN_EXPERIMENTS = tuple(f"e{i}" for i in range(1, 19))


def regenerate(names: list[str]) -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    tables = io.StringIO()
    with redirect_stdout(tables):
        outcome = run_experiments(list(names), jobs=1, cache=None,
                                  root_seed=0)
    if outcome.failed:
        sys.stdout.write(tables.getvalue())
        print("experiment failures; goldens NOT written", file=sys.stderr)
        return 1
    for name in names:
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(outcome.values[name], indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path.relative_to(REPO)}")
    return 0


def main(argv: list[str]) -> int:
    names = [a.lower() for a in argv] or list(GOLDEN_EXPERIMENTS)
    unknown = [n for n in names if n not in GOLDEN_EXPERIMENTS]
    if unknown:
        print(f"not golden experiments: {', '.join(unknown)} "
              f"(choose from {', '.join(GOLDEN_EXPERIMENTS)})",
              file=sys.stderr)
        return 2
    return regenerate(names)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
