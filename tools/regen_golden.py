#!/usr/bin/env python3
"""Regenerate the golden regression corpus under tests/golden/.

Runs every deterministic experiment at the default root seed and pins
its structured results: E1-E18 as full JSON files
(``tests/golden/<name>.json``), E19-E23 as SHA-256 digests
(``tests/golden/hashes.json``, volatile wall-clock fields stripped —
see :mod:`repro.exp.golden`).  The tier-1 test
``tests/golden/test_golden.py`` re-runs the experiments and diffs
against these pins, so regenerate (``make regen-golden``) whenever an
intentional behaviour change shifts the numbers — and eyeball the git
diff to confirm the shift is the one you meant to make.

Usage::

    python tools/regen_golden.py            # all of e1..e18
    python tools/regen_golden.py e5 e11     # a subset
    python tools/regen_golden.py --hashes   # re-pin e19..e23 digests
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import sys
import tempfile
from contextlib import redirect_stdout

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.exp.golden import HASHED_EXPERIMENTS, golden_digest  # noqa: E402
from repro.exp.jobs import run_experiments  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"
GOLDEN_EXPERIMENTS = tuple(f"e{i}" for i in range(1, 19))


def regenerate(names: list[str]) -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    tables = io.StringIO()
    with redirect_stdout(tables):
        outcome = run_experiments(list(names), jobs=1, cache=None,
                                  root_seed=0)
    if outcome.failed:
        sys.stdout.write(tables.getvalue())
        print("experiment failures; goldens NOT written", file=sys.stderr)
        return 1
    for name in names:
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(outcome.values[name], indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path.relative_to(REPO)}")
    return 0


def regenerate_hashes() -> int:
    """Re-pin the digest corpus (artifact writes go to a tmp cwd)."""
    keep = os.getcwd()
    tables = io.StringIO()
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        try:
            with redirect_stdout(tables):
                outcome = run_experiments(list(HASHED_EXPERIMENTS), jobs=1,
                                          cache=None, root_seed=0)
        finally:
            os.chdir(keep)
    if outcome.failed:
        sys.stdout.write(tables.getvalue())
        print("experiment failures; hashes NOT written", file=sys.stderr)
        return 1
    pins = {
        name: golden_digest(
            json.loads(json.dumps(outcome.values[name], sort_keys=True)))
        for name in HASHED_EXPERIMENTS
    }
    path = GOLDEN_DIR / "hashes.json"
    path.write_text(json.dumps(pins, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path.relative_to(REPO)}")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--hashes":
        if argv[1:]:
            print("--hashes takes no further arguments", file=sys.stderr)
            return 2
        return regenerate_hashes()
    names = [a.lower() for a in argv] or list(GOLDEN_EXPERIMENTS)
    unknown = [n for n in names if n not in GOLDEN_EXPERIMENTS]
    if unknown:
        print(f"not golden experiments: {', '.join(unknown)} "
              f"(choose from {', '.join(GOLDEN_EXPERIMENTS)})",
              file=sys.stderr)
        return 2
    return regenerate(names)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
