#!/usr/bin/env python3
"""Line-coverage measurement and CI gate, stdlib only.

The container has no ``coverage``/``pytest-cov``, so this measures
line coverage of ``src/repro`` with ``sys.settrace``: the tracer is
installed process-wide (and via ``threading.settrace``), local tracing
is declined for files outside the tree (so the overhead stays mostly
inside the measured package), and the executable-line universe comes
from compiling every source file and walking ``co_lines()`` over the
nested code objects — the same universe, measured the same way, in CI
and locally, so the gate number is apples-to-apples.

Usage::

    python tools/coverage_gate.py                       # measure + report
    python tools/coverage_gate.py --fail-under 70       # gate (CI)
    python tools/coverage_gate.py --report cov.json     # artifact
    python tools/coverage_gate.py -- tests/sim -q       # pytest args

Exit codes: 0 ok, 1 coverage below the gate, 2 test failures.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import threading

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PACKAGE = SRC / "repro"
sys.path.insert(0, str(SRC))


def executable_lines(path: pathlib.Path) -> set[int]:
    """Every line the interpreter could report for this file."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _start, _end, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(
            const for const in obj.co_consts if hasattr(const, "co_lines")
        )
    return lines


def build_universe() -> dict[str, set[int]]:
    return {
        str(path): executable_lines(path)
        for path in sorted(PACKAGE.rglob("*.py"))
    }


class Tracer:
    """Records (file, line) hits for files under ``src/repro``."""

    def __init__(self, universe: dict[str, set[int]]):
        self.universe = universe
        self.hits: dict[str, set[int]] = {name: set() for name in universe}
        self.prefix = str(PACKAGE)

    def global_trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self.prefix):
            return None  # decline local tracing outside the package
        return self.local_trace

    def local_trace(self, frame, event, arg):
        if event == "line":
            hits = self.hits.get(frame.f_code.co_filename)
            if hits is not None:
                hits.add(frame.f_lineno)
        return self.local_trace

    def install(self):
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self):
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def summarize(tracer: Tracer) -> dict:
    files = {}
    total_exec = total_hit = 0
    for name, universe in tracer.universe.items():
        hit = len(tracer.hits[name] & universe)
        total_exec += len(universe)
        total_hit += hit
        rel = str(pathlib.Path(name).relative_to(REPO))
        files[rel] = {
            "lines": len(universe),
            "covered": hit,
            "percent": round(100.0 * hit / len(universe), 2)
            if universe else 100.0,
        }
    percent = round(100.0 * total_hit / total_exec, 2) if total_exec else 100.0
    return {
        "percent": percent,
        "lines": total_exec,
        "covered": total_hit,
        "files": files,
    }


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fail-under", type=float, default=None,
                        help="exit 1 if total percent is below this")
    parser.add_argument("--report", default=None,
                        help="write a JSON coverage report here")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments for pytest (after --)")
    args = parser.parse_args(argv)
    pytest_args = args.pytest_args or ["-q", "-p", "no:cacheprovider",
                                       str(REPO / "tests")]

    import pytest

    tracer = Tracer(build_universe())
    tracer.install()
    try:
        test_status = pytest.main(pytest_args)
    finally:
        tracer.uninstall()

    summary = summarize(tracer)
    worst = sorted(
        ((info["percent"], rel) for rel, info in summary["files"].items()
         if info["lines"]),
    )[:10]
    print(f"\nsrc/repro line coverage: {summary['percent']:.2f}% "
          f"({summary['covered']}/{summary['lines']} lines)")
    print("least covered:")
    for percent, rel in worst:
        print(f"  {percent:6.2f}%  {rel}")

    if args.report:
        pathlib.Path(args.report).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")

    if test_status != 0:
        print("test run failed; coverage not gated", file=sys.stderr)
        return 2
    if args.fail_under is not None and summary["percent"] < args.fail_under:
        print(f"FAIL: coverage {summary['percent']:.2f}% is below the "
              f"gate of {args.fail_under:.2f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
