#!/usr/bin/env python3
"""Export flamegraph profiles from the E25 artifact (or live host-CPU).

Two modes:

* **artifact** (default) — read ``results/e25_slo.json`` (written by
  ``make run-e25``) and re-emit the per-(host, tenant) collapsed
  stacks of one cell as either Brendan-Gregg collapsed text (feed to
  ``flamegraph.pl`` or https://speedscope.app) or a speedscope JSON
  file (schema-validated before writing);
* **--host-cpu** — build a small Lauberhorn testbed, drive it under
  :class:`repro.obs.flame.HostCpuProfiler`, and export the wall-clock
  profile of the *simulator itself* (events/sec per simulated phase).
  Host wall times are nondeterministic by nature: this mode is a
  reporting tool, never an artifact source.

Usage::

    python tools/flamegraph.py --cell 2t-tight-storm
    python tools/flamegraph.py --cell fleet-tight-storm \
        --format speedscope --out storm.speedscope.json
    python tools/flamegraph.py --list
    python tools/flamegraph.py --host-cpu --out hostcpu.speedscope.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.e25_slo import SLO_ARTIFACT  # noqa: E402
from repro.obs.flame import (  # noqa: E402
    SPEEDSCOPE_SCHEMA,
    validate_speedscope,
)


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _cells(payload: dict) -> dict[str, dict]:
    return {cell["label"]: cell for cell in payload["cells"]}


def _collapsed(cell: dict, group: str | None) -> str:
    """Collapsed-stack text with the group folded in as lead frames."""
    lines = []
    for label, summary in sorted(cell["flame"].items()):
        if group is not None and label != group:
            continue
        prefix = label.replace("/", ";")
        for stack, weight in sorted(summary["stacks"].items()):
            lines.append(f"{prefix};{stack} {weight:.3f}")
    return "\n".join(lines)


def _speedscope(cell: dict, group: str | None, name: str) -> dict:
    """Rebuild a speedscope file from the artifact's stored stacks."""
    frame_index: dict[str, int] = {}
    frames: list[dict] = []

    def frame_of(frame_name: str) -> int:
        if frame_name not in frame_index:
            frame_index[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_index[frame_name]

    profiles = []
    for label, summary in sorted(cell["flame"].items()):
        if group is not None and label != group:
            continue
        samples, weights = [], []
        for stack, weight in sorted(summary["stacks"].items()):
            samples.append([frame_of(f) for f in stack.split(";")])
            weights.append(float(weight))
        profiles.append({
            "type": "sampled", "name": label, "unit": "nanoseconds",
            "startValue": 0.0, "endValue": float(sum(weights)),
            "samples": samples, "weights": weights,
        })
    return {
        "$schema": SPEEDSCOPE_SCHEMA, "name": name,
        "exporter": "tools/flamegraph.py", "activeProfileIndex": 0,
        "shared": {"frames": frames}, "profiles": profiles,
    }


def _host_cpu(horizon_ns: float, n_slices: int) -> dict:
    from repro.experiments.testbed import (build_lauberhorn_testbed,
                                           deploy_service)
    from repro.obs.flame import HostCpuProfiler
    from repro.workloads.generator import (OpenLoopGenerator, ServiceMix,
                                           Target)
    import random

    bed = build_lauberhorn_testbed(n_clients=1, seed=0)
    service, method = deploy_service(bed, "lauberhorn", name="svc",
                                     udp_port=9000, cost_instructions=500)
    gen = OpenLoopGenerator(bed.clients[0],
                            ServiceMix([Target(service, method)]),
                            bed.server_mac, bed.server_ip,
                            random.Random(1))
    bed.sim.process(gen.run(100_000.0, 10_000))
    profiler = HostCpuProfiler(bed.sim, n_slices=n_slices)
    profiler.run(until_ns=horizon_ns)
    print(f"# {profiler.events_per_sec():.0f} engine events/sec "
          f"over {len(profiler.slices)} slices", file=sys.stderr)
    return profiler.to_speedscope()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--in", dest="in_path", default=SLO_ARTIFACT,
                        help=f"E25 artifact (default {SLO_ARTIFACT})")
    parser.add_argument("--cell", help="cell label, e.g. 2t-tight-storm")
    parser.add_argument("--group", help="restrict to one host/tenant "
                                        "group, e.g. host0/victim")
    parser.add_argument("--format", choices=("collapsed", "speedscope"),
                        default="collapsed")
    parser.add_argument("--out", help="output path (default stdout)")
    parser.add_argument("--list", action="store_true",
                        help="list cells and groups, then exit")
    parser.add_argument("--host-cpu", action="store_true",
                        help="profile the simulator's own run loop "
                             "instead of reading an artifact")
    parser.add_argument("--horizon-ns", type=float, default=5e6,
                        help="host-cpu mode: simulated horizon")
    parser.add_argument("--slices", type=int, default=32,
                        help="host-cpu mode: number of wall-clock slices")
    args = parser.parse_args(argv)

    if args.host_cpu:
        payload = _host_cpu(args.horizon_ns, args.slices)
        validate_speedscope(payload)
        text = json.dumps(payload, indent=1)
    else:
        try:
            cells = _cells(_load(args.in_path))
        except FileNotFoundError:
            print(f"no artifact at {args.in_path} — run `make run-e25` "
                  "first", file=sys.stderr)
            return 1
        if args.list:
            for label, cell in cells.items():
                groups = ", ".join(sorted(cell.get("flame", {})))
                print(f"{label}: {groups or '(no flame groups)'}")
            return 0
        if args.cell not in cells:
            print(f"unknown cell {args.cell!r}; try --list",
                  file=sys.stderr)
            return 1
        cell = cells[args.cell]
        if args.group is not None and args.group not in cell["flame"]:
            print(f"unknown group {args.group!r} in {args.cell}; "
                  f"have {sorted(cell['flame'])}", file=sys.stderr)
            return 1
        if args.format == "speedscope":
            payload = _speedscope(cell, args.group,
                                  f"e25-{args.cell}")
            validate_speedscope(payload)
            text = json.dumps(payload, indent=1)
        else:
            text = _collapsed(cell, args.group)

    if args.out:
        out = pathlib.Path(args.out)
        if out.parent != pathlib.Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {args.out}: {len(text)} bytes", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
