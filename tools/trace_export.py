#!/usr/bin/env python3
"""Export a Perfetto/Chrome-trace file for one armed stack.

Builds the requested architecture's echo testbed with the span layer
armed, drives the standard E20 workload, and writes the resulting span
tree as Chrome trace-event JSON — load it at ``ui.perfetto.dev`` or
``chrome://tracing``.  With ``--validate`` the payload is additionally
checked against the trace-event schema invariants (CI runs this as the
export smoke test) and the exit code reflects the result.

Usage::

    python tools/trace_export.py --stack lauberhorn --out trace.json
    python tools/trace_export.py --stack linux --requests 50 --validate
    python tools/trace_export.py --all --out results/e20_trace.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.four_stacks import STACKS  # noqa: E402
from repro.experiments.obs_attribution import (  # noqa: E402
    measure_obs_stack,
    write_trace_artifact,
)
from repro.obs.export import render_stage_summary, validate_chrome_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stack", choices=STACKS, action="append",
                        dest="stacks", default=None,
                        help="architecture to trace (repeatable)")
    parser.add_argument("--all", action="store_true",
                        help="trace all four stacks")
    parser.add_argument("--requests", type=int, default=25,
                        help="requests per stack (default 25)")
    parser.add_argument("--out", default="trace.json",
                        help="output path (default trace.json)")
    parser.add_argument("--validate", action="store_true",
                        help="check the payload against the trace-event "
                             "schema; nonzero exit on violations")
    args = parser.parse_args(argv)

    stacks = list(STACKS) if args.all else (args.stacks or ["lauberhorn"])
    results = [measure_obs_stack(stack, args.requests) for stack in stacks]
    payload = write_trace_artifact(results, args.out)

    for result in results:
        print(render_stage_summary(result.spans, title=result.stack))
        print()
        if result.violations:
            print(f"{result.stack}: span-tree violations:")
            for violation in result.violations:
                print(f"  - {violation}")
            return 1
        if not result.identical:
            print(f"{result.stack}: armed run changed simulated RTTs")
            return 1
    print(f"wrote {args.out}: {len(payload['traceEvents'])} trace events "
          f"({', '.join(stacks)})")

    if args.validate:
        problems = validate_chrome_trace(payload)
        if problems:
            print("trace-event schema violations:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("schema check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
