#!/usr/bin/env python3
"""Render the E21/E25 observability artifacts as one HTML dashboard.

Reads ``results/e21_timeline.json`` (written by
``python -m repro.experiments.run_all e21`` or ``make run-e21``) and
emits one HTML file with **no external dependencies** — inline CSS and
inline SVG sparklines only — so it can be opened from a CI artifact
listing or an air-gapped machine:

* per-stack time-series sparklines (the busiest windowed metrics);
* the tail-forensics table: every p99.9 request with its stage
  breakdown and the system state while it was in flight;
* the flight-recorder post-mortem: trigger, event-kind counts, and
  the final events before the (deliberately injected) violation.

When ``results/e25_slo.json`` is present too (``make run-e25``), a
tenant-SLO pane is appended: the per-cell error-budget/burn-rate
table (alert vs exhaustion instants and the lead between them) and
inline per-(host, tenant) flamegraph SVGs folded from the exact
simulated-ns stacks the artifact carries.

Usage::

    python tools/dashboard.py --in results/e21_timeline.json \
        --slo-in results/e25_slo.json --out results/e21_dashboard.html
    python tools/dashboard.py --validate          # schema check + exit
    python tools/dashboard.py --text              # terminal summary too
"""

from __future__ import annotations

import argparse
import html
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments.e21_timeline import (  # noqa: E402
    TIMELINE_ARTIFACT,
    validate_timeline_payload,
)
from repro.experiments.e25_slo import (  # noqa: E402
    SLO_ARTIFACT,
    validate_slo_payload,
)
from repro.obs.tail import STATE_PATTERNS, render_tail_report  # noqa: E402

#: how many sparklines per stack (busiest state metrics first)
MAX_SPARKLINES = 12
#: how many trailing flight events the post-mortem table shows
MAX_FLIGHT_ROWS = 30

_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em;
     border-bottom: 2px solid #4361ee; padding-bottom: .2em; }
h3 { font-size: 1em; margin-bottom: .3em; }
table { border-collapse: collapse; margin: .5em 0; font-size: 13px; }
th, td { border: 1px solid #d0d0e0; padding: .25em .6em;
         text-align: left; vertical-align: top; }
th { background: #eef0fb; }
.ok { color: #0a7d36; font-weight: 600; }
.bad { color: #c0182b; font-weight: 600; }
.spark { display: inline-block; margin: .3em .6em .3em 0;
         padding: .3em .5em; border: 1px solid #e0e0ee;
         border-radius: 4px; background: #fafaff; }
.spark .name { font-size: 11px; color: #555; display: block; }
.spark .range { font-size: 10px; color: #999; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
.summary { color: #444; }
"""


def _spark_svg(points: list[tuple[float, float]], width: int = 220,
               height: int = 36) -> str:
    """One polyline sparkline (inline SVG, no dependencies)."""
    if len(points) < 2:
        return "<svg width='220' height='36'></svg>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    coords = " ".join(
        f"{(x - x_lo) / x_span * (width - 4) + 2:.1f},"
        f"{height - 2 - (y - y_lo) / y_span * (height - 4):.1f}"
        for x, y in points
    )
    return (f"<svg width='{width}' height='{height}'>"
            f"<polyline points='{coords}' fill='none' "
            f"stroke='#4361ee' stroke-width='1.5'/></svg>")


def _series(entry: dict, name: str) -> list[tuple[float, float]]:
    return [(w["end_ns"], w["values"][name])
            for w in entry["timeseries"]["windows"]
            if name in w["values"]]


def _pick_metrics(entry: dict) -> list[str]:
    """The busiest windowed metrics: state-like first, movers only."""
    windows = entry["timeseries"]["windows"]
    names: set[str] = set()
    for window in windows:
        names.update(window["values"].keys())

    def spread(name: str) -> float:
        values = [v for _, v in _series(entry, name)]
        return (max(values) - min(values)) if values else 0.0

    movers = [n for n in names if spread(n) > 0]
    state = [n for n in movers
             if any(p in n for p in STATE_PATTERNS)]
    rest = [n for n in movers if n not in state]
    ranked = (sorted(state, key=lambda n: -spread(n))
              + sorted(rest, key=lambda n: -spread(n)))
    return ranked[:MAX_SPARKLINES]


def _fmt_ns(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f} ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f} us"
    return f"{value:.0f} ns"


def _tail_table(entry: dict) -> str:
    rows = []
    for record in entry["tail"]["requests"]:
        stages = sorted(record["stages"].items(), key=lambda kv: -kv[1])
        stage_text = ", ".join(
            f"{html.escape(name)} {_fmt_ns(duration)}"
            for name, duration in stages[:4])
        state = sorted(record["state"].items(),
                       key=lambda kv: -kv[1]["max"])
        state_text = ", ".join(
            f"{html.escape(name)} max {stat['max']:g}"
            for name, stat in state[:4] if stat["max"] > 0) or "all quiet"
        flight_n = len(record.get("flight", []))
        rows.append(
            f"<tr><td class='mono'>{record['trace_id']}</td>"
            f"<td>{_fmt_ns(record['duration_ns'])}</td>"
            f"<td>{stage_text}</td><td>{state_text}</td>"
            f"<td>{flight_n}</td></tr>")
    tail = entry["tail"]
    caption = (f"p{tail['quantile'] * 100:g} threshold "
               f"{_fmt_ns(tail['threshold_ns'])} — {tail['n_slow']} of "
               f"{tail['n_requests']} requests")
    return (f"<h3>Tail forensics <span class='summary'>({caption})"
            "</span></h3><table><tr><th>trace</th><th>RTT</th>"
            "<th>slowest stages</th><th>concurrent state</th>"
            f"<th>flight events</th></tr>{''.join(rows)}</table>")


def _flight_table(entry: dict) -> str:
    dump = entry.get("flight_dump")
    if not dump:
        return "<h3>Flight recorder</h3><p class='bad'>no dump</p>"
    reason = dump.get("reason") or {}
    kinds = ", ".join(f"{html.escape(kind)}×{count}" for kind, count
                      in sorted(dump["kinds"].items()))
    events = dump["events"][-MAX_FLIGHT_ROWS:]
    rows = "".join(
        f"<tr><td class='mono'>{event['time_ns']:.0f}</td>"
        f"<td>{html.escape(event['kind'])}</td>"
        f"<td class='mono'>{html.escape(json.dumps(event['fields']))}"
        "</td></tr>"
        for event in events)
    return (
        "<h3>Flight-recorder post-mortem</h3>"
        f"<p class='summary'>triggered by <b>{html.escape(str(reason.get('check')))}"
        f"</b> at {reason.get('time_ns', 0):.0f} ns — "
        f"{html.escape(str(reason.get('detail')))}<br>"
        f"{dump['recorded']} recorded, {dump['dropped']} dropped "
        f"(ring capacity {dump['capacity']}); kinds: {kinds}</p>"
        f"<table><tr><th>time ns</th><th>kind</th><th>fields</th></tr>"
        f"{rows}</table>"
        f"<p class='summary'>showing the final {len(events)} of "
        f"{len(dump['events'])} retained events</p>")


def _stack_section(stack: str, entry: dict) -> str:
    ts = entry["timeseries"]
    identical = ("<span class='ok'>bit-identical</span>"
                 if entry["identical"]
                 else "<span class='bad'>DIVERGED</span>")
    layers = entry["layers"]
    sparks = []
    for name in _pick_metrics(entry):
        points = _series(entry, name)
        values = [v for _, v in points]
        sparks.append(
            f"<span class='spark'><span class='name'>"
            f"{html.escape(name)}</span>{_spark_svg(points)}"
            f"<span class='range'>{min(values):g} .. {max(values):g}"
            "</span></span>")
    return (
        f"<h2>{html.escape(stack)}</h2>"
        f"<p class='summary'>{entry['completed']}/{entry['n_requests']} "
        f"requests — p50 {_fmt_ns(entry['p50_rtt_ns'])}, "
        f"p99.9 {_fmt_ns(entry['p999_rtt_ns'])} — armed run {identical} "
        f"— {ts['samples']} windows of {ts['window_ns']:g} ns "
        f"({ts['dropped_windows']} evicted) — metrics: "
        f"hw {layers.get('hw', 0)}, os {layers.get('os', 0)}, "
        f"nic {layers.get('nic', 0)}</p>"
        f"<div>{''.join(sparks)}</div>"
        f"{_tail_table(entry)}"
        f"{_flight_table(entry)}")


# -- E25: tenant SLOs + flamegraphs -------------------------------------------

#: flamegraph geometry (pure inline SVG, one rect per stack frame)
_FLAME_WIDTH = 640
_FLAME_ROW = 17
_FLAME_COLORS = ("#e4572e", "#f3a712", "#4361ee", "#0a7d36", "#7b2d8b")


def _flame_svg(stacks: dict[str, float], width: int = _FLAME_WIDTH) -> str:
    """Icicle-layout flamegraph from collapsed ``"a;b;c" -> ns`` stacks.

    Weights are *self* times, so each frame's width is its self time
    plus everything folded beneath it — the standard flamegraph sum.
    """
    totals: dict[tuple[str, ...], float] = {}
    for key, weight in stacks.items():
        frames = tuple(key.split(";"))
        # negative self (overlapping children) still sums correctly,
        # but a frame is never drawn wider than its parent
        for depth in range(1, len(frames) + 1):
            prefix = frames[:depth]
            totals[prefix] = totals.get(prefix, 0.0) + weight
    if not totals:
        return "<svg width='1' height='1'></svg>"
    roots = sorted({k[:1] for k in totals})
    grand = sum(totals[r] for r in roots) or 1.0
    depth_max = max(len(k) for k in totals)
    rects = []

    def emit(prefix: tuple[str, ...], x: float, avail: float) -> None:
        w = totals[prefix] / grand * width
        w = max(0.0, min(w, avail))
        if w < 1.0:
            return
        depth = len(prefix)
        color = _FLAME_COLORS[(hash(prefix[-1]) & 0xFFFF)
                              % len(_FLAME_COLORS)]
        label = html.escape(prefix[-1]) if w > 40 else ""
        rects.append(
            f"<g><rect x='{x:.1f}' y='{(depth - 1) * _FLAME_ROW}' "
            f"width='{w:.1f}' height='{_FLAME_ROW - 1}' fill='{color}' "
            f"fill-opacity='0.75'><title>{html.escape(';'.join(prefix))} "
            f"— {totals[prefix]:.1f} ns</title></rect>"
            f"<text x='{x + 3:.1f}' y='{(depth - 1) * _FLAME_ROW + 12}' "
            f"font-size='10' fill='#fff'>{label}</text></g>")
        child_x = x
        children = sorted(k for k in totals
                          if len(k) == depth + 1 and k[:depth] == prefix)
        for child in children:
            cw = totals[child] / grand * width
            emit(child, child_x, min(cw, x + w - child_x))
            child_x += cw

    x = 0.0
    for root in roots:
        emit(root, x, width - x)
        x += totals[root] / grand * width
    height = depth_max * _FLAME_ROW
    return (f"<svg width='{width}' height='{height}' "
            f"font-family='ui-monospace,monospace'>{''.join(rects)}</svg>")


def _slo_cell_row(cell: dict) -> str:
    victim = cell.get("slo", {}).get("specs", {}).get("victim", {})
    alert = victim.get("first_alert_ns")
    exhausted = victim.get("exhausted_ns")
    lead = victim.get("alert_lead_ns")
    verdict = ("<span class='bad'>violated</span>" if victim.get("violated")
               else "<span class='ok'>in budget</span>")
    identical = {True: "<span class='ok'>yes</span>",
                 False: "<span class='bad'>NO</span>",
                 None: "n/a"}[cell.get("identical")]
    return (
        f"<tr><td class='mono'>{html.escape(cell['label'])}</td>"
        f"<td>{victim.get('bad', 0)}/{victim.get('total', 0)}</td>"
        f"<td>{victim.get('budget_consumed', 0.0):.2f}</td>"
        f"<td>{_fmt_ns(alert) if alert is not None else '—'}</td>"
        f"<td>{_fmt_ns(exhausted) if exhausted is not None else '—'}</td>"
        f"<td>{_fmt_ns(lead) if lead is not None else '—'}</td>"
        f"<td>{verdict}</td><td>{identical}</td></tr>")


def _slo_section(payload: dict) -> str:
    """The E25 pane: burn-rate table + per-group flamegraphs."""
    cells = payload["cells"]
    rows = "".join(_slo_cell_row(cell) for cell in cells)
    flames = []
    for cell in cells:
        if cell.get("interference") != "storm":
            continue
        for group, summary in sorted(cell.get("flame", {}).items()):
            flames.append(
                f"<h3>{html.escape(cell['label'])} — "
                f"{html.escape(group)} <span class='summary'>"
                f"({summary['n_traces']} traces, "
                f"{_fmt_ns(summary['root_sum_ns'])} total)</span></h3>"
                f"{_flame_svg(summary['stacks'])}")
    objectives = payload.get("objectives", {})
    tight = objectives.get("tight", {})
    return (
        "<h2>E25 — tenant SLOs: error budgets, burn-rate alerts &amp; "
        "flame attribution</h2>"
        "<p class='summary'>Victim objective per cell (tight: "
        f"{_fmt_ns(tight.get('latency_threshold_ns', 0))} at "
        f"{tight.get('latency_target', 0) * 100:g}%): the alert must "
        "land before the error budget exhausts, never in calm cells. "
        "Flamegraphs are folded from exact simulated-ns span trees, "
        "grouped by (host, tenant).</p>"
        "<table><tr><th>cell</th><th>bad/total</th><th>budget burned</th>"
        "<th>first alert</th><th>exhausted</th><th>lead</th>"
        f"<th>verdict</th><th>identical</th></tr>{rows}</table>"
        f"{''.join(flames)}")


def build_dashboard(payload: dict, slo_payload: dict | None = None) -> str:
    """The full HTML document for one E21 (+ optional E25) payload."""
    sections = "".join(_stack_section(stack, entry)
                       for stack, entry in payload["stacks"].items())
    if slo_payload is not None:
        sections += _slo_section(slo_payload)
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>E21 — system timelines</title>"
        f"<style>{_CSS}</style></head><body>"
        "<h1>E21 — time series, flight recorder &amp; tail forensics</h1>"
        "<p class='summary'>One section per stack: windowed metric "
        "sparklines spanning the hardware/OS/NIC layers, every p99.9 "
        "request joined with the system state it ran through, and the "
        "flight-recorder dump frozen at the injected invariant "
        "violation.</p>"
        f"{sections}</body></html>")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--in", dest="in_path", default=TIMELINE_ARTIFACT,
                        help=f"artifact path (default {TIMELINE_ARTIFACT})")
    parser.add_argument("--slo-in", dest="slo_path", default=SLO_ARTIFACT,
                        help="E25 SLO artifact; pane is skipped when the "
                             f"file is absent (default {SLO_ARTIFACT})")
    parser.add_argument("--out", default="results/e21_dashboard.html",
                        help="HTML output path")
    parser.add_argument("--validate", action="store_true",
                        help="check the artifact against the E21 schema; "
                             "nonzero exit on violations")
    parser.add_argument("--text", action="store_true",
                        help="also print the per-stack tail report")
    args = parser.parse_args(argv)

    try:
        with open(args.in_path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        print(f"no artifact at {args.in_path} — run "
              "`python -m repro.experiments.run_all e21` first")
        return 1

    slo_payload = None
    try:
        with open(args.slo_path) as handle:
            slo_payload = json.load(handle)
    except FileNotFoundError:
        pass                            # the SLO pane is optional

    if args.validate:
        try:
            validate_timeline_payload(payload)
            if slo_payload is not None:
                validate_slo_payload(slo_payload, complete=False)
        except ValueError as error:
            print(f"schema violations: {error}")
            return 1
        print("schema check: OK")

    if args.text:
        for stack, entry in payload["stacks"].items():
            print(render_tail_report(entry["tail"], title=stack))
            print()

    document = build_dashboard(payload, slo_payload)
    out = pathlib.Path(args.out)
    if out.parent != pathlib.Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(document)
    print(f"wrote {args.out}: {len(document)} bytes, "
          f"{len(payload['stacks'])} stacks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
