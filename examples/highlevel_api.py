#!/usr/bin/env python3
"""The high-level API: a key-value service on each of the three stacks.

`repro.api.SimulatedCluster` hides the machine/kernel/NIC assembly:
register handlers with a decorator, start, call.  This script runs the
same KV workload on Lauberhorn, kernel-bypass, and Linux, and prints
the latency and host-CPU comparison.

Run:  python examples/highlevel_api.py
"""

from repro.api import SimulatedCluster


def run_stack(stack: str):
    cluster = SimulatedCluster(stack=stack)
    store = {}

    @cluster.service("kv", port=9000, cost=800, dedicated_core=0)
    def put(args):
        store[args[0]] = args[1]
        return ["ok"]

    @cluster.service("kv")
    def get(args):
        return [store.get(args[0], "missing")]

    cluster.start()
    cluster.run(0.1)  # let workers arm/park

    busy_before = cluster.busy_ns()
    rtts = []
    for index in range(20):
        cluster.call("kv", "put", [f"key{index}", index])
        result = cluster.call("kv", "get", [f"key{index}"])
        assert result.results == [index]
        rtts.append(result.rtt_ns)
    busy = cluster.busy_ns() - busy_before
    mean_rtt = sum(rtts) / len(rtts)
    return mean_rtt, busy / 40  # 40 RPCs total


def main() -> None:
    print(f"{'stack':<12} {'mean GET rtt':>14} {'host busy / rpc':>16}")
    for stack in ("lauberhorn", "bypass", "linux"):
        rtt, busy = run_stack(stack)
        print(f"{stack:<12} {rtt / 1000:>11.2f} us {busy / 1000:>13.2f} us")
    print("\nSame handlers, same wire format — only the OS/NIC split differs.")


if __name__ == "__main__":
    main()
