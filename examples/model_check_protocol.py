#!/usr/bin/env python3
"""Model-check the Lauberhorn NIC<->CPU protocol (Section 6).

Exhaustively explores the Figure 4 protocol's state space — CPU loop,
NIC FSM, nondeterministic packet arrivals, Tryagain timeouts, and OS
preemption — checking that all races are benign.  Then it seeds a
protocol bug (the CPU "forgets" to store its response before moving
on) and prints the counterexample trace the checker finds.

Run:  python examples/model_check_protocol.py
"""

from repro.mc import LauberhornProtocolSpec, ModelChecker, ProtocolConfig


def main() -> None:
    print("Verifying the correct protocol:")
    for config in (
        ProtocolConfig(total_packets=3),
        ProtocolConfig(total_packets=3, preemption=True),
        ProtocolConfig(total_packets=5),
    ):
        result = ModelChecker(LauberhornProtocolSpec(config)).run()
        print(f"  {result.summary()}")

    print()
    print("Seeding a bug (CPU may skip the response store):")
    bad = ProtocolConfig(total_packets=2, bug="skip_store")
    result = ModelChecker(LauberhornProtocolSpec(bad)).run()
    print(f"  {result.summary()}")
    violation = result.violation
    print(f"  violated invariant: {violation.name}")
    print("  counterexample trace:")
    for step, action in enumerate(violation.trace):
        print(f"    {step + 1}. {action}")
    print(f"  bad state: {LauberhornProtocolSpec.describe(violation.state)}")


if __name__ == "__main__":
    main()
