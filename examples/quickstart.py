#!/usr/bin/env python3
"""Quickstart: one Lauberhorn server, one echo service, five RPCs.

Builds the simulated Enzian machine with the Lauberhorn NIC, registers
an echo service with a user-mode receive loop (the Figure 4 fast path),
fires five RPCs from a client node, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import lauberhorn_user_loop
from repro.sim import MS


def main() -> None:
    # A 48-core Enzian-like machine, a switch, and one client node.
    bed = build_lauberhorn_testbed()

    # Register a service: one UDP port, one method with an explicit
    # compute cost (the simulation charges CPU time; the handler body
    # produces the actual response values).
    service = bed.registry.create_service("echo", udp_port=9000)
    method = bed.registry.add_method(
        service,
        "echo",
        handler=lambda args: list(args),
        cost_instructions=500,
    )

    # Give the service a process, a NIC end-point (two CONTROL cache
    # lines + AUX lines homed on the NIC), and a worker thread running
    # the user-mode receive loop: it stalls in a blocked load until the
    # NIC answers with a fully dispatched request.
    process = bed.kernel.spawn_process("echo-server")
    bed.nic.register_service(service, process.pid)
    endpoint = bed.nic.create_endpoint(EndpointKind.USER, service=service)
    bed.kernel.spawn_thread(
        process,
        lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
        name="echo-loop",
        pinned_core=0,
    )

    # Drive five RPCs from the client and print the round trips.
    client = bed.clients[0]
    rtts = []

    def driver():
        yield bed.sim.timeout(10_000)  # let the loop arm its first load
        for i in range(5):
            result = yield from client.call(
                args=[i, f"hello-{i}"], **bed.call_args(service, method)
            )
            rtts.append(result.rtt_ns)
            print(f"  rpc {i}: results={result.results}  "
                  f"rtt={result.rtt_ns / 1000:.2f} us")

    bed.sim.process(driver())
    bed.machine.run(until=50 * MS)

    print()
    print(f"fast-path deliveries : {bed.nic.lstats.delivered_fast}")
    print(f"responses sent       : {bed.nic.lstats.responses_sent}")
    print(f"kernel syscalls      : {bed.kernel.stats.syscalls} "
          "(the data path never enters the kernel)")
    core = bed.machine.cores[0]
    print(f"core 0 busy          : {core.counters.busy_ns / 1000:.2f} us "
          f"(stall {core.stall_ns_now() / 1e6:.2f} ms — blocked loads, "
          "not spinning)")


if __name__ == "__main__":
    main()
