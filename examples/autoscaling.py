#!/usr/bin/env python3
"""NIC-driven core autoscaling under a load spike (Section 5.2).

"this can be initiated by the kernel scheduler, or by Lauberhorn based
on statistics it gathers about the instantaneous load on each server
process.  This approach therefore also supports dynamic scaling of the
cores used for RPC based on load."

One dispatcher core serves a slow service; a load spike arrives; the
autoscaler (a kernel control thread reading the NIC's statistics)
spawns more dispatchers; when the spike ends, Retire messages hand the
cores back.

Run:  python examples/autoscaling.py
"""

from repro.experiments import build_lauberhorn_testbed
from repro.os.nicsched import NicScheduler
from repro.sim import MS
from repro.workloads.generator import OpenLoopGenerator, ServiceMix, Target


def main() -> None:
    bed = build_lauberhorn_testbed()
    service = bed.registry.create_service("resize", udp_port=9000)
    method = bed.registry.add_method(
        service, "resize", lambda args: ["done"],
        cost_instructions=20_000,  # ~12 us of work per request
    )
    process = bed.kernel.spawn_process("resize")
    bed.nic.register_service(service, process.pid)
    scheduler = NicScheduler(bed.kernel, bed.nic, bed.registry,
                             n_dispatchers=1, promote=False)
    scheduler.start_autoscaler(interval_ns=0.2 * MS, min_dispatchers=1,
                               max_dispatchers=6)

    sizes = []

    def sampler():
        while True:
            sizes.append((bed.sim.now / MS, len(scheduler.dispatchers)))
            yield bed.sim.timeout(0.5 * MS)

    bed.sim.process(sampler())

    generator = OpenLoopGenerator(
        bed.clients[0], ServiceMix([Target(service, method)]),
        bed.server_mac, bed.server_ip,
        rng=bed.machine.rng.stream("spike"),
    )

    def spike():
        yield bed.sim.timeout(2 * MS)  # quiet start
        yield from generator.run(rate_per_sec=120_000, n_requests=400)

    done = bed.sim.process(spike())
    bed.machine.run(until=done)
    bed.machine.run(until=bed.sim.now + 8 * MS)  # quiet tail

    print("time (ms)  dispatcher cores")
    for time_ms, n in sizes:
        print(f"{time_ms:8.1f}  {'#' * n} ({n})")
    print(f"\ncompleted: {generator.completed} requests, "
          f"p99 {generator.recorder.summary().p99 / 1000:.1f} us")
    print(f"cores retired after the spike: {bed.nic.lstats.retires}")


if __name__ == "__main__":
    main()
