#!/usr/bin/env python3
"""A microservice mesh with a rotating hot set, served three ways.

Eight services share four serving cores while the traffic's hot set
rotates every 2 ms — the dynamic workload of the paper's Sections 1/4.
The same load runs against the Linux kernel stack, a kernel-bypass
deployment, and Lauberhorn with NIC-driven scheduling, and the script
prints the latency/efficiency comparison.

Run:  python examples/microservice_mesh.py
"""

from repro.experiments.dynamic_mix import run_dynamic_mix


def main() -> None:
    results = run_dynamic_mix(
        service_counts=(8,),
        n_serving=4,
        rate_per_sec=50_000,
        n_requests=200,
        verbose=True,
    )
    lauberhorn = next(r for r in results if r.stack == "lauberhorn")
    bypass = next(r for r in results if r.stack == "bypass")
    print()
    print(f"Lauberhorn p50 is {bypass.p50_ns / lauberhorn.p50_ns:.1f}x "
          "faster than kernel bypass on this dynamic mix, using "
          f"{bypass.busy_ns_per_request / lauberhorn.busy_ns_per_request:.0f}x "
          "fewer CPU cycles per request.")


if __name__ == "__main__":
    main()
