#!/usr/bin/env python3
"""Serverless cold starts: NIC-driven dispatch of an idle function.

A "function" service sits completely idle (no core is running it) when
a burst of invocations arrives.  With Lauberhorn, the first request is
dispatched by a parked kernel thread (Figure 5 (3)), which context-
switches into the function's process and *promotes* the core to the
function's own user-mode loop — so the rest of the burst rides the
zero-software fast path (Figure 5 (1)).

The script prints the per-invocation latency across the burst: watch
invocation 0 pay the cold-start and the rest drop to the hot-path
latency.

Run:  python examples/serverless_burst.py
"""

from repro.experiments import build_lauberhorn_testbed
from repro.nic.lauberhorn import EndpointKind
from repro.os.nicsched import NicScheduler
from repro.sim import MS


def main() -> None:
    bed = build_lauberhorn_testbed()

    function = bed.registry.create_service("thumbnailer", udp_port=9000)
    invoke = bed.registry.add_method(
        function,
        "invoke",
        handler=lambda args: [f"thumb({args[0]})"],
        cost_instructions=5_000,  # some real work per invocation
    )
    process = bed.kernel.spawn_process("thumbnailer")
    bed.nic.register_service(function, process.pid)
    # The function has an end-point but *no thread arming it*: it is
    # cold until the NIC-driven scheduler brings it up.
    bed.nic.create_endpoint(EndpointKind.USER, service=function)
    NicScheduler(bed.kernel, bed.nic, bed.registry, n_dispatchers=2,
                 promote=True)

    client = bed.clients[0]
    latencies = []

    def driver():
        yield bed.sim.timeout(1 * MS)  # dispatchers park first
        for i in range(10):
            result = yield from client.call(
                args=[f"img{i}.png"], **bed.call_args(function, invoke)
            )
            latencies.append(result.rtt_ns)

    bed.sim.process(driver())
    bed.machine.run(until=100 * MS)

    print("invocation latencies (cold start first):")
    for index, rtt in enumerate(latencies):
        marker = "  <- cold start (kernel dispatch + promotion)" if index == 0 else ""
        print(f"  #{index}: {rtt / 1000:7.2f} us{marker}")
    print()
    print(f"kernel-dispatched : {bed.nic.lstats.delivered_kernel}")
    print(f"fast-path         : {bed.nic.lstats.delivered_fast}")
    speedup = latencies[0] / (sum(latencies[2:]) / len(latencies[2:]))
    print(f"warm invocations run {speedup:.1f}x faster than the cold start")


if __name__ == "__main__":
    main()
