"""Per-tenant token-bucket rate limiter.

The NIC consults the bucket at demux time — after the service (and
hence tenant) is known, but *before* the expensive pipeline stages
(inline AEAD, deserialisation).  Admission is **policing**: a frame
that finds the bucket empty is dropped and charged to the tenant, the
way hardware NIC rate limiters behave.  Deferring instead would put
the head-of-line blocking back into the shared RX pipeline, which is
exactly the interference the limiter exists to prevent.

Time is simulated time in ns; refill is lazy and exact, so behaviour
is a pure function of the arrival timestamps — deterministic across
runs and process placements.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate_per_sec`` tokens/s up to ``burst``."""

    __slots__ = ("rate_per_sec", "burst", "tokens", "last_ns")

    def __init__(self, rate_per_sec: float, burst: float = 8.0):
        if rate_per_sec <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_sec}")
        if burst < 1.0:
            raise ValueError(f"burst must allow at least one token, got {burst}")
        self.rate_per_sec = float(rate_per_sec)
        self.burst = float(burst)
        self.tokens = float(burst)  # start full: an idle tenant may burst
        self.last_ns = 0.0

    def _refill(self, now_ns: float) -> None:
        if now_ns > self.last_ns:
            gained = (now_ns - self.last_ns) * 1e-9 * self.rate_per_sec
            self.tokens = min(self.burst, self.tokens + gained)
            self.last_ns = now_ns

    def allow(self, now_ns: float) -> bool:
        """Consume one token if available; False means police (drop)."""
        self._refill(now_ns)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def next_ready_ns(self, now_ns: float) -> float:
        """Earliest instant a token will be available (>= now_ns)."""
        self._refill(now_ns)
        if self.tokens >= 1.0:
            return now_ns
        deficit = 1.0 - self.tokens
        return now_ns + deficit / self.rate_per_sec * 1e9

    def set_rate(self, rate_per_sec: float) -> None:
        """Runtime actuation hook (:mod:`repro.ctrl`): retune the rate.

        Tokens already accrued are kept (refilled at the *old* rate up
        to the change instant via the caller's next ``allow``)."""
        if rate_per_sec <= 0:
            raise ValueError(f"rate must be positive, got {rate_per_sec}")
        self.rate_per_sec = float(rate_per_sec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TokenBucket {self.rate_per_sec:.0f}/s "
                f"burst={self.burst:.0f} tokens={self.tokens:.2f}>")
