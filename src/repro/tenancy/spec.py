"""Tenant identity, budgets, and the per-tenant charge ledger.

A :class:`TenantSpec` is the NIC's unit of isolation policy:

``weight``
    DWRR share of demux/arbitration capacity under contention.
``ctrl_budget``
    Cap on *concurrently held* CONTROL cache lines — i.e. deliveries
    the NIC has handed to this tenant's processes that have not yet
    been completed (or bounced).  ``None`` means unlimited, which is
    the historical behaviour.
``rate_limit_rps``
    Token-bucket admission rate; frames beyond it are policed (dropped
    at demux, before crypto/deserialise).  ``None`` disables the gate.

The :class:`TenantTable` maps services to tenants and owns the stats
ledger and rate-limit buckets.  All fields of :class:`TenantStats`
are numeric so the table can be surfaced verbatim through
:class:`repro.obs.metrics.MetricsRegistry` probes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterator, Optional, Union

from .bucket import TokenBucket

__all__ = ["TenantSpec", "TenantStats", "TenantTable"]


@dataclass(frozen=True)
class TenantSpec:
    """Immutable tenant policy record."""

    tenant_id: int
    name: str
    weight: float = 1.0
    ctrl_budget: Optional[int] = None
    rate_limit_rps: Optional[float] = None
    rate_burst: float = 8.0

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0, "
                             f"got {self.weight}")
        if self.ctrl_budget is not None and self.ctrl_budget < 1:
            raise ValueError(f"tenant {self.name!r}: ctrl_budget must be "
                             f">= 1 (or None), got {self.ctrl_budget}")
        if self.rate_limit_rps is not None and self.rate_limit_rps <= 0:
            raise ValueError(f"tenant {self.name!r}: rate_limit_rps must be "
                             f"> 0 (or None), got {self.rate_limit_rps}")


@dataclass
class TenantStats:
    """Charge ledger for one tenant (all counters, NIC-maintained)."""

    arrivals: int = 0        # request frames demuxed to this tenant
    admitted: int = 0        # passed the rate gate (== arrivals when no gate)
    rate_dropped: int = 0    # policed by the token bucket
    dropped: int = 0         # backlog overflow after admission
    delivered_fast: int = 0  # handed to an armed user end-point
    delivered_kernel: int = 0
    completed: int = 0
    ctrl_loads: int = 0      # CONTROL cache-line loads charged
    tryagains: int = 0       # Tryagain bounces charged
    dma_fallbacks: int = 0   # >4KiB payloads spilled to DMA
    queued_now: int = 0      # gauge: requests parked in DWRR queues
    held_now: int = 0        # gauge: CONTROL lines currently held


_STAT_FIELDS = tuple(f.name for f in fields(TenantStats))


class TenantTable:
    """Service → tenant mapping plus per-tenant ledgers and buckets.

    Attach to a NIC with ``nic.attach_tenants(table)`` *before* traffic
    starts; services are bound with :meth:`assign` (usually via the
    ``tenant=`` argument of ``register_service`` /
    ``testbed.deploy_service``).  Services left unassigned fall into an
    auto-created ``"_default"`` tenant (weight 1, no budget, no rate
    limit) so partially-tenanted rigs stay well-defined.
    """

    DEFAULT_NAME = "_default"

    def __init__(self):
        self._tenants: Dict[int, TenantSpec] = {}
        self._by_name: Dict[str, TenantSpec] = {}
        self.stats: Dict[int, TenantStats] = {}
        self.buckets: Dict[int, TokenBucket] = {}
        self._service_tenant: Dict[int, int] = {}
        self._next_id = 1

    # -- definition ---------------------------------------------------

    def create(self, name: str, weight: float = 1.0,
               ctrl_budget: Optional[int] = None,
               rate_limit_rps: Optional[float] = None,
               rate_burst: float = 8.0) -> TenantSpec:
        if name in self._by_name:
            raise ValueError(f"tenant {name!r} already exists")
        spec = TenantSpec(self._next_id, name, weight, ctrl_budget,
                          rate_limit_rps, rate_burst)
        self._next_id += 1
        self._install(spec)
        return spec

    def _install(self, spec: TenantSpec) -> None:
        self._tenants[spec.tenant_id] = spec
        self._by_name[spec.name] = spec
        self.stats[spec.tenant_id] = TenantStats()
        if spec.rate_limit_rps is not None:
            self.buckets[spec.tenant_id] = TokenBucket(
                spec.rate_limit_rps, spec.rate_burst)

    def assign(self, service_id: int,
               tenant: Union[TenantSpec, int, str]) -> None:
        spec = self.get(tenant)
        self._service_tenant[service_id] = spec.tenant_id

    # -- lookup -------------------------------------------------------

    def get(self, tenant: Union[TenantSpec, int, str]) -> TenantSpec:
        if isinstance(tenant, TenantSpec):
            if self._tenants.get(tenant.tenant_id) is not tenant:
                raise KeyError(f"tenant {tenant.name!r} is not from this table")
            return tenant
        if isinstance(tenant, str):
            try:
                return self._by_name[tenant]
            except KeyError:
                raise KeyError(f"no tenant named {tenant!r}") from None
        try:
            return self._tenants[tenant]
        except KeyError:
            raise KeyError(f"no tenant id {tenant}") from None

    def tenant_for_service(self, service_id: int) -> TenantSpec:
        tid = self._service_tenant.get(service_id)
        if tid is None:
            return self._default()
        return self._tenants[tid]

    def _default(self) -> TenantSpec:
        spec = self._by_name.get(self.DEFAULT_NAME)
        if spec is None:
            spec = TenantSpec(0, self.DEFAULT_NAME)
            self._install(spec)
        return spec

    def services_of(self, tenant: Union[TenantSpec, int, str]) -> list:
        """Service ids bound to a tenant (for telemetry/load queries)."""
        tid = self.get(tenant).tenant_id
        return [sid for sid, owner in self._service_tenant.items()
                if owner == tid]

    def stats_for(self, tenant: Union[TenantSpec, int, str]) -> TenantStats:
        return self.stats[self.get(tenant).tenant_id]

    def bucket_for(self, tenant_id: int) -> Optional[TokenBucket]:
        return self.buckets.get(tenant_id)

    # -- actuation (repro.ctrl) ---------------------------------------

    def set_rate_limit(self, tenant: Union[TenantSpec, int, str],
                       rate_per_sec: Optional[float],
                       burst: Optional[float] = None) -> None:
        """Install, retune, or (with ``None``) remove a tenant's rate gate."""
        spec = self.get(tenant)
        if rate_per_sec is None:
            self.buckets.pop(spec.tenant_id, None)
            return
        bucket = self.buckets.get(spec.tenant_id)
        if bucket is None:
            self.buckets[spec.tenant_id] = TokenBucket(
                rate_per_sec, burst if burst is not None else spec.rate_burst)
        else:
            bucket.set_rate(rate_per_sec)
            if burst is not None:
                bucket.burst = float(burst)
                bucket.tokens = min(bucket.tokens, bucket.burst)

    # -- introspection ------------------------------------------------

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"<tenant>.<counter>": value}`` view for metrics probes."""
        out: Dict[str, float] = {}
        for spec in self._tenants.values():
            stats = self.stats[spec.tenant_id]
            for name in _STAT_FIELDS:
                out[f"{spec.name}.{name}"] = getattr(stats, name)
        return out

    def snapshot_by_id(self) -> Dict[str, float]:
        """Like :meth:`snapshot` but keyed ``"<tenant_id>.<counter>"``.

        Tenant ids are stable across renames and join-order, so these
        are the rows chartable tooling (sampler ``series()`` /
        ``rate_series()``) should key on.
        """
        out: Dict[str, float] = {}
        for spec in self._tenants.values():
            stats = self.stats[spec.tenant_id]
            for name in _STAT_FIELDS:
                out[f"{spec.tenant_id}.{name}"] = getattr(stats, name)
        return out
