"""Deficit-weighted round-robin arbitration of queued NIC work.

When a :class:`repro.tenancy.TenantTable` is attached, the NIC's
global backlog stops being one FIFO and becomes one FIFO *per tenant*
arbitrated by this scheduler: each tenant accumulates ``weight`` units
of deficit per round and spends one unit per request served, so under
contention tenant *i* receives a ``w_i / Σw`` share of dispatch slots
regardless of how fast anyone else is pushing.

The scheduler also keeps the evidence for the weighted-fairness
invariant (:mod:`repro.check.tenancy`): it tracks *contention spans* —
maximal intervals during which at least two tenants are continuously
backlogged — and, whenever a span member drains, verifies that
normalised service (served/weight) across members diverged by no more
than the DWRR bound.  Violations are recorded in
:attr:`fairness_problems`, never raised, matching the repo's
check-registry discipline.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """One FIFO per tenant; unit cost per item; quantum = weight."""

    def __init__(self, fairness_slack: float = 2.0):
        #: extra normalised-service divergence tolerated beyond the
        #: per-pair deficit carry-over (1/w_i + 1/w_j)
        self.fairness_slack = float(fairness_slack)
        self._queues: Dict[int, Deque] = {}
        self._weights: Dict[int, float] = {}
        self._deficit: Dict[int, float] = {}
        self._ring: List[int] = []
        self._cursor = 0
        #: all-time items served per tenant
        self.served: Dict[int, int] = {}
        self.fairness_problems: List[str] = []
        self._span_active = False
        self._span_members: Set[int] = set()
        self._span_served: Dict[int, int] = {}

    # -- membership ---------------------------------------------------

    def add_tenant(self, tenant_id: int, weight: float) -> None:
        if tenant_id in self._queues:
            return
        if weight <= 0:
            raise ValueError(f"tenant {tenant_id}: weight must be > 0")
        self._queues[tenant_id] = deque()
        self._weights[tenant_id] = float(weight)
        self._deficit[tenant_id] = 0.0
        self._ring.append(tenant_id)
        self.served[tenant_id] = 0

    # -- queue ops ----------------------------------------------------

    def push(self, tenant_id: int, item) -> None:
        q = self._queues[tenant_id]
        was_empty = not q
        q.append(item)
        if was_empty:
            self._maybe_start_span()

    def pop(self, eligible: Optional[Callable[[int], bool]] = None
            ) -> Optional[Tuple[int, object]]:
        """Serve the next item; ``eligible(tid)`` can veto tenants
        (budget gating).  Returns ``(tenant_id, item)`` or ``None``."""
        n = len(self._ring)
        if n == 0:
            return None
        candidates = [t for t in self._ring
                      if self._queues[t]
                      and (eligible is None or eligible(t))]
        if not candidates:
            return None
        min_w = min(self._weights[t] for t in candidates)
        # A candidate with weight w needs at most ceil(1/w) top-ups,
        # i.e. that many full rounds, before its deficit reaches one.
        max_visits = n * (int(1.0 / min_w) + 2)
        for _ in range(max_visits):
            tid = self._ring[self._cursor % n]
            q = self._queues[tid]
            if not q or (eligible is not None and not eligible(tid)):
                self._cursor = (self._cursor + 1) % n
                continue
            if self._deficit[tid] < 1.0:
                self._deficit[tid] += self._weights[tid]
            if self._deficit[tid] < 1.0:
                self._cursor = (self._cursor + 1) % n
                continue
            self._deficit[tid] -= 1.0
            item = q.popleft()
            self._note_serve(tid)
            if not q:
                # classic DWRR: an emptied flow forfeits its deficit
                self._deficit[tid] = 0.0
                self._note_empty(tid)
                self._cursor = (self._cursor + 1) % n
            elif self._deficit[tid] < 1.0:
                self._cursor = (self._cursor + 1) % n
            return tid, item
        raise AssertionError("DWRR scan failed to converge")  # unreachable

    def steal(self, tenant_id: int, predicate: Callable) -> Optional[object]:
        """Remove the first item of ``tenant_id``'s queue matching
        ``predicate`` *without* charging the arbiter (a user loop
        draining its own service's overflow consumes no shared dispatch
        slot).  The tenant leaves any open contention span: its arbiter
        ledger is no longer a fair sample, so the fairness claim is
        waived for it rather than falsely asserted."""
        q = self._queues.get(tenant_id)
        if not q:
            return None
        for index, item in enumerate(q):
            if predicate(item):
                del q[index]
                if not q:
                    self._deficit[tenant_id] = 0.0
                if self._span_active:
                    self._span_members.discard(tenant_id)
                    if len(self._span_members) < 2:
                        self._span_active = False
                        self._span_members = set()
                        self._span_served = {}
                        self._maybe_start_span()
                return item
        return None

    def force_serve(self, tenant_id: int):
        """Fault-injection hook (tests only): serve ``tenant_id``
        unconditionally, bypassing the deficit arbiter while keeping
        the fairness ledger honest — lets a check-teeth test prove the
        fairness invariant trips under a biased arbiter."""
        q = self._queues[tenant_id]
        item = q.popleft()
        self._note_serve(tenant_id)
        if not q:
            self._deficit[tenant_id] = 0.0
            self._note_empty(tenant_id)
        return item

    # -- introspection ------------------------------------------------

    def queued(self, tenant_id: int) -> int:
        return len(self._queues[tenant_id])

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def tenants(self) -> List[int]:
        return list(self._ring)

    # -- fairness spans -----------------------------------------------

    def _backlogged(self) -> List[int]:
        return [t for t in self._ring if self._queues[t]]

    def _maybe_start_span(self) -> None:
        if self._span_active:
            return
        backlogged = self._backlogged()
        if len(backlogged) >= 2:
            self._span_active = True
            self._span_members = set(backlogged)
            self._span_served = {t: 0 for t in backlogged}

    def _note_serve(self, tenant_id: int) -> None:
        self.served[tenant_id] += 1
        if self._span_active:
            self._span_served[tenant_id] = (
                self._span_served.get(tenant_id, 0) + 1)

    def _note_empty(self, tenant_id: int) -> None:
        if not self._span_active:
            return
        if tenant_id in self._span_members:
            # The leaver was continuously backlogged from span start
            # until this instant, so the DWRR bound applies to it.
            self._check_members()
            self._span_members.discard(tenant_id)
        if len(self._span_members) < 2:
            self._span_active = False
            self._span_members = set()
            self._span_served = {}
            self._maybe_start_span()

    def _check_members(self) -> None:
        members = sorted(self._span_members)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                wa, wb = self._weights[a], self._weights[b]
                na = self._span_served.get(a, 0) / wa
                nb = self._span_served.get(b, 0) / wb
                bound = 1.0 / wa + 1.0 / wb + self.fairness_slack
                if abs(na - nb) > bound:
                    self.fairness_problems.append(
                        f"tenants {a}/{b}: normalised service diverged "
                        f"{abs(na - nb):.2f} > bound {bound:.2f} "
                        f"(served {self._span_served.get(a, 0)}@w={wa} vs "
                        f"{self._span_served.get(b, 0)}@w={wb})")

    def check_fairness(self) -> List[str]:
        """Evaluate any still-open span and return all recorded problems."""
        if self._span_active and len(self._span_members) >= 2:
            self._check_members()
            self._span_active = False
            self._span_members = set()
            self._span_served = {}
        return list(self.fairness_problems)
