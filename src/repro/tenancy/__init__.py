"""Multi-tenant isolation for the Lauberhorn NIC.

The paper trusts the NIC as part of the OS; OSMOSIS (PAPERS.md) asks
what happens when many tenants *share* it — and shows that a shared
SmartNIC without per-tenant isolation lets one tenant's burst wreck
every other tenant's tail.  This package is the repo's answer:

* :class:`TenantSpec` / :class:`TenantTable` — tenant identity
  (weight, CONTROL-line budget, rate limit) attached to services at
  registration time;
* :class:`TokenBucket` — the per-tenant admission rate limiter the
  NIC consults at demux time, *before* paying for crypto or
  deserialisation;
* :class:`DeficitRoundRobin` — weighted-fair arbitration of queued
  work, replacing the global backlog's FIFO when tenants are
  configured;
* :class:`TenantStats` — the per-tenant charge ledger (CONTROL-line
  loads, Tryagain bounces, DMA fallbacks, rate-limit drops) surfaced
  through :class:`repro.obs.metrics.MetricsRegistry`.

Nothing here is imported, installed, or consulted unless a harness
attaches a :class:`TenantTable` to a :class:`LauberhornNic` — the
untenanted path is byte-identical to every build that predates this
package (enforced by the golden corpus and the E19–E23 digest pins).
"""

from .bucket import TokenBucket
from .dwrr import DeficitRoundRobin
from .spec import TenantSpec, TenantStats, TenantTable

__all__ = [
    "TenantSpec",
    "TenantStats",
    "TenantTable",
    "TokenBucket",
    "DeficitRoundRobin",
]
