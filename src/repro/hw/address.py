"""Physical address regions and a bump allocator.

The simulation models two classes of memory precisely enough for the
paper's mechanisms:

* *device-homed* coherent regions (NIC endpoint CONTROL/AUX lines,
  kernel<->NIC control channels) — tracked line-by-line by the
  coherence fabric;
* ordinary DRAM — charged parametric hit/miss costs without
  per-address tracking.

Addresses are plain integers; regions are half-open ``[base, end)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Region", "AddressAllocator", "align_down", "align_up"]


def align_down(addr: int, alignment: int) -> int:
    return addr - (addr % alignment)


def align_up(addr: int, alignment: int) -> int:
    return -(-addr // alignment) * alignment


@dataclass(frozen=True)
class Region:
    """A half-open physical address range ``[base, base+size)``."""

    base: int
    size: int
    name: str = ""

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if self.base < 0:
            raise ValueError(f"region base must be non-negative, got {self.base}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def __contains__(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end

    def lines(self, line_bytes: int):
        """Iterate the line-aligned addresses covering the region."""
        start = align_down(self.base, line_bytes)
        addr = start
        while addr < self.end:
            yield addr
            addr += line_bytes


class AddressAllocator:
    """Carves non-overlapping regions out of an address space."""

    def __init__(self, base: int = 0x1000_0000, alignment: int = 4096):
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        self._next = align_up(base, alignment)
        self.alignment = alignment
        self.regions: list[Region] = []

    def allocate(self, size: int, name: str = "") -> Region:
        """Allocate ``size`` bytes, aligned, never reused."""
        region = Region(self._next, size, name)
        self._next = align_up(region.end, self.alignment)
        self.regions.append(region)
        return region

    def find(self, addr: int) -> Region | None:
        """Return the allocated region containing ``addr``, if any."""
        for region in self.regions:
            if addr in region:
                return region
        return None
