"""Hardware models: cores, caches, coherence, interconnects (S2/S3)."""

from .address import AddressAllocator, Region, align_down, align_up
from .coherence import (
    CoherenceError,
    CoherenceFabric,
    CoherenceStats,
    FillResponse,
    HomeDevice,
    LineState,
    MemoryHome,
)
from .core import Core, CoreCounters
from .interconnect import DeviceLink, LinkStats
from .iommu import Iommu, IommuParams, IommuStats, PAGE_BYTES
from .machine import Machine
from .params import (
    CXL3,
    ECI,
    ENZIAN,
    ENZIAN_PCIE,
    MODERN_SERVER,
    MODERN_SERVER_CXL,
    PCIE_GEN3,
    PCIE_GEN5,
    CacheParams,
    CoreParams,
    InterconnectParams,
    MachineParams,
    NicParams,
    OsCostParams,
)

__all__ = [
    "AddressAllocator",
    "CXL3",
    "CacheParams",
    "CoherenceError",
    "CoherenceFabric",
    "CoherenceStats",
    "Core",
    "CoreCounters",
    "CoreParams",
    "DeviceLink",
    "ECI",
    "ENZIAN",
    "ENZIAN_PCIE",
    "FillResponse",
    "HomeDevice",
    "InterconnectParams",
    "Iommu",
    "IommuParams",
    "IommuStats",
    "PAGE_BYTES",
    "LineState",
    "LinkStats",
    "Machine",
    "MachineParams",
    "MemoryHome",
    "MODERN_SERVER",
    "MODERN_SERVER_CXL",
    "NicParams",
    "OsCostParams",
    "PCIE_GEN3",
    "PCIE_GEN5",
    "Region",
    "align_down",
    "align_up",
]
