"""CPU core model: cycle accounting plus memory-access timing.

A :class:`Core` does not fetch real instructions; software components
(the kernel model, RPC handlers, network stacks) *charge* it costs:

* ``execute(instructions)`` — straight-line code at the core's CPI;
* ``load_line/store_line`` — precise coherent accesses to device-homed
  lines via the :class:`~repro.hw.coherence.CoherenceFabric`;
* ``cache_access/dram_access`` — parametric costs for ordinary memory.

The core keeps three wall-clock buckets — *busy* (retiring
instructions), *stalled* (waiting on a memory/coherence fill), and
*idle* (halted) — which the energy model (E6) and the CPU-efficiency
results (E2-E4) are computed from.  A blocked load on a NIC-homed line
accrues *stall* time: the paper's point is that this is cheaper than
busy-spinning, which accrues *busy* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sim.engine import Simulator
from ..sim.trace import Tracer
from .coherence import CoherenceFabric
from .params import CacheParams, CoreParams

__all__ = ["CoreCounters", "Core"]


@dataclass
class CoreCounters:
    """Wall-clock buckets plus instruction/transaction counts."""

    busy_ns: float = 0.0
    stall_ns: float = 0.0
    instructions: int = 0
    loads: int = 0
    stores: int = 0

    def active_ns(self) -> float:
        return self.busy_ns + self.stall_ns

    def idle_ns(self, total_ns: float) -> float:
        return max(0.0, total_ns - self.active_ns())

    def snapshot(self) -> "CoreCounters":
        return CoreCounters(
            busy_ns=self.busy_ns,
            stall_ns=self.stall_ns,
            instructions=self.instructions,
            loads=self.loads,
            stores=self.stores,
        )

    def delta(self, earlier: "CoreCounters") -> "CoreCounters":
        return CoreCounters(
            busy_ns=self.busy_ns - earlier.busy_ns,
            stall_ns=self.stall_ns - earlier.stall_ns,
            instructions=self.instructions - earlier.instructions,
            loads=self.loads - earlier.loads,
            stores=self.stores - earlier.stores,
        )


class Core:
    """One CPU core: a clock, a cache cost model, and counters."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        core_params: CoreParams,
        cache_params: CacheParams,
        fabric: Optional[CoherenceFabric] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.id = core_id
        self.params = core_params
        self.cache = cache_params
        self.fabric = fabric
        self.tracer = tracer
        self.counters = CoreCounters()
        #: label of the software context currently charged (set by the OS)
        self.context: str = "idle"
        #: start time of an in-progress coherent-load stall, if any
        self._stall_open_since: Optional[float] = None

    def stall_ns_now(self) -> float:
        """Accumulated stall time including any stall still in progress
        (a blocked load parked at the NIC counts from its start)."""
        open_stall = (
            self.sim.now - self._stall_open_since
            if self._stall_open_since is not None
            else 0.0
        )
        return self.counters.stall_ns + open_stall

    def busy_ns_now(self) -> float:
        return self.counters.busy_ns

    # -- cost charging ----------------------------------------------------

    def instructions_ns(self, instructions: float) -> float:
        """Duration of ``instructions`` at this core's CPI, in ns."""
        return self.params.frequency.cycles_to_ns(instructions * self.params.cpi)

    def execute(self, instructions: float):
        """Charge straight-line code; generator."""
        duration = self.instructions_ns(instructions)
        self.counters.instructions += int(instructions)
        self.counters.busy_ns += duration
        yield self.sim.timeout(duration)
        return None

    def busy_ns(self, duration: float):
        """Charge an explicit busy interval (e.g. a copy loop); generator."""
        self.counters.busy_ns += duration
        yield self.sim.timeout(duration)
        return None

    # -- parametric ordinary-memory costs -----------------------------------

    def cache_hit(self, level: str = "l1"):
        """Charge an ordinary cached access (busy time); generator."""
        cycles = {
            "l1": self.cache.l1_hit_cycles,
            "l2": self.cache.l2_hit_cycles,
            "llc": self.cache.llc_hit_cycles,
        }[level]
        duration = self.params.frequency.cycles_to_ns(cycles)
        self.counters.loads += 1
        self.counters.busy_ns += duration
        yield self.sim.timeout(duration)
        return None

    def dram_access(self):
        """Charge a DRAM miss (stall time); generator."""
        self.counters.loads += 1
        self.counters.stall_ns += self.cache.dram_ns
        yield self.sim.timeout(self.cache.dram_ns)
        return None

    def cross_core_transfer(self):
        """Charge pulling a line from another core's cache; generator."""
        self.counters.loads += 1
        self.counters.stall_ns += self.cache.cross_core_ns
        yield self.sim.timeout(self.cache.cross_core_ns)
        return None

    # -- precise coherent accesses ------------------------------------------

    def load_line(self, addr: int):
        """Coherent load through the fabric; generator returning bytes.

        Stall time covers the whole fill, including any time the home
        device defers the answer (the Lauberhorn blocked load).
        """
        if self.fabric is None:
            raise RuntimeError(f"core {self.id} has no coherence fabric")
        self.counters.loads += 1
        start = self.sim.now
        self._stall_open_since = start
        try:
            data = yield from self.fabric.load(self.id, addr)
        finally:
            self._stall_open_since = None
        elapsed = self.sim.now - start
        if elapsed == 0.0:
            # Local cache hit: charge L1 latency as busy time.
            duration = self.params.frequency.cycles_to_ns(self.cache.l1_hit_cycles)
            self.counters.busy_ns += duration
            yield self.sim.timeout(duration)
        else:
            self.counters.stall_ns += elapsed
        return data

    def store_line(self, addr: int, data: bytes):
        """Coherent store through the fabric; generator."""
        if self.fabric is None:
            raise RuntimeError(f"core {self.id} has no coherence fabric")
        self.counters.stores += 1
        start = self.sim.now
        yield from self.fabric.store(self.id, addr, data)
        elapsed = self.sim.now - start
        if elapsed == 0.0:
            duration = self.params.frequency.cycles_to_ns(self.cache.l1_hit_cycles)
            self.counters.busy_ns += duration
            yield self.sim.timeout(duration)
        else:
            self.counters.stall_ns += elapsed
        return None

    def posted_store_line(self, addr: int, data: bytes):
        """Write-combining store of a line to its home device; generator.

        The core only pays the store-buffer drain; the payload lands at
        the device one transfer later (no ownership round trip) — the
        CPU->device half of [21]'s PIO protocol.
        """
        if self.fabric is None:
            raise RuntimeError(f"core {self.id} has no coherence fabric")
        self.counters.stores += 1
        drain_ns = 25.0
        self.counters.busy_ns += drain_ns
        yield self.sim.timeout(drain_ns)
        # Fire-and-forget delivery (posted_write is synchronous from the
        # core's perspective).
        for _ in self.fabric.posted_write(self.id, addr, data):
            pass  # pragma: no cover - posted_write yields nothing
        return None

    def load_lines(self, addrs):
        """Streamed coherent loads with memory-level parallelism.

        Fills are issued in batches of ``cache.mlp``; within a batch the
        round trips overlap, so a batch costs one fill latency rather
        than ``mlp``.  Generator returning the line contents in order.
        """
        if self.fabric is None:
            raise RuntimeError(f"core {self.id} has no coherence fabric")
        from ..sim.engine import AllOf

        results: dict[int, bytes] = {}
        start = self.sim.now
        self._stall_open_since = start
        try:
            batch_size = max(1, self.cache.mlp)
            addr_list = list(addrs)
            for base in range(0, len(addr_list), batch_size):
                batch = addr_list[base : base + batch_size]
                fills = []
                for addr in batch:
                    self.counters.loads += 1

                    def one(addr=addr):
                        data = yield from self.fabric.load(self.id, addr)
                        results[addr] = data

                    fills.append(self.sim.process(one()))
                yield AllOf(self.sim, fills)
        finally:
            self._stall_open_since = None
        self.counters.stall_ns += self.sim.now - start
        return [results[addr] for addr in addrs]

    def evict_line(self, addr: int):
        """Cache-maintenance eviction of a coherent line; generator.

        Clean lines cost one pipeline flush's worth of busy time; dirty
        lines additionally write back over the link (fabric-charged).
        """
        if self.fabric is None:
            raise RuntimeError(f"core {self.id} has no coherence fabric")
        flush_ns = self.params.frequency.cycles_to_ns(self.cache.l1_hit_cycles)
        self.counters.busy_ns += flush_ns
        yield self.sim.timeout(flush_ns)
        start = self.sim.now
        yield from self.fabric.evict(self.id, addr)
        self.counters.stall_ns += self.sim.now - start
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Core {self.id} ctx={self.context!r}>"
