"""Device link model: MMIO, DMA, and interrupt delivery timing.

A :class:`DeviceLink` wraps an :class:`~repro.hw.params.InterconnectParams`
and charges the right party for each primitive:

* **MMIO read** — an uncached load across the link: the *core* stalls
  for a full round trip (this is why doorbell-read-based designs hurt).
* **MMIO write** — posted: the core only pays a store-buffer cost; the
  write lands at the device after the one-way latency.
* **DMA read/write** — the *device* moves ``n`` bytes to/from host
  DRAM: fixed setup plus serialisation at link bandwidth plus one-way
  latency (descriptor fetches are separate DMA reads, as in real NICs).
* **Interrupt** — MSI-X style: device-side raise cost plus one-way
  delivery to the target core's interrupt controller.

Coherent-line transfers are *not* here — they go through
:class:`~repro.hw.coherence.CoherenceFabric`, which models them at line
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.clock import bytes_time_ns
from ..sim.engine import Simulator
from .core import Core
from .params import InterconnectParams

__all__ = ["LinkStats", "DeviceLink"]

# Cost (ns) for a posted MMIO store to clear the core's store buffer.
_POSTED_WRITE_CORE_NS = 20.0


@dataclass
class LinkStats:
    """Traffic counters over the device link."""

    mmio_reads: int = 0
    mmio_writes: int = 0
    dma_reads: int = 0
    dma_writes: int = 0
    dma_bytes: int = 0
    interrupts: int = 0


class DeviceLink:
    """Timing model of a CPU<->device interconnect."""

    def __init__(self, sim: Simulator, params: InterconnectParams):
        self.sim = sim
        self.params = params
        self.stats = LinkStats()
        #: optional IOMMU; DMA ops that carry an address translate
        #: through it.  A *trusted* device passes no address (the
        #: paper's position for the NIC) and skips translation.
        self.iommu = None

    # -- CPU-side primitives (charge the core) -----------------------------

    def mmio_read(self, core: Core):
        """Uncached load from a device register; generator -> None."""
        self.stats.mmio_reads += 1
        core.counters.loads += 1
        core.counters.stall_ns += self.params.mmio_read_ns
        yield self.sim.timeout(self.params.mmio_read_ns)
        return None

    def mmio_write(self, core: Core):
        """Posted store to a device register; generator -> None.

        The core resumes after draining its store buffer; the value
        arrives at the device ``one_way_ns`` later, which callers model
        by scheduling the device reaction with :meth:`posted_delay_ns`.
        """
        self.stats.mmio_writes += 1
        core.counters.stores += 1
        core.counters.busy_ns += _POSTED_WRITE_CORE_NS
        yield self.sim.timeout(_POSTED_WRITE_CORE_NS)
        return None

    def posted_delay_ns(self) -> float:
        """Time from a posted MMIO write retiring to device visibility."""
        return self.params.mmio_write_ns

    # -- device-side primitives ---------------------------------------------

    def dma_read(self, nbytes: int, addr: int | None = None):
        """Device fetches ``nbytes`` from host memory; generator.

        With an IOMMU installed and an ``addr`` given, the access
        translates first (IOTLB hit or page walk).
        """
        self.stats.dma_reads += 1
        self.stats.dma_bytes += nbytes
        if self.iommu is not None and addr is not None:
            yield from self.iommu.translate(addr, nbytes)
        delay = (
            self.params.dma_setup_ns
            + self.params.one_way_ns  # request reaches host
            + self.params.one_way_ns  # data starts arriving back
            + bytes_time_ns(nbytes, self.params.bandwidth_bps)
        )
        yield self.sim.timeout(delay)
        return None

    def dma_write(self, nbytes: int, addr: int | None = None):
        """Device pushes ``nbytes`` into host memory; generator."""
        self.stats.dma_writes += 1
        self.stats.dma_bytes += nbytes
        if self.iommu is not None and addr is not None:
            yield from self.iommu.translate(addr, nbytes)
        delay = (
            self.params.dma_setup_ns
            + self.params.one_way_ns
            + bytes_time_ns(nbytes, self.params.bandwidth_bps)
        )
        yield self.sim.timeout(delay)
        return None

    def raise_interrupt(self, raise_cost_ns: float):
        """MSI-X delivery from device to host; generator."""
        self.stats.interrupts += 1
        yield self.sim.timeout(raise_cost_ns + self.params.one_way_ns)
        return None
