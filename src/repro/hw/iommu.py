"""IOMMU/SMMU model: the cost of not trusting the NIC.

Section 3 of the paper: "the introduction of IOMMUs and SMMUs has led
to a philosophy that, as far as possible the NIC should not be trusted
as a device" — an anomaly, given that CPUs, DRAM, and disks are
trusted.  The enforcement is not free: every DMA translates through an
IOTLB backed by page-table walks, and the IOTLB is small enough that
descriptor rings thrash it.

The model: an LRU IOTLB of ``iotlb_entries`` page translations.  A hit
costs ``lookup_ns``; a miss adds a table walk (``walk_ns``, covering a
multi-level walk with partial walk caches).  A *trusted* device — the
paper's position for the NIC — bypasses translation entirely, which is
exactly how the Lauberhorn device is wired up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..sim.engine import Simulator

__all__ = ["IommuParams", "IommuStats", "Iommu", "PAGE_BYTES"]

PAGE_BYTES = 4096


@dataclass(frozen=True)
class IommuParams:
    """Translation cost knobs (server-class SMMU regime)."""

    iotlb_entries: int = 64
    lookup_ns: float = 25.0
    walk_ns: float = 600.0


@dataclass
class IommuStats:
    lookups: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return 1.0 - self.misses / self.lookups


class Iommu:
    """An IOTLB with LRU replacement over page-granular translations."""

    def __init__(self, sim: Simulator, params: IommuParams = IommuParams()):
        if params.iotlb_entries <= 0:
            raise ValueError("iotlb_entries must be positive")
        self.sim = sim
        self.params = params
        self.stats = IommuStats()
        self._iotlb: OrderedDict[int, bool] = OrderedDict()

    def pages_of(self, addr: int, nbytes: int) -> range:
        """Page numbers covering ``[addr, addr+nbytes)``."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first = addr // PAGE_BYTES
        last = (addr + nbytes - 1) // PAGE_BYTES
        return range(first, last + 1)

    def translate(self, addr: int, nbytes: int):
        """Translate a DMA's address range; generator charging time."""
        for page in self.pages_of(addr, nbytes):
            self.stats.lookups += 1
            delay = self.params.lookup_ns
            if page in self._iotlb:
                self._iotlb.move_to_end(page)
            else:
                self.stats.misses += 1
                delay += self.params.walk_ns
                self._iotlb[page] = True
                if len(self._iotlb) > self.params.iotlb_entries:
                    self._iotlb.popitem(last=False)
            yield self.sim.timeout(delay)
        return None

    def invalidate(self, addr: int, nbytes: int) -> None:
        """Unmap (strict-mode DMA API): drop the IOTLB entries."""
        for page in self.pages_of(addr, nbytes):
            if self._iotlb.pop(page, None) is not None:
                self.stats.invalidations += 1
