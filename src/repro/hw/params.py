"""Calibration parameters for the simulated hardware.

Every latency/size constant that the experiments depend on lives here,
with the source it was calibrated from.  The paper's claims are about
*relative* costs (interconnect round trips vs. DMA descriptor round
trips vs. software path lengths), so the absolute values only need to
sit in the right regime; sources:

* Ruzhanskaia et al., "Rethinking Programmed I/O for Fast Devices,
  Cheap Cores, and Coherent Interconnects" (arXiv:2409.08141) — ECI
  blocked-load round trips in the hundreds of ns; PCIe MMIO read
  ~800 ns; PCIe DMA descriptor round trip for small messages ~3 us.
* CC-NIC (ASPLOS'24) — UPI/coherent-interconnect NIC emulation numbers.
* Enzian (ASPLOS'22) — 48-core ThunderX-1 @ 2.0 GHz, 128 B cache
  lines on the ECI link.
* The paper itself — 15 ms Tryagain timeout, ~4 KiB DMA crossover,
  100 Gb/s links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.clock import GHZ, MS, US, Frequency

__all__ = [
    "InterconnectParams",
    "CacheParams",
    "CoreParams",
    "OsCostParams",
    "NicParams",
    "MachineParams",
    "ENZIAN",
    "MODERN_SERVER",
    "ENZIAN_PCIE",
]


@dataclass(frozen=True)
class InterconnectParams:
    """Latency/bandwidth of the CPU<->device interconnect."""

    name: str
    # One-way latency of a single transfer unit (flit/TLP) CPU->device.
    one_way_ns: float
    # Size of the coherent transfer unit (cache line) in bytes; None for
    # non-coherent links such as PCIe.
    line_bytes: int | None
    # Sustained data bandwidth in bytes/sec (payload, post-overhead).
    bandwidth_bps: float
    # MMIO (uncached load/store to device BAR) costs; loads are round
    # trips, stores are posted.
    mmio_read_ns: float = 0.0
    mmio_write_ns: float = 0.0
    # Per-DMA-transaction fixed overhead (descriptor fetch engine,
    # tag allocation, completion generation).
    dma_setup_ns: float = 0.0

    @property
    def coherent(self) -> bool:
        return self.line_bytes is not None


@dataclass(frozen=True)
class CacheParams:
    """First-order cache hierarchy costs (in core cycles)."""

    line_bytes: int = 64
    l1_hit_cycles: int = 4
    l2_hit_cycles: int = 14
    llc_hit_cycles: int = 40
    dram_ns: float = 90.0
    # Cost of a coherence transfer from another core's cache.
    cross_core_ns: float = 60.0
    # Sequential DRAM copy bandwidth (streaming reads with prefetch).
    dram_bandwidth_bps: float = 25.6e9
    # Memory-level parallelism: outstanding line fills a core sustains
    # when streaming (prefetchable) device-homed lines.
    mlp: int = 8


@dataclass(frozen=True)
class CoreParams:
    """A CPU core's clock and pipeline abstraction."""

    frequency: Frequency = field(default_factory=lambda: GHZ(2.0))
    # Average cycles-per-instruction for straight-line kernel/user code.
    cpi: float = 1.0


@dataclass(frozen=True)
class OsCostParams:
    """Software path-length costs, in *instructions* at CoreParams.cpi.

    Calibrated from published microbenchmarks of Linux on server-class
    ARM/x86 parts (syscall ~100-200 ns, context switch ~1-2 us,
    IPI delivery ~1 us).
    """

    syscall_instructions: int = 300
    context_switch_instructions: int = 3000
    interrupt_entry_instructions: int = 600
    ipi_deliver_ns: float = 1.0 * US
    softirq_instructions: int = 1200
    # Socket layer: skb alloc, queue, copy-to-user bookkeeping.
    socket_rx_instructions: int = 2500
    socket_wakeup_instructions: int = 900
    socket_copy_instructions: int = 500
    socket_tx_instructions: int = 2200
    scheduler_pick_instructions: int = 500
    timer_tick_ns: float = 1.0 * MS


@dataclass(frozen=True)
class NicParams:
    """Costs internal to the NIC datapath (any NIC flavour)."""

    # Streaming header decode (Ethernet+IP+UDP) through the pipeline.
    parse_ns: float = 25.0
    # Flow/endpoint table lookup.
    demux_ns: float = 15.0
    # RPC unmarshal offload per 64 B of payload (Optimus-Prime-like).
    deserialize_ns_per_64b: float = 4.0
    # Descriptor ring processing on the NIC side (DMA NICs).
    descriptor_process_ns: float = 40.0
    # Interrupt generation cost (MSI-X write) on the device.
    interrupt_raise_ns: float = 100.0
    # Lauberhorn: Tryagain timeout for blocked loads (paper: 15 ms).
    tryagain_timeout_ns: float = 15.0 * MS
    # Fixed cost of a DMA-fallback delivery beyond the bulk transfer:
    # buffer allocation, IOMMU map, descriptor programming, completion.
    dma_fallback_fixed_ns: float = 2500.0
    # Lauberhorn: cycles of NIC pipeline to compose a CONTROL line.
    compose_line_ns: float = 10.0
    # Host driver path lengths (instructions) for descriptor NICs.
    driver_rx_instructions: int = 600
    driver_tx_instructions: int = 500
    # Kernel-bypass PMD path lengths (instructions): poll-mode drivers
    # touch descriptors directly in user space with no syscalls.
    pmd_poll_instructions: int = 60
    pmd_rx_instructions: int = 250
    pmd_tx_instructions: int = 220
    # RX descriptor ring depth per queue.
    rx_ring_entries: int = 1024
    # Completion descriptor size DMA'd per received frame.
    descriptor_bytes: int = 32


@dataclass(frozen=True)
class MachineParams:
    """A complete machine preset."""

    name: str
    n_cores: int
    core: CoreParams
    cache: CacheParams
    os_costs: OsCostParams
    nic: NicParams
    interconnect: InterconnectParams
    link_bps: float = 100e9 / 8  # 100 Gb/s network link, bytes/sec


# --- Interconnect presets -------------------------------------------------

#: Enzian Coherence Interface: 128 B lines, ~few hundred ns per one-way
#: line transfer.  A blocked-load round trip (load request -> NIC
#: response) lands around 700-800 ns, matching [21].
ECI = InterconnectParams(
    name="eci",
    one_way_ns=350.0,
    line_bytes=128,
    bandwidth_bps=30e9,  # ECI sustains ~30 GB/s
    mmio_read_ns=700.0,
    mmio_write_ns=350.0,
    dma_setup_ns=150.0,
)

#: CXL.mem 3.0 projection: 64 B lines, lower per-line latency than ECI.
CXL3 = InterconnectParams(
    name="cxl3",
    one_way_ns=125.0,
    line_bytes=64,
    bandwidth_bps=56e9,  # x8 CXL 3.0
    mmio_read_ns=250.0,
    mmio_write_ns=125.0,
    dma_setup_ns=100.0,
)

#: PCIe Gen3 x16 as found on Enzian's ThunderX socket: MMIO read ~800ns,
#: posted write ~300ns, DMA engine with descriptor fetch round trips.
PCIE_GEN3 = InterconnectParams(
    name="pcie3",
    one_way_ns=300.0,
    line_bytes=None,
    bandwidth_bps=12.5e9,
    mmio_read_ns=800.0,
    mmio_write_ns=300.0,
    dma_setup_ns=200.0,
)

#: PCIe Gen5 x16 on a modern server: lower latency, much more bandwidth.
PCIE_GEN5 = InterconnectParams(
    name="pcie5",
    one_way_ns=200.0,
    line_bytes=None,
    bandwidth_bps=55e9,
    mmio_read_ns=500.0,
    mmio_write_ns=200.0,
    dma_setup_ns=120.0,
)


# --- Machine presets ------------------------------------------------------

#: Enzian: 48-core Cavium ThunderX-1 @ 2 GHz, ECI to the FPGA.
ENZIAN = MachineParams(
    name="enzian-eci",
    n_cores=48,
    core=CoreParams(frequency=GHZ(2.0), cpi=1.2),
    cache=CacheParams(line_bytes=128),
    os_costs=OsCostParams(),
    nic=NicParams(),
    interconnect=ECI,
)

#: Enzian's CPU socket talking to a conventional PCIe Gen3 NIC.
ENZIAN_PCIE = MachineParams(
    name="enzian-pcie",
    n_cores=48,
    core=CoreParams(frequency=GHZ(2.0), cpi=1.2),
    cache=CacheParams(line_bytes=128),
    os_costs=OsCostParams(),
    nic=NicParams(),
    interconnect=PCIE_GEN3,
)

#: A modern PC server: 64 cores @ 3 GHz, PCIe Gen5 NIC.
MODERN_SERVER = MachineParams(
    name="modern-pcie",
    n_cores=64,
    core=CoreParams(frequency=GHZ(3.0), cpi=0.8),
    cache=CacheParams(line_bytes=64),
    os_costs=OsCostParams(
        syscall_instructions=250,
        context_switch_instructions=2500,
        interrupt_entry_instructions=500,
    ),
    nic=NicParams(),
    interconnect=PCIE_GEN5,
)

#: The same modern server with a CXL 3.0 coherent NIC (projection).
MODERN_SERVER_CXL = MachineParams(
    name="modern-cxl3",
    n_cores=64,
    core=CoreParams(frequency=GHZ(3.0), cpi=0.8),
    cache=CacheParams(line_bytes=64),
    os_costs=OsCostParams(
        syscall_instructions=250,
        context_switch_instructions=2500,
        interrupt_entry_instructions=500,
    ),
    nic=NicParams(),
    interconnect=CXL3,
)
