"""A MESI-style coherence fabric for device-homed cache lines.

This is the mechanism the whole paper rests on: with a cache-coherent
peripheral interconnect (ECI, CXL.mem 3.0), the NIC *homes* a set of
cache lines.  A CPU load of such a line travels to the device, and the
device chooses when to answer — so a core's ordinary ``load``
instruction becomes a blocking wait for the next RPC (the "stalled
load" of Section 5.1), with no spinning and no interrupt.  The device
can likewise *fetch exclusive* a line to pull a freshly written RPC
response straight out of the CPU's cache.

The fabric tracks, per line: the home device, the home's copy of the
data, and which caches hold the line in which MESI state.  Ordinary
DRAM is a home too (:class:`MemoryHome`) — it simply answers fills
after a fixed latency.

Timing model (one `transfer` = one line-sized message on the link):

* cache hit: no fabric involvement (the core model charges L1 cost);
* fill from home:  request flit one way + home service time + line
  transfer back;
* upgrade (S->M) or write-allocate: request + invalidations + ack;
* device recall (fetch exclusive): request to holder + line back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.clock import bytes_time_ns
from ..sim.engine import Event, SimulationError, Simulator
from .address import Region
from .params import InterconnectParams

__all__ = [
    "LineState",
    "CoherenceError",
    "FillResponse",
    "HomeDevice",
    "MemoryHome",
    "CoherenceFabric",
    "CoherenceStats",
]


class CoherenceError(SimulationError):
    """Protocol violation in the coherence fabric."""


class LineState(enum.Enum):
    """MESI state of a line in one cache."""

    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"
    MODIFIED = "M"


@dataclass
class FillResponse:
    """What a home returns for a fill: payload plus grant state."""

    data: bytes
    exclusive: bool = True


class HomeDevice:
    """Interface a device implements to home coherent lines.

    ``service_fill`` may return an already-succeeded event (immediate
    answer, e.g. DRAM) or a pending one (the Lauberhorn blocked load).
    """

    def service_fill(
        self, core_id: int, addr: int, for_write: bool
    ) -> Event:  # pragma: no cover - interface
        """Return an Event that fires with a :class:`FillResponse`."""
        raise NotImplementedError

    def on_writeback(self, addr: int, data: bytes) -> None:
        """A modified line was written back to the home copy."""

    def service_time_ns(self) -> float:
        """Fixed per-request service latency inside the device."""
        return 0.0


@dataclass
class CoherenceStats:
    """Fabric-level transaction counters (bus-traffic proxy for E6)."""

    fills: int = 0
    upgrades: int = 0
    invalidations: int = 0
    recalls: int = 0
    writebacks: int = 0
    line_transfers: int = 0

    def total_transactions(self) -> int:
        return self.fills + self.upgrades + self.recalls + self.writebacks


@dataclass
class _Line:
    home: HomeDevice
    data: bytearray
    # cache/core id -> state (only non-INVALID holders are stored)
    holders: dict[int, LineState] = field(default_factory=dict)
    # core ids with a fill outstanding (blocked loads waiting on home)
    pending_fills: set[int] = field(default_factory=set)

    def owner(self) -> Optional[int]:
        for core, state in self.holders.items():
            if state in (LineState.EXCLUSIVE, LineState.MODIFIED):
                return core
        return None


class MemoryHome(HomeDevice):
    """DRAM as a home: answers every fill after a fixed latency."""

    def __init__(self, sim: Simulator, latency_ns: float = 90.0):
        self.sim = sim
        self.latency_ns = latency_ns

    def service_fill(self, core_id: int, addr: int, for_write: bool) -> Event:
        event = Event(self.sim)
        event.succeed(FillResponse(data=b"", exclusive=True))
        return event

    def service_time_ns(self) -> float:
        return self.latency_ns


class CoherenceFabric:
    """Tracks device-homed lines and mediates CPU<->device transfers."""

    def __init__(self, sim: Simulator, interconnect: InterconnectParams):
        if not interconnect.coherent:
            raise CoherenceError(
                f"interconnect {interconnect.name!r} is not cache-coherent"
            )
        self.sim = sim
        self.params = interconnect
        self.line_bytes = interconnect.line_bytes
        self.stats = CoherenceStats()
        self._lines: dict[int, _Line] = {}
        self._regions: list[tuple[Region, HomeDevice]] = []

    # -- registration ---------------------------------------------------

    def register_home(self, region: Region, device: HomeDevice) -> None:
        """Declare ``device`` the home of every line in ``region``."""
        for existing, _dev in self._regions:
            if existing.overlaps(region):
                raise CoherenceError(
                    f"region {region} overlaps existing home {existing}"
                )
        self._regions.append((region, device))
        for addr in region.lines(self.line_bytes):
            self._lines[addr] = _Line(
                home=device, data=bytearray(self.line_bytes)
            )

    def is_homed(self, addr: int) -> bool:
        return self._line_addr(addr) in self._lines

    def _line_addr(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _line(self, addr: int) -> _Line:
        line = self._lines.get(self._line_addr(addr))
        if line is None:
            raise CoherenceError(f"address {addr:#x} has no registered home")
        return line

    def holder_state(self, core_id: int, addr: int) -> LineState:
        line = self._lines.get(self._line_addr(addr))
        if line is None:
            return LineState.INVALID
        return line.holders.get(core_id, LineState.INVALID)

    # -- timing helpers ---------------------------------------------------

    def _transfer_ns(self) -> float:
        """Time for one line-sized payload on the link."""
        self.stats.line_transfers += 1
        return self.params.one_way_ns + bytes_time_ns(
            self.line_bytes, self.params.bandwidth_bps
        )

    def _request_ns(self) -> float:
        """Time for a dataless request/ack flit one way."""
        return self.params.one_way_ns

    # -- CPU-side operations (generators; drive via sim.process) ---------

    def load(self, core_id: int, addr: int):
        """Core ``core_id`` loads the line at ``addr``.

        Generator yielding sim events; returns the line's bytes.  If the
        core already holds the line this is a pure cache hit and costs
        nothing at the fabric level (the core model charges L1 latency).
        A miss goes to the home, which may *defer* the answer — this is
        the Lauberhorn blocked load.
        """
        line = self._line(addr)
        state = line.holders.get(core_id, LineState.INVALID)
        if state is not LineState.INVALID:
            return bytes(line.data)

        self.stats.fills += 1
        line.pending_fills.add(core_id)
        try:
            yield self.sim.timeout(self._request_ns())
            service = line.home.service_time_ns()
            if service:
                yield self.sim.timeout(service)
            response: FillResponse = yield line.home.service_fill(
                core_id, addr, for_write=False
            )
            yield self.sim.timeout(self._transfer_ns())
        finally:
            line.pending_fills.discard(core_id)

        if response.data:
            self._install_home_data(line, response.data)
        grant_exclusive = response.exclusive and not line.holders
        line.holders[core_id] = (
            LineState.EXCLUSIVE if grant_exclusive else LineState.SHARED
        )
        if not grant_exclusive:
            # Demote any exclusive holder to shared.
            for holder, holder_state in list(line.holders.items()):
                if holder != core_id and holder_state in (
                    LineState.EXCLUSIVE,
                    LineState.MODIFIED,
                ):
                    if holder_state is LineState.MODIFIED:
                        self.stats.writebacks += 1
                    line.holders[holder] = LineState.SHARED
        return bytes(line.data)

    def store(self, core_id: int, addr: int, data: bytes):
        """Core ``core_id`` writes ``data`` into the line at ``addr``.

        Generator; acquires ownership if needed (request + invalidation
        round trip), then updates the line.  Writes shorter than the
        line are merged at the line offset implied by ``addr``.
        """
        line = self._line(addr)
        state = line.holders.get(core_id, LineState.INVALID)
        if state in (LineState.EXCLUSIVE, LineState.MODIFIED):
            pass  # silent upgrade, local write
        else:
            self.stats.upgrades += 1
            yield self.sim.timeout(self._request_ns())
            # Home invalidates all other holders.
            for holder in list(line.holders):
                if holder != core_id:
                    del line.holders[holder]
                    self.stats.invalidations += 1
            if state is LineState.INVALID:
                # Write-allocate: line travels to the requester.
                yield self.sim.timeout(self._transfer_ns())
            else:
                yield self.sim.timeout(self._request_ns())  # upgrade ack
        line.holders[core_id] = LineState.MODIFIED
        self._merge(line, addr, data)
        return None

    def evict(self, core_id: int, addr: int):
        """Core drops the line (capacity/context eviction); generator."""
        line = self._line(addr)
        state = line.holders.pop(core_id, LineState.INVALID)
        if state is LineState.MODIFIED:
            self.stats.writebacks += 1
            yield self.sim.timeout(self._transfer_ns())
            line.home.on_writeback(self._line_addr(addr), bytes(line.data))
        return None

    def posted_write(self, core_id: int, addr: int, data: bytes):
        """Write-combining (non-temporal) store straight to the home.

        The mechanism [21] uses for the CPU->device direction: the core
        does not acquire ownership; the line-sized payload is pushed to
        the home asynchronously.  Generator returning immediately after
        the store buffer drains; the home copy updates (and
        ``on_writeback`` fires) one transfer later.
        """
        line = self._line(addr)
        # Any cached copies are stale after this write.
        for holder in list(line.holders):
            del line.holders[holder]
            self.stats.invalidations += 1
        transfer = self._transfer_ns()

        def deliver():
            yield self.sim.timeout(transfer)
            self._merge(line, addr, data)
            line.home.on_writeback(self._line_addr(addr), bytes(line.data))

        self.sim.process(deliver())
        return None
        yield  # pragma: no cover - generator form for API symmetry

    # -- device-side operations ------------------------------------------

    def device_recall(self, addr: int):
        """The home pulls the line back, invalidating all holders.

        Generator returning the freshest data (the paper's *fetch
        exclusive* used to extract the RPC response from the CPU cache).
        """
        line = self._line(addr)
        self.stats.recalls += 1
        owner = line.owner()
        yield self.sim.timeout(self._request_ns())
        if owner is not None and line.holders.get(owner) is LineState.MODIFIED:
            # Dirty data travels back over the link.
            yield self.sim.timeout(self._transfer_ns())
        for holder in list(line.holders):
            del line.holders[holder]
            self.stats.invalidations += 1
        return bytes(line.data)

    def device_claim(self, addr: int) -> tuple[bytes, bool]:
        """Fetch-exclusive with decoupled timing: the invalidation takes
        effect immediately (interconnect channel ordering guarantees it
        reaches holders before any later message from this home), and
        the *data* transfer time is charged by the caller via
        :meth:`claim_transfer_ns`.

        Returns ``(data, was_dirty)``.  Used by the Lauberhorn response
        extraction so it can overlap with the next delivery without the
        stale-line race.
        """
        line = self._line(addr)
        self.stats.recalls += 1
        was_dirty = any(
            state is LineState.MODIFIED for state in line.holders.values()
        )
        for holder in list(line.holders):
            del line.holders[holder]
            self.stats.invalidations += 1
        if was_dirty:
            self.stats.line_transfers += 1
        return bytes(line.data), was_dirty

    def claim_transfer_ns(self, was_dirty: bool) -> float:
        """Wire time before claimed data is usable at the home: the
        recall request one way, plus the dirty line coming back."""
        delay = self.params.one_way_ns
        if was_dirty:
            delay += self.params.one_way_ns + bytes_time_ns(
                self.line_bytes, self.params.bandwidth_bps
            )
        return delay

    def device_write(self, addr: int, data: bytes) -> None:
        """The home updates its copy (no holders may exist).

        Used by the NIC to stage a CONTROL line before answering a
        pending fill; instantaneous because it is local to the device.
        """
        line = self._line(addr)
        if line.holders:
            raise CoherenceError(
                f"device_write to {addr:#x} while held by {sorted(line.holders)}"
            )
        self._merge(line, addr, data)

    def device_peek(self, addr: int) -> bytes:
        """Read the home copy without coherence actions (device-local)."""
        return bytes(self._line(addr).data)

    def pending_loaders(self, addr: int) -> frozenset[int]:
        """Cores with a fill outstanding on this line (for Tryagain)."""
        return frozenset(self._line(addr).pending_fills)

    def has_holders(self, addr: int) -> bool:
        """True when any cache holds the line (device must recall before
        rewriting it)."""
        return bool(self._line(addr).holders)

    # -- internals ---------------------------------------------------------

    def _install_home_data(self, line: _Line, data: bytes) -> None:
        if len(data) > self.line_bytes:
            raise CoherenceError(
                f"fill data of {len(data)} B exceeds line size {self.line_bytes}"
            )
        line.data[: len(data)] = data

    def _merge(self, line: _Line, addr: int, data: bytes) -> None:
        offset = addr % self.line_bytes
        if offset + len(data) > self.line_bytes:
            raise CoherenceError(
                f"write of {len(data)} B at offset {offset} crosses line boundary"
            )
        line.data[offset : offset + len(data)] = data
