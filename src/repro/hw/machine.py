"""Machine assembly: cores + interconnect + coherence + tracing.

A :class:`Machine` is the root object every experiment builds: it owns
the simulator, the cores, the device link, and (when the interconnect
is cache-coherent) the coherence fabric.  NIC models and the OS model
attach to it.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.trace import Tracer
from .address import AddressAllocator
from .coherence import CoherenceFabric
from .core import Core
from .interconnect import DeviceLink
from .params import MachineParams

__all__ = ["Machine"]


class Machine:
    """A simulated server: cores, caches, interconnect, clock."""

    def __init__(
        self,
        params: MachineParams,
        seed: int = 0,
        trace: bool = True,
        sim: Optional[Simulator] = None,
        faults=None,
    ):
        self.params = params
        # Multi-machine setups share one simulator (one virtual clock).
        self.sim = sim if sim is not None else Simulator()
        self.tracer = Tracer(self.sim, enabled=trace)
        self.rng = RngRegistry(seed)
        self.alloc = AddressAllocator()
        self.link = DeviceLink(self.sim, params.interconnect)
        self.fabric: Optional[CoherenceFabric] = (
            CoherenceFabric(self.sim, params.interconnect)
            if params.interconnect.coherent
            else None
        )
        self.cores = [
            Core(
                self.sim,
                core_id,
                params.core,
                params.cache,
                fabric=self.fabric,
                tracer=self.tracer,
            )
            for core_id in range(params.n_cores)
        ]
        # Fault injection: an explicit plan wins; otherwise consult the
        # ambient one (repro.faults.active / the REPRO_FAULTS env var).
        # A machine built with no plan anywhere carries faults=None and
        # executes exactly the pre-fault code paths.
        if faults is None:
            from ..faults.context import active_plan

            faults = active_plan()
        self.faults = faults if faults is not None and faults.active else None
        self.fault_stats = None
        if self.faults is not None:
            from ..faults.inject import install_machine_faults

            install_machine_faults(self, self.faults)

    @property
    def coherent(self) -> bool:
        return self.fabric is not None

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def run(self, until=None):
        """Run the machine's simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)

    def bind_metrics(self, registry, prefix: str = "machine") -> None:
        """Register machine-wide and per-core counters as live probes
        on a :class:`repro.obs.MetricsRegistry` (read at snapshot time,
        never on the data path)."""
        registry.probe(prefix, lambda: {
            "busy_ns": self.total_busy_ns(),
            "stall_ns": self.total_stall_ns(),
            "instructions": self.total_instructions(),
            "now_ns": self.sim.now,
            # Live event-queue depth: a window probe for the
            # time-series layer (pending timers track in-flight work).
            "event_queue": self.sim.pending_timers,
        })
        for core in self.cores:
            registry.bind(f"{prefix}.core{core.id}", core.counters)

    def total_busy_ns(self) -> float:
        return sum(core.counters.busy_ns for core in self.cores)

    def total_stall_ns(self) -> float:
        return sum(core.counters.stall_ns for core in self.cores)

    def total_instructions(self) -> int:
        return sum(core.counters.instructions for core in self.cores)
