"""The controller: sampler windows in, knob actuations out.

A :class:`Controller` subscribes to a
:class:`~repro.obs.timeseries.TimeSeriesSampler`'s push tap and, every
``epoch_windows`` closed windows, hands the recent windows to its
policy as a :class:`~repro.ctrl.policy.SignalView` along with the
:class:`~repro.ctrl.actuate.Actuators` facade.  Decisions therefore
run at window-close instants — host-side moments the sampler already
owns — so the control plane adds no events of its own; only *applied
actuations* change the simulation, by design.

Inert contract: with ``policy=None`` (or an inert spec) the
constructor registers **no tap**, keeps **no state**, and the run is
byte-identical to one without a controller at all — the same contract
the obs layer honours for unarmed runs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from .actuate import Actuators
from .policy import Policy, PolicySpec, SignalView

__all__ = ["Controller"]

#: windows of history kept for SignalViews (bounds controller memory
#: the same way max_windows bounds the sampler)
_HISTORY = 16


class Controller:
    """Drives one policy from one sampler onto one actuation surface."""

    def __init__(self, sampler, actuators: Actuators,
                 policy: Union[Policy, PolicySpec, None],
                 epoch_windows: Optional[int] = None):
        if isinstance(policy, PolicySpec):
            if epoch_windows is None:
                epoch_windows = policy.epoch_windows
            policy = policy.build()
        self.policy = policy
        self.actuators = actuators
        self.epoch_windows = 2 if epoch_windows is None else int(epoch_windows)
        if self.epoch_windows < 1:
            raise ValueError(
                f"epoch must be at least one window: {self.epoch_windows}")
        self.epochs = 0
        self._windows: deque = deque(maxlen=_HISTORY)
        self._pending = 0
        self.armed = policy is not None
        if self.armed:
            # The one and only coupling to the running system: an
            # inert controller must not reach this line.
            sampler.subscribe(self._on_window)

    def _on_window(self, window) -> None:
        self._windows.append(window)
        self._pending += 1
        if self._pending < self.epoch_windows:
            return
        self._pending = 0
        self.epochs += 1
        self.actuators.epoch = self.epochs
        view = SignalView(self._windows, epoch=self.epochs,
                          now_ns=window.end_ns,
                          epoch_windows=self.epoch_windows)
        self.policy.decide(view, self.actuators)

    def actuation_log(self) -> list[dict]:
        """Every applied actuation, in order (JSON-able)."""
        return self.actuators.log_as_dicts()
