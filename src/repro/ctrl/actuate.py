"""Actuators: the knobs a policy may turn, and the log of every turn.

The :class:`Actuators` facade wraps one testbed's actuation surface —
the runtime-settable NIC knobs (``BypassNic.poll_quantum_ns``,
``DmaNic.irq_coalesce_ns``, ``LauberhornNic.set_tryagain_timeout_ns``)
plus an :class:`AdmissionGate` on the load generator — behind
knob-name methods, so one policy works against every stack: a knob the
attached NIC does not expose is silently skipped (and *not* logged,
so the actuation log records what actually happened).

Every applied actuation appends an :class:`ActuationRecord`; the log
is the determinism witness — same (plan, spec, seed) ⇒ identical log,
pinned by the property tests — and lands in the E22 artifact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["ActuationRecord", "AdmissionGate", "Actuators"]


@dataclass(frozen=True)
class ActuationRecord:
    """One applied knob change."""

    t_ns: float
    epoch: int
    knob: str
    value: float

    def as_dict(self) -> dict:
        return asdict(self)


class AdmissionGate:
    """Admission-control hold for open-loop arrival sources.

    Installed as :attr:`repro.workloads.generator.OpenLoopGenerator.\
admission`: the generator calls the gate before each arrival and
    sleeps out any positive hold-off, re-asking until admitted — so a
    controller raising :attr:`hold_ns` thins the offered load without
    dropping anything, and setting it back to zero restores full rate.
    """

    def __init__(self):
        self.hold_ns = 0.0
        #: times a positive hold was handed out (arrivals deferred)
        self.holds = 0

    def __call__(self) -> float:
        if self.hold_ns > 0.0:
            self.holds += 1
        return self.hold_ns


class Actuators:
    """Knob facade over one testbed + the applied-actuation log."""

    def __init__(self, sim, nic=None, gate: Optional[AdmissionGate] = None):
        self.sim = sim
        self.nic = nic
        self.gate = gate
        self.log: list[ActuationRecord] = []
        #: stamped by the controller before each decide() call
        self.epoch = 0

    # -- introspection ------------------------------------------------

    _KNOB_ATTRS = {
        "admission_hold": ("gate", "hold_ns"),
        "poll_quantum": ("nic", "poll_quantum_ns"),
        "irq_coalesce": ("nic", "irq_coalesce_ns"),
        "tryagain": ("nic", "tryagain_timeout_ns"),
    }

    def current(self, knob: str) -> Optional[float]:
        """The knob's present value, or None if unsupported here."""
        owner_name, attr = self._KNOB_ATTRS[knob]
        owner = getattr(self, owner_name)
        if owner is None or not hasattr(owner, attr):
            return None
        return getattr(owner, attr)

    # -- knob setters -------------------------------------------------

    def _note(self, knob: str, value: float) -> None:
        self.log.append(ActuationRecord(
            t_ns=self.sim.now, epoch=self.epoch, knob=knob,
            value=float(value)))

    def set_admission_hold(self, hold_ns: float) -> bool:
        """Set the gate's hold-off; no-op without a gate installed."""
        if self.gate is None or hold_ns < 0:
            return False
        if self.gate.hold_ns == hold_ns:
            return False
        self.gate.hold_ns = float(hold_ns)
        self._note("admission_hold", hold_ns)
        return True

    def set_poll_quantum(self, quantum_ns: float) -> bool:
        """Retune a bypass NIC's PMD spin quantum."""
        nic = self.nic
        if nic is None or not hasattr(nic, "poll_quantum_ns") \
                or quantum_ns <= 0 or nic.poll_quantum_ns == quantum_ns:
            return False
        nic.poll_quantum_ns = float(quantum_ns)
        self._note("poll_quantum", quantum_ns)
        return True

    def set_irq_coalesce(self, coalesce_ns: float) -> bool:
        """Retune a DMA NIC's interrupt-moderation hold-off."""
        nic = self.nic
        if nic is None or not hasattr(nic, "irq_coalesce_ns") \
                or coalesce_ns < 0 or nic.irq_coalesce_ns == coalesce_ns:
            return False
        nic.irq_coalesce_ns = float(coalesce_ns)
        self._note("irq_coalesce", coalesce_ns)
        return True

    def set_tryagain_timeout(self, timeout_ns: float) -> bool:
        """Retune a Lauberhorn NIC's Tryagain park timeout."""
        nic = self.nic
        if nic is None or not hasattr(nic, "set_tryagain_timeout_ns") \
                or timeout_ns <= 0 \
                or nic.tryagain_timeout_ns == timeout_ns:
            return False
        nic.set_tryagain_timeout_ns(timeout_ns)
        self._note("tryagain", timeout_ns)
        return True

    # -- export -------------------------------------------------------

    def log_as_dicts(self) -> list[dict]:
        return [record.as_dict() for record in self.log]
