"""Policies: pluggable decision strategies over windowed signals.

A :class:`Policy` is the strategy interface of the control plane: once
per decision epoch the :class:`~repro.ctrl.controller.Controller`
hands it a :class:`SignalView` (the most recent sampler windows) and
an :class:`~repro.ctrl.actuate.Actuators` facade, and the policy may
retune whatever knobs the facade exposes.  Policies are *deterministic
functions of the sampled signals and their spec parameters* — they
consume no ambient randomness, so the same (stack, plan, spec, seed)
always yields the same actuation log (pinned by the property tests).

A :class:`PolicySpec` is the frozen, canonical description of a policy
run — the analogue of :class:`~repro.faults.plan.FaultPlan`: parseable
from a ``"backoff,epoch=4,hold=50000"`` spec string (CLI/env), JSON-
able for the result-cache key, and buildable into a live policy.

Built-in policies (the :data:`POLICIES` registry; JingZhao's argument
is that NIC designs should be rapid-prototyped as pluggable policies
against a stable framework, and this registry is that seam):

* ``none``    — inert; the controller arms nothing at all;
* ``static``  — applies the spec's knob values once, at the first
  epoch (the "configured, not adaptive" baseline);
* ``backoff`` — AIMD admission control driven by Tryagain/retry
  storms (OSMOSIS-style reactive fairness at the shared NIC);
* ``tuner``   — interrupt-moderation / polling-interval tuning from
  observed RX rate and ring occupancy;
* ``slo_guard`` — admission tightening driven by per-tenant SLO
  fast-window burn rates (the :mod:`repro.obs.slo` probe rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

__all__ = ["PolicySpec", "SignalView", "Policy", "POLICIES"]


@dataclass(frozen=True)
class PolicySpec:
    """Canonical description of one control-plane configuration."""

    #: policy name in :data:`POLICIES`; ``"none"`` is the inert spec
    name: str = "none"
    #: seed for any policy that wants derived randomness (built-ins
    #: are RNG-free; the seed still keys the cache)
    seed: int = 0
    #: decision epoch length, in sampler windows
    epoch_windows: int = 2
    #: policy-specific numeric parameters, canonically sorted
    params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self):
        if self.epoch_windows < 1:
            raise ValueError(
                f"epoch must be at least one window: {self.epoch_windows}")
        if self.name not in POLICIES:
            known = ", ".join(sorted(POLICIES))
            raise ValueError(
                f"unknown policy {self.name!r}; known policies: {known}")

    @property
    def inert(self) -> bool:
        """True when this spec arms nothing (the byte-identity case)."""
        return self.name == "none"

    def as_dict(self) -> dict:
        """Canonical JSON-able form (the cache-key material)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "epoch_windows": self.epoch_windows,
            "params": {key: value for key, value in self.params},
        }

    @classmethod
    def from_spec(cls, spec: str) -> "PolicySpec":
        """Parse ``"backoff,epoch=4,seed=1,hold=50000"`` into a spec.

        The first comma-separated entry is the policy name; ``epoch``
        and ``seed`` are reserved keys, everything else lands in
        :attr:`params` as a float.
        """
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        if not parts:
            return cls()
        name = parts[0]
        if "=" in name:
            raise ValueError(
                f"policy spec must start with a policy name, got {name!r}")
        seed = 0
        epoch_windows = 2
        params: dict[str, float] = {}
        for part in parts[1:]:
            key, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad policy spec entry {part!r} (need key=value)")
            if key == "seed":
                seed = int(raw)
            elif key == "epoch":
                epoch_windows = int(raw)
            else:
                params[key] = float(raw)
        return cls(name=name, seed=seed, epoch_windows=epoch_windows,
                   params=tuple(sorted(params.items())))

    def build(self) -> Optional["Policy"]:
        """Instantiate the policy, or None for the inert spec."""
        if self.inert:
            return None
        return POLICIES[self.name](self)


class SignalView:
    """Read-only view of the most recent sampler windows at one epoch.

    Policies read levels (:meth:`latest`), per-epoch motion
    (:meth:`delta` — last window of this epoch vs last window of the
    previous one), and namespace aggregates (:meth:`total_latest`,
    :meth:`total_delta` — e.g. summing every ``*.retries`` counter
    across clients) without caring which component owns a metric.
    """

    def __init__(self, windows: Sequence, epoch: int, now_ns: float,
                 epoch_windows: int):
        self.windows = list(windows)
        self.epoch = epoch
        self.now_ns = now_ns
        self.epoch_windows = epoch_windows

    def _pair(self, name: str) -> tuple[Optional[float], Optional[float]]:
        cur = self.windows[-1].values.get(name) if self.windows else None
        prev_index = len(self.windows) - 1 - self.epoch_windows
        prev = (self.windows[prev_index].values.get(name)
                if prev_index >= 0 else None)
        return prev, cur

    def latest(self, name: str, default: float = 0.0) -> float:
        """The metric's value in the newest window."""
        _prev, cur = self._pair(name)
        return default if cur is None else cur

    def delta(self, name: str, default: float = 0.0) -> float:
        """Motion over this epoch (newest window vs one epoch back)."""
        prev, cur = self._pair(name)
        if cur is None or prev is None:
            return default
        return cur - prev

    def _matching(self, suffix: str) -> list[str]:
        if not self.windows:
            return []
        return [key for key in self.windows[-1].values
                if key.endswith(suffix)]

    def total_latest(self, suffix: str) -> float:
        """Sum of every metric whose name ends with ``suffix``."""
        return sum(self.latest(key) for key in self._matching(suffix))

    def total_delta(self, suffix: str) -> float:
        """Summed per-epoch motion across a metric-name suffix."""
        return sum(self.delta(key) for key in self._matching(suffix))


class Policy:
    """Base class: one :meth:`decide` call per decision epoch."""

    def __init__(self, spec: PolicySpec):
        self.spec = spec
        self.params = {key: value for key, value in spec.params}

    def param(self, key: str, default: float) -> float:
        return self.params.get(key, default)

    def decide(self, view: SignalView, acts) -> None:
        """Inspect ``view``, retune knobs through ``acts``."""
        raise NotImplementedError


class StaticPolicy(Policy):
    """Apply the spec's knob values once — configured, not adaptive.

    Recognised params (each applied only if given): ``hold`` (admission
    hold-off ns), ``quantum`` (PMD poll quantum ns), ``coalesce``
    (IRQ coalescing ns), ``tryagain`` (Tryagain timeout ns).
    """

    def decide(self, view: SignalView, acts) -> None:
        if view.epoch != 1:
            return
        if "hold" in self.params:
            acts.set_admission_hold(self.params["hold"])
        if "quantum" in self.params:
            acts.set_poll_quantum(self.params["quantum"])
        if "coalesce" in self.params:
            acts.set_irq_coalesce(self.params["coalesce"])
        if "tryagain" in self.params:
            acts.set_tryagain_timeout(self.params["tryagain"])


class BackoffPolicy(Policy):
    """AIMD admission control driven by Tryagain/retry storms.

    Storm pressure per epoch = new Tryagains (Lauberhorn CONTROL-line
    bounces) + new client retransmissions + new NIC drops.  Above
    ``trigger``, the admission hold-off doubles (multiplicative
    increase, floored at ``hold_step``) and the Tryagain park timeout
    widens so parked fills stop bouncing in lockstep; once the storm
    clears, the hold decays additively back to zero and the timeout is
    restored — classic AIMD, so admission recovers quickly from
    transient bursts but backs off hard under sustained overload.
    """

    def __init__(self, spec: PolicySpec):
        super().__init__(spec)
        self.hold_ns = 0.0
        self._base_tryagain: Optional[float] = None

    def decide(self, view: SignalView, acts) -> None:
        trigger = self.param("trigger", 4.0)
        step = self.param("hold_step", 20_000.0)
        cap = self.param("hold_max", 200_000.0)
        storm = (view.delta("nic.lauberhorn.tryagains")
                 + view.total_delta(".retries")
                 + view.delta("nic.rx_dropped"))
        if self._base_tryagain is None:
            self._base_tryagain = acts.current("tryagain")
        if storm > trigger:
            self.hold_ns = min(max(self.hold_ns * 2.0, step), cap)
            acts.set_admission_hold(self.hold_ns)
            if self._base_tryagain is not None:
                acts.set_tryagain_timeout(self._base_tryagain * 2.0)
        elif self.hold_ns > 0.0:
            self.hold_ns = max(0.0, self.hold_ns - step)
            acts.set_admission_hold(self.hold_ns)
            if self.hold_ns == 0.0 and self._base_tryagain is not None:
                acts.set_tryagain_timeout(self._base_tryagain)


class TunerPolicy(Policy):
    """Interrupt-moderation / polling-interval tuning with hysteresis.

    Busy (RX frames this epoch ≥ ``hi``): coalesce interrupts
    (``coalesce`` ns — batch completions behind one IRQ) and tighten
    the PMD poll quantum (``quantum_busy``) so spin accounting tracks
    the load.  Quiet (≤ ``lo``): moderation off, quantum relaxed.
    The dead band between ``lo`` and ``hi`` leaves the knobs alone —
    no flapping on the boundary.
    """

    def __init__(self, spec: PolicySpec):
        super().__init__(spec)
        self._mode: Optional[str] = None

    def decide(self, view: SignalView, acts) -> None:
        hi = self.param("hi", 12.0)
        lo = self.param("lo", 2.0)
        rx = view.delta("nic.rx_frames")
        if rx >= hi and self._mode != "busy":
            self._mode = "busy"
            acts.set_irq_coalesce(self.param("coalesce", 2_000.0))
            acts.set_poll_quantum(self.param("quantum_busy", 250_000.0))
        elif rx <= lo and self._mode != "quiet":
            self._mode = "quiet"
            acts.set_irq_coalesce(0.0)
            acts.set_poll_quantum(self.param("quantum_idle", 1_000_000.0))


class SloGuardPolicy(Policy):
    """Tighten admission while any tenant's fast burn rate runs hot.

    Reads the ``slo.*.burn_fast`` probe rows an armed
    :class:`~repro.obs.slo.SLOTracker` mirrors into every sampler
    window.  When the hottest fast-window burn rate crosses ``burn``
    (default 2.0 — twice the sustainable budget spend), the admission
    hold-off doubles (floored at ``hold_step``, capped at
    ``hold_max``); when every objective cools below the threshold the
    hold decays additively — the same AIMD shape as ``backoff``, but
    keyed on the *objective* (error-budget spend) instead of the
    *mechanism* (Tryagain storms), so it reacts to whatever actually
    hurts the tenant: queueing, policing, or interference.

    Without an armed tracker there are no ``burn_fast`` rows, the
    hottest burn reads 0.0, and the policy never actuates.
    """

    def __init__(self, spec: PolicySpec):
        super().__init__(spec)
        self.hold_ns = 0.0

    def decide(self, view: SignalView, acts) -> None:
        burn_threshold = self.param("burn", 2.0)
        step = self.param("hold_step", 20_000.0)
        cap = self.param("hold_max", 200_000.0)
        hottest = 0.0
        if view.windows:
            for key, value in view.windows[-1].values.items():
                if key.endswith(".burn_fast") and value > hottest:
                    hottest = value
        if hottest >= burn_threshold:
            self.hold_ns = min(max(self.hold_ns * 2.0, step), cap)
            acts.set_admission_hold(self.hold_ns)
        elif self.hold_ns > 0.0:
            self.hold_ns = max(0.0, self.hold_ns - step)
            acts.set_admission_hold(self.hold_ns)


#: name -> factory; the seam new policies plug into
POLICIES: dict[str, Callable[[PolicySpec], Optional[Policy]]] = {
    "none": lambda spec: None,
    "static": StaticPolicy,
    "backoff": BackoffPolicy,
    "tuner": TunerPolicy,
    "slo_guard": SloGuardPolicy,
}
