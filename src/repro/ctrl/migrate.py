"""Epoch-based stack migration: making the E4 choice automatic.

The four stacks are four *builds* of the same service (different NIC
device models, different machine parameterisations), so a live
teleport of in-flight state between them is not a meaningful operation
in this simulator.  What the paper's flexibility argument actually
needs is the *placement decision* reacting to observed load: the
:class:`EpochMigrator` runs a service in epochs, and at each boundary
a chooser policy picks the next epoch's stack from the latency the
previous epochs *measured* — redeploying the service (a fresh testbed,
as a real migration would cold-start the new data path) and charging a
``migration_penalty_ns`` of downtime whenever the stack changes.

This turns ``dynamic_mix``'s static per-point stack assignment into a
closed-loop choice: under a fault plan that punishes one stack, the
greedy chooser routes the service away from it after the exploration
epochs, and the E22 artifact shows the crossover.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Optional, Sequence, Union

from ..faults import active
from ..obs.instrument import bind_testbed_metrics
from ..obs.timeseries import TimeSeriesSampler

__all__ = ["EpochRecord", "EpochMigrator", "greedy_chooser",
           "sticky_chooser"]


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's placement and what it measured."""

    epoch: int
    stack: str
    #: True when this epoch changed stacks (and paid the penalty)
    migrated: bool
    completed: int
    p50_rtt_ns: float
    penalty_ns: float
    #: windowed samples taken during the epoch (signal availability)
    samples: int

    def as_dict(self) -> dict:
        return asdict(self)


def greedy_chooser(history: Sequence[EpochRecord],
                   stacks: Sequence[str]) -> str:
    """Explore each stack once in order, then exploit the best p50.

    Deterministic by construction (no RNG, stable tie-break on the
    stack tuple's order), so the migration schedule replays exactly.
    """
    tried = {record.stack for record in history}
    for stack in stacks:
        if stack not in tried:
            return stack
    best: dict[str, list[float]] = {}
    for record in history:
        if record.completed > 0:
            best.setdefault(record.stack, []).append(record.p50_rtt_ns)
    scored = {
        stack: sum(values) / len(values)
        for stack, values in best.items() if values
    }
    if not scored:
        return stacks[0]
    return min(stacks, key=lambda s: scored.get(s, float("inf")))


def sticky_chooser(stack: str) -> Callable[[Sequence[EpochRecord],
                                            Sequence[str]], str]:
    """A chooser that never migrates — the static baseline."""
    return lambda history, stacks: stack


class EpochMigrator:
    """Closed-loop stack placement over epoch boundaries."""

    def __init__(
        self,
        chooser: Union[str, Callable] = "greedy",
        stacks: Optional[Sequence[str]] = None,
        n_epochs: int = 6,
        requests_per_epoch: int = 24,
        epoch_horizon_ns: float = 20_000_000.0,
        migration_penalty_ns: float = 500_000.0,
        window_ns: float = 500_000.0,
        plan=None,
        burst: int = 8,
        burst_gap_ns: float = 600_000.0,
    ):
        from ..experiments.four_stacks import STACKS

        if isinstance(chooser, str):
            if chooser == "greedy":
                chooser = greedy_chooser
            elif chooser.startswith("sticky:"):
                chooser = sticky_chooser(chooser.partition(":")[2])
            else:
                raise ValueError(f"unknown chooser {chooser!r}")
        self.chooser = chooser
        self.stacks = tuple(stacks if stacks is not None else STACKS)
        if not self.stacks:
            raise ValueError("need at least one stack")
        if n_epochs < 1:
            raise ValueError(f"need at least one epoch, got {n_epochs}")
        self.n_epochs = n_epochs
        self.requests_per_epoch = requests_per_epoch
        self.epoch_horizon_ns = epoch_horizon_ns
        self.migration_penalty_ns = migration_penalty_ns
        self.window_ns = window_ns
        self.plan = plan
        self.burst = burst
        self.burst_gap_ns = burst_gap_ns
        self.history: list[EpochRecord] = []

    def _run_epoch(self, stack: str, penalty_ns: float) -> tuple[int, float,
                                                                 int]:
        """(completed, p50 rtt, samples) for one epoch on ``stack``."""
        from ..experiments.four_stacks import _build_stack

        with active(self.plan):
            bed, service, method = _build_stack(stack)
        registry = bind_testbed_metrics(bed)
        sampler = TimeSeriesSampler(bed.sim, registry,
                                    window_ns=self.window_ns)
        client = bed.clients[0]
        rtts: list[float] = []

        def collect(event):
            rtts.append(event._value.rtt_ns)

        def driver():
            # Migration downtime: the cold data path accepts nothing
            # until the redeploy settles.
            yield bed.sim.timeout(10_000 + penalty_ns)
            sent = 0
            while sent < self.requests_per_epoch:
                count = min(self.burst, self.requests_per_epoch - sent)
                for _ in range(count):
                    event = client.send_request(
                        bed.server_mac, bed.server_ip, service.udp_port,
                        service.service_id, method.method_id, [sent],
                    )
                    event.add_callback(collect)
                    sent += 1
                yield bed.sim.timeout(self.burst_gap_ns)

        bed.sim.process(driver())
        sampler.start(self.epoch_horizon_ns)
        bed.machine.run(until=self.epoch_horizon_ns)
        sampler.finish()
        ordered = sorted(rtts)
        p50 = ordered[len(ordered) // 2] if ordered else 0.0
        return len(rtts), p50, sampler.samples

    def run(self) -> list[EpochRecord]:
        """Run every epoch; returns (and stores) the placement history."""
        previous: Optional[str] = None
        for epoch in range(1, self.n_epochs + 1):
            stack = self.chooser(self.history, self.stacks)
            if stack not in self.stacks:
                raise ValueError(f"chooser picked unknown stack {stack!r}")
            migrated = previous is not None and stack != previous
            penalty = self.migration_penalty_ns if migrated else 0.0
            completed, p50, samples = self._run_epoch(stack, penalty)
            self.history.append(EpochRecord(
                epoch=epoch, stack=stack, migrated=migrated,
                completed=completed, p50_rtt_ns=p50, penalty_ns=penalty,
                samples=samples,
            ))
            previous = stack
        return self.history
