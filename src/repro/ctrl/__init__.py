"""repro.ctrl — the adaptive control plane over the obs layer.

PRs 4-5 built a passive observability stack: spans, windowed time
series, flight recording, tail forensics.  This package closes the
loop — the paper's §4 flexibility argument is that an OS-integrated
NIC lets policy *react*, so here a :class:`Controller` consumes live
:class:`~repro.obs.timeseries.TimeSeriesSampler` windows as signals
and acts on the running system through a pluggable :class:`Policy`
strategy interface:

* **admission control** — an :class:`~repro.ctrl.actuate.AdmissionGate`
  on the open-loop generator, driven AIMD-style by Tryagain/retry
  storms (the ``backoff`` policy);
* **interrupt-moderation / polling-interval tuning** — runtime NIC
  knobs (``DmaNic.irq_coalesce_ns``, ``BypassNic.poll_quantum_ns``,
  ``LauberhornNic.set_tryagain_timeout_ns``) retuned per decision
  epoch (the ``tuner`` policy);
* **stack migration** — :class:`~repro.ctrl.migrate.EpochMigrator`
  moves a service between the four stacks at epoch boundaries based on
  observed latency, making the E4 ``dynamic_mix`` choice automatic.

The no-regression contract is strict and mirrors the obs layer's:
an **inert** controller (``policy=None`` or the ``none`` spec)
registers no sampler tap, installs no gate, and touches no knob —
every experiment is byte-identical to a build that predates this
package, asserted by the golden corpus running under an inert ambient
spec.

Like fault plans, a policy spec can be made *ambient*
(:mod:`repro.ctrl.context`, ``REPRO_POLICY``) and is part of the
result-cache key (:mod:`repro.exp.cache`), so two different policies
never collide in ``.repro-cache/``.
"""

from .actuate import ActuationRecord, Actuators, AdmissionGate
from .context import ENV_VAR, active, active_policy_spec, set_active_spec
from .controller import Controller
from .migrate import EpochMigrator, EpochRecord, greedy_chooser, sticky_chooser
from .policy import POLICIES, Policy, PolicySpec, SignalView

__all__ = [
    "ActuationRecord",
    "Actuators",
    "AdmissionGate",
    "Controller",
    "ENV_VAR",
    "EpochMigrator",
    "EpochRecord",
    "POLICIES",
    "Policy",
    "PolicySpec",
    "SignalView",
    "active",
    "active_policy_spec",
    "greedy_chooser",
    "set_active_spec",
    "sticky_chooser",
]
