"""Ambient policy-spec propagation (mirrors :mod:`repro.faults.context`).

Experiment jobs are pure functions of (params, seed) running in pool
worker processes, so — exactly like fault plans — a policy spec can be
made *ambient*:

* :func:`active` — a context manager scoping a spec to a ``with``
  block (what harnesses and the golden byte-identity sweep use);
* the ``REPRO_POLICY`` environment variable — a
  :meth:`~repro.ctrl.policy.PolicySpec.from_spec` string, inherited by
  pool workers.

:mod:`repro.exp.cache` consults :func:`active_policy_spec` when
building result-cache keys, so runs under different policies never
collide.  An **inert** spec (``"none"``) resolves to ``None`` for the
key, matching the byte-identity contract: an inert controller produces
exactly the results of no controller, so they may share cache entries.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .policy import PolicySpec

__all__ = ["ENV_VAR", "active", "active_policy_spec", "set_active_spec"]

ENV_VAR = "REPRO_POLICY"

_active: Optional[PolicySpec] = None
#: memoised parse of the env var (spec string -> spec)
_env_cache: tuple[Optional[str], Optional[PolicySpec]] = (None, None)


def set_active_spec(spec: Optional[PolicySpec]) -> None:
    """Set (or clear, with ``None``) the process-wide ambient spec."""
    global _active
    _active = spec


def active_policy_spec() -> Optional[PolicySpec]:
    """The ambient spec: explicit scope first, then ``REPRO_POLICY``."""
    if _active is not None:
        return _active
    global _env_cache
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    cached_raw, cached_spec = _env_cache
    if raw != cached_raw:
        _env_cache = (raw, PolicySpec.from_spec(raw))
    return _env_cache[1]


@contextmanager
def active(spec: Optional[PolicySpec]):
    """Scope ``spec`` as the ambient policy for a ``with`` block."""
    global _active
    previous = _active
    _active = spec
    try:
        yield spec
    finally:
        _active = previous
