"""Specification of the Figure 4 NIC<->CPU protocol.

Models one end-point: two CONTROL lines, a CPU running the user-mode
receive loop, and the NIC — with nondeterministic packet arrivals,
nondeterministic Tryagain timeouts, and (optionally) OS preemption via
IPI.  The checker verifies the races the paper worries about are
benign:

* a response is only ever extracted after the CPU's store (no
  fetch-exclusive of a stale line);
* a parked fill is answered exactly once (Tryagain never races a
  delivery into double-answering);
* no request is lost or duplicated (conservation);
* the system never deadlocks — in particular a blocked core can always
  be released (the Tryagain timeout is always enabled while parked,
  which is exactly why the 15 ms timeout exists).

``bug=`` injects known protocol mistakes so tests can confirm the
checker actually catches them (a checker that never fails is vacuous).

State tuple layout::

    (cpu_phase, cpu_parity, line0, line1, parked, inflight,
     arrivals_left, queue, delivered, responded, ipi_pending)

* cpu_phase in {"ready", "waiting", "processing", "got_tryagain",
  "in_kernel"}
* line{0,1} in {"nic", "cpu_clean", "cpu_dirty"} — who holds the line
* parked / inflight: parity (0/1) or None
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .checker import Spec

__all__ = ["LauberhornProtocolSpec", "ProtocolConfig"]

_PHASES = ("ready", "waiting", "processing", "got_tryagain", "in_kernel")


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs bounding the model."""

    total_packets: int = 3
    preemption: bool = False
    #: None for the correct protocol, or a seeded bug:
    #: "skip_store"          — CPU may move on without writing the response
    #: "tryagain_keeps_parked" — Tryagain answers but forgets to unpark
    bug: Optional[str] = None


class LauberhornProtocolSpec(Spec):
    """The two-CONTROL-line protocol as a checkable spec."""

    def __init__(self, config: ProtocolConfig = ProtocolConfig()):
        self.config = config
        self.name = f"lauberhorn-protocol(n={config.total_packets}" + (
            ",preempt" if config.preemption else ""
        ) + (f",bug={config.bug}" if config.bug else "") + ")"

    # -- state helpers ------------------------------------------------------

    def initial_states(self) -> Iterable[tuple]:
        return [
            (
                "ready", 0,        # CPU about to load CONTROL[0]
                "nic", "nic",      # both lines at home
                None, None,        # nothing parked, nothing in flight
                self.config.total_packets, 0,  # arrivals_left, queue
                0, 0,              # delivered, responded
                False,             # ipi_pending
            )
        ]

    @staticmethod
    def _unpack(state):
        return state

    def actions(self, state) -> Iterable[tuple[str, tuple]]:
        (phase, parity, line0, line1, parked, inflight,
         arrivals, queue, delivered, responded, ipi) = state
        lines = [line0, line1]
        bug = self.config.bug

        def make(phase=phase, parity=parity, lines=None, parked=parked,
                 inflight=inflight, arrivals=arrivals, queue=queue,
                 delivered=delivered, responded=responded, ipi=ipi,
                 _cur=(line0, line1)):
            l0, l1 = _cur if lines is None else (lines[0], lines[1])
            return (phase, parity, l0, l1, parked, inflight,
                    arrivals, queue, delivered, responded, ipi)

        out: list[tuple[str, tuple]] = []

        # A packet arrives from the network.
        if arrivals > 0:
            out.append(("pkt_arrive", make(arrivals=arrivals - 1, queue=queue + 1)))

        # CPU issues its load on CONTROL[parity].
        if phase == "ready" and lines[parity] == "nic" and parked is None:
            out.append(("cpu_issue_load", make(phase="waiting", parked=parity)))

        # NIC completion: a parked fill on the line opposite the
        # in-flight request extracts the response (fetch exclusive).
        if parked is not None and inflight is not None and parked != inflight:
            new_lines = list(lines)
            new_lines[inflight] = "nic"
            out.append((
                "nic_complete",
                make(lines=new_lines, inflight=None, responded=responded + 1),
            ))

        # NIC delivery: answer the parked fill with a queued request.
        if parked is not None and inflight is None and queue > 0:
            new_lines = list(lines)
            new_lines[parked] = "cpu_clean"
            out.append((
                "nic_deliver",
                make(
                    phase="processing",
                    lines=new_lines,
                    parked=None,
                    inflight=parked,
                    queue=queue - 1,
                    delivered=delivered + 1,
                ),
            ))

        # Tryagain: the timeout may fire at any moment while parked (and
        # the completion, if owed, has already been processed — the NIC
        # handles completion before parking in the implementation; here
        # completion and tryagain are both enabled and the checker
        # explores both orders).
        if parked is not None and inflight is None:
            new_lines = list(lines)
            new_lines[parked] = "cpu_clean"
            keeps_parked = parked if bug == "tryagain_keeps_parked" else None
            out.append((
                "nic_tryagain",
                make(phase="got_tryagain", lines=new_lines, parked=keeps_parked),
            ))

        # OS preemption: an IPI targets the blocked core; the NIC must
        # follow with a Tryagain (covered above) for the core to notice.
        if self.config.preemption and phase == "waiting" and not ipi:
            out.append(("os_send_ipi", make(ipi=True)))

        # CPU finishes the handler and stores the response.
        if phase == "processing":
            new_lines = list(lines)
            new_lines[parity] = "cpu_dirty"
            out.append((
                "cpu_store_response",
                make(phase="ready", parity=1 - parity, lines=new_lines),
            ))
            if bug == "skip_store":
                out.append((
                    "cpu_skip_store",
                    make(phase="ready", parity=1 - parity),
                ))

        # CPU handles a Tryagain: evict the clean line, then either
        # enter the kernel (pending IPI) or retry the load.
        if phase == "got_tryagain":
            new_lines = list(lines)
            new_lines[parity] = "nic"
            if ipi:
                out.append(("cpu_enter_kernel", make(phase="in_kernel", lines=new_lines)))
            else:
                out.append(("cpu_evict_retry", make(phase="ready", lines=new_lines)))

        # The kernel runs (scheduling etc.), then resumes the loop.
        if phase == "in_kernel":
            out.append(("cpu_kernel_return", make(phase="ready", ipi=False)))

        return out

    # -- invariants ----------------------------------------------------------

    def invariants(self):
        def no_stale_extract(state):
            """If a completion is owed and the CPU has moved on (its
            next load is parked), the response line must be dirty —
            otherwise fetch-exclusive would transmit garbage."""
            (_p, _pa, l0, l1, parked, inflight, *_rest) = state
            if parked is not None and inflight is not None and parked != inflight:
                return (l0, l1)[inflight] == "cpu_dirty"
            return True

        def parked_line_at_home(state):
            """A parked fill means the CPU missed: it cannot also hold
            the line."""
            (_p, _pa, l0, l1, parked, *_rest) = state
            return parked is None or (l0, l1)[parked] == "nic"

        def conservation(state):
            """No request is lost or duplicated."""
            (_p, _pa, _l0, _l1, _parked, inflight,
             arrivals, queue, delivered, responded, _ipi) = state
            owed = 1 if inflight is not None else 0
            return (
                delivered == responded + owed
                and arrivals + queue + delivered == self.config.total_packets
            )

        def waiting_is_parked(state):
            """A waiting CPU's fill is parked at the NIC (no answer was
            lost in transit)."""
            (phase, parity, _l0, _l1, parked, *_rest) = state
            return phase != "waiting" or parked == parity

        def bounded_counters(state):
            (_p, _pa, _l0, _l1, _parked, _inflight,
             arrivals, queue, delivered, responded, _ipi) = state
            n = self.config.total_packets
            return (
                0 <= arrivals <= n and 0 <= queue <= n
                and 0 <= delivered <= n and 0 <= responded <= n
            )

        return [
            ("NoStaleResponseExtraction", no_stale_extract),
            ("ParkedLineAtHome", parked_line_at_home),
            ("RequestConservation", conservation),
            ("WaitingImpliesParked", waiting_is_parked),
            ("BoundedCounters", bounded_counters),
        ]

    def is_terminal(self, state) -> bool:
        # No state should be action-free: even fully drained states have
        # the load/tryagain cycle.  (Deadlock checking stays strict.)
        return False

    # -- convenience ------------------------------------------------------------

    @staticmethod
    def describe(state) -> str:
        (phase, parity, l0, l1, parked, inflight,
         arrivals, queue, delivered, responded, ipi) = state
        return (
            f"cpu={phase}@{parity} lines=({l0},{l1}) parked={parked} "
            f"inflight={inflight} net={arrivals}+{queue} "
            f"done={responded}/{delivered} ipi={ipi}"
        )
