"""Explicit-state model checking of the Lauberhorn protocol (S11)."""

from .checker import CheckResult, ModelChecker, Spec, Violation
from .lauberhorn_spec import LauberhornProtocolSpec, ProtocolConfig
from .ownership_spec import OwnershipConfig, OwnershipSpec

__all__ = [
    "CheckResult",
    "LauberhornProtocolSpec",
    "ModelChecker",
    "OwnershipConfig",
    "OwnershipSpec",
    "ProtocolConfig",
    "Spec",
    "Violation",
]
