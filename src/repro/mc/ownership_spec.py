"""Specification of end-point ownership: two consumers, one end-point.

This spec exists because the stress suite found exactly this bug in an
earlier revision: the kernel dispatcher's promotion logic could claim a
user end-point whose dedicated loop was momentarily unarmed (serving a
request), leaving *two* cores cycling the same CONTROL lines.  The NIC
then overwrote the first core's parked fill with the second's — and
the first core's load was never answered: a silent core-hang.

The model: one end-point, two CPUs that may each issue a load, and a
NIC that either (correct) bounces a second fill with Tryagain, or
(``bug="overwrite_park"``) replaces the parked fill, reproducing the
original defect.  The ``NoOrphanedLoad`` invariant pins it: every CPU
waiting on a fill must have that fill parked at the NIC (or already
being answered) — an overwritten fill orphans its CPU forever.

State tuple::

    (cpu0, cpu1, parked_by, queue, answered0, answered1)

* ``cpu{0,1}`` in {"idle", "waiting", "served"}
* ``parked_by`` in {None, 0, 1}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .checker import Spec

__all__ = ["OwnershipSpec", "OwnershipConfig"]


@dataclass(frozen=True)
class OwnershipConfig:
    total_packets: int = 2
    #: None = correct protocol; "overwrite_park" = the historical bug
    bug: Optional[str] = None


class OwnershipSpec(Spec):
    """Two consumers racing on one end-point."""

    def __init__(self, config: OwnershipConfig = OwnershipConfig()):
        self.config = config
        self.name = "endpoint-ownership" + (
            f"(bug={config.bug})" if config.bug else "(correct)"
        )

    def initial_states(self) -> Iterable[tuple]:
        return [("idle", "idle", None, self.config.total_packets, 0, 0)]

    def actions(self, state):
        cpu0, cpu1, parked_by, queue, answered0, answered1 = state
        out = []
        cpus = [cpu0, cpu1]
        answered = [answered0, answered1]

        def make(which=None, phase=None, parked=parked_by, queue=queue,
                 answer=None):
            new_cpus = list(cpus)
            new_answered = list(answered)
            if which is not None and phase is not None:
                new_cpus[which] = phase
            if answer is not None:
                new_answered[answer] += 1
            return (new_cpus[0], new_cpus[1], parked, queue,
                    new_answered[0], new_answered[1])

        for index in range(2):
            # A CPU issues its load.
            if cpus[index] == "idle":
                if parked_by is None:
                    out.append((f"cpu{index}_load_parks",
                                make(index, "waiting", parked=index)))
                elif self.config.bug == "overwrite_park":
                    # The defect: the new fill replaces the parked one;
                    # the other CPU stays "waiting" with nothing parked.
                    out.append((f"cpu{index}_load_overwrites",
                                make(index, "waiting", parked=index)))
                else:
                    # Correct: the NIC bounces the second fill at once.
                    out.append((f"cpu{index}_load_bounced",
                                make(index, "idle")))
            # The NIC answers the parked fill with a queued request.
            if parked_by == index and cpus[index] == "waiting" and queue > 0:
                out.append((f"nic_deliver_cpu{index}",
                            make(index, "served", parked=None,
                                 queue=queue - 1, answer=index)))
            # Tryagain releases the parked fill.
            if parked_by == index and cpus[index] == "waiting":
                out.append((f"nic_tryagain_cpu{index}",
                            make(index, "idle", parked=None)))
            # A served CPU goes around again.
            if cpus[index] == "served":
                out.append((f"cpu{index}_done", make(index, "idle")))
        return out

    def invariants(self):
        def no_orphaned_load(state):
            """A waiting CPU's fill must be the parked one — a waiting
            CPU whose fill is not parked can never be answered."""
            cpu0, cpu1, parked_by, *_rest = state
            for index, phase in enumerate((cpu0, cpu1)):
                if phase == "waiting" and parked_by != index:
                    return False
            return True

        def single_parked(state):
            # structural: parked_by is a scalar, so this is by
            # construction; kept as documentation of the requirement.
            return True

        return [
            ("NoOrphanedLoad", no_orphaned_load),
            ("SingleParkedFill", single_parked),
        ]

    def is_terminal(self, state) -> bool:
        return False
