"""A small explicit-state model checker (TLA+-style).

Section 6 of the paper: "the fine-grained concurrent interaction in
Lauberhorn between application threads, OS kernel processes, the cache
coherence protocol, and the NIC itself is subtle ... the problem is
highly amenable to specification using TLA+, and can be model-checked
for correctness relatively easily."

This checker provides the TLC-equivalent machinery in Python: a
specification declares initial states, a next-state relation (named
actions), invariants, and a terminal predicate; the checker explores
the reachable state space breadth-first, reporting

* invariant violations (with the action trace that reaches them),
* deadlocks (non-terminal states with no enabled action),
* state count and graph depth — the "checked easily" evidence.

States must be hashable and immutable (tuples / frozen dataclasses).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Optional

__all__ = ["Spec", "Violation", "CheckResult", "ModelChecker"]

State = Hashable


class Spec:
    """Base class for specifications."""

    #: human-readable name for reports
    name: str = "spec"

    def initial_states(self) -> Iterable[State]:  # pragma: no cover
        raise NotImplementedError

    def actions(self, state: State) -> Iterable[tuple[str, State]]:
        """Enabled transitions from ``state`` as (action_name, next)."""
        raise NotImplementedError  # pragma: no cover

    def invariants(self) -> list[tuple[str, Callable[[State], bool]]]:
        """Named predicates that must hold in every reachable state."""
        return []

    def is_terminal(self, state: State) -> bool:
        """States allowed to have no enabled actions."""
        return False


@dataclass(frozen=True)
class Violation:
    """An invariant violation or deadlock, with a counterexample."""

    kind: str              # "invariant" or "deadlock"
    name: str              # invariant name, or "" for deadlock
    state: State
    trace: tuple[str, ...]  # action names from an initial state


@dataclass
class CheckResult:
    """Outcome of exhaustive exploration."""

    spec_name: str
    states_explored: int
    transitions: int
    max_depth: int
    violation: Optional[Violation] = None
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return self.violation is None and not self.truncated

    def summary(self) -> str:
        status = "OK" if self.ok else (
            "TRUNCATED" if self.truncated and self.violation is None
            else f"VIOLATION({self.violation.kind}:{self.violation.name})"
        )
        return (
            f"{self.spec_name}: {status} — {self.states_explored} states, "
            f"{self.transitions} transitions, depth {self.max_depth}"
        )


class ModelChecker:
    """Breadth-first exhaustive exploration with trace reconstruction."""

    def __init__(self, spec: Spec, max_states: int = 1_000_000):
        self.spec = spec
        self.max_states = max_states

    def run(self) -> CheckResult:
        spec = self.spec
        invariants = spec.invariants()
        # state -> (parent_state, action_name); None marks initial states
        parents: dict[State, Optional[tuple[State, str]]] = {}
        frontier: deque[tuple[State, int]] = deque()
        transitions = 0
        max_depth = 0

        def trace_to(state: State) -> tuple[str, ...]:
            names: list[str] = []
            cursor: Optional[State] = state
            while cursor is not None:
                entry = parents[cursor]
                if entry is None:
                    break
                cursor, action_name = entry
                names.append(action_name)
            return tuple(reversed(names))

        def check_invariants(state: State) -> Optional[Violation]:
            for inv_name, predicate in invariants:
                if not predicate(state):
                    return Violation("invariant", inv_name, state, trace_to(state))
            return None

        for initial in spec.initial_states():
            if initial not in parents:
                parents[initial] = None
                frontier.append((initial, 0))
                violation = check_invariants(initial)
                if violation:
                    return CheckResult(
                        spec.name, len(parents), transitions, 0, violation
                    )

        while frontier:
            state, depth = frontier.popleft()
            max_depth = max(max_depth, depth)
            enabled = list(spec.actions(state))
            if not enabled and not spec.is_terminal(state):
                return CheckResult(
                    spec.name,
                    len(parents),
                    transitions,
                    max_depth,
                    Violation("deadlock", "", state, trace_to(state)),
                )
            for action_name, successor in enabled:
                transitions += 1
                if successor in parents:
                    continue
                parents[successor] = (state, action_name)
                violation = check_invariants(successor)
                if violation:
                    return CheckResult(
                        spec.name, len(parents), transitions, depth + 1, violation
                    )
                if len(parents) >= self.max_states:
                    return CheckResult(
                        spec.name, len(parents), transitions, max_depth,
                        truncated=True,
                    )
                frontier.append((successor, depth + 1))

        return CheckResult(spec.name, len(parents), transitions, max_depth)
