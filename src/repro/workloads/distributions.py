"""RPC size and service-time distributions.

Size mixture calibrated to the cloud-scale RPC characterisation the
paper cites ([23], SOSP'23): the great majority of RPCs are small
(sub-kilobyte), with a long tail of bulk transfers.  The paper's whole
fast-path argument rides on this shape ("the great majority of RPC
requests and responses are small"), and the DMA-fallback crossover
(E5) exercises its tail.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..rpc.marshal import marshal_args

__all__ = [
    "RpcSizeDistribution",
    "CLOUD_RPC_SIZES",
    "ServiceTimeDistribution",
    "FixedServiceTime",
    "ExponentialServiceTime",
    "BimodalServiceTime",
    "args_for_payload",
]

#: Marshalling overhead of a single-bytes-argument payload:
#: 1 (count) + 1 (tag) + 4 (length) bytes.
_SINGLE_BYTES_OVERHEAD = 6


def args_for_payload(target_bytes: int) -> list:
    """Arguments whose marshalled payload is exactly ``target_bytes``."""
    if target_bytes < _SINGLE_BYTES_OVERHEAD:
        raise ValueError(
            f"cannot build a {target_bytes} B payload "
            f"(minimum {_SINGLE_BYTES_OVERHEAD})"
        )
    args = [bytes(target_bytes - _SINGLE_BYTES_OVERHEAD)]
    assert len(marshal_args(args)) == target_bytes
    return args


@dataclass(frozen=True)
class RpcSizeDistribution:
    """A mixture of (weight, low, high) log-uniform size buckets."""

    buckets: tuple[tuple[float, int, int], ...]

    def __post_init__(self):
        total = sum(w for w, _lo, _hi in self.buckets)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"bucket weights sum to {total}, expected 1.0")
        for _w, lo, hi in self.buckets:
            if lo < _SINGLE_BYTES_OVERHEAD or hi < lo:
                raise ValueError(f"bad bucket bounds ({lo}, {hi})")

    def sample(self, rng: random.Random) -> int:
        """Draw a payload size in bytes."""
        point = rng.random()
        acc = 0.0
        for weight, low, high in self.buckets:
            acc += weight
            if point <= acc:
                break
        if low == high:
            return low
        # Log-uniform within the bucket: sizes spread over the decades.
        log_low, log_high = math.log(low), math.log(high)
        return int(round(math.exp(rng.uniform(log_low, log_high))))

    def mean_estimate(self, rng: random.Random, n: int = 10_000) -> float:
        return sum(self.sample(rng) for _ in range(n)) / n


#: The headline mixture: ~3/4 of RPCs under 512 B, ~1% bulk.
CLOUD_RPC_SIZES = RpcSizeDistribution(
    buckets=(
        (0.55, 16, 128),
        (0.25, 128, 512),
        (0.12, 512, 2048),
        (0.07, 2048, 16384),
        (0.01, 16384, 262144),
    )
)


class ServiceTimeDistribution:
    """Handler compute-time distributions (in instructions)."""

    def sample(self, rng: random.Random) -> int:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class FixedServiceTime(ServiceTimeDistribution):
    instructions: int = 1000

    def sample(self, rng: random.Random) -> int:
        return self.instructions


@dataclass(frozen=True)
class ExponentialServiceTime(ServiceTimeDistribution):
    mean_instructions: float = 1000.0

    def sample(self, rng: random.Random) -> int:
        return max(1, int(rng.expovariate(1.0 / self.mean_instructions)))


@dataclass(frozen=True)
class BimodalServiceTime(ServiceTimeDistribution):
    """The classic tail-latency stressor: mostly short, sometimes long."""

    short_instructions: int = 500
    long_instructions: int = 50_000
    long_fraction: float = 0.01

    def sample(self, rng: random.Random) -> int:
        if rng.random() < self.long_fraction:
            return self.long_instructions
        return self.short_instructions
