"""Open- and closed-loop load generators over :class:`ClientNode`.

The experiments drive the server either open-loop (Poisson arrivals at
a target rate — the honest way to measure latency under load) or
closed-loop (fixed concurrency — the way to measure peak throughput).
A :class:`ServiceMix` picks the target service per request, optionally
with a time-varying hot set (the paper's "dynamic workloads").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..metrics.histogram import LatencyRecorder
from ..rpc.service import MethodDef, ServiceDef
from ..sim.engine import AllOf, Event, Simulator
from .client import ClientNode, RpcResult

__all__ = ["Target", "ServiceMix", "OpenLoopGenerator", "ClosedLoopGenerator"]


@dataclass(frozen=True)
class Target:
    """One callable (service, method) plus an argument factory."""

    service: ServiceDef
    method: MethodDef
    make_args: Callable[[random.Random], Sequence] = field(
        default=lambda rng: [1]
    )


class ServiceMix:
    """Weighted choice over targets; weights may change over time."""

    def __init__(self, targets: Sequence[Target], weights: Optional[Sequence[float]] = None):
        if not targets:
            raise ValueError("need at least one target")
        self.targets = list(targets)
        self.weights = list(weights) if weights else [1.0] * len(targets)
        if len(self.weights) != len(self.targets):
            raise ValueError("weights/targets length mismatch")
        self._validate_weights(self.weights)

    @staticmethod
    def _validate_weights(weights: Sequence[float]) -> None:
        """Reject negative weights up front with a readable message —
        ``random.choices`` would otherwise fail much later, mid-run,
        with an opaque error."""
        for index, weight in enumerate(weights):
            if weight < 0:
                raise ValueError(
                    f"target weight {index} is negative ({weight}); "
                    "mix weights must be >= 0"
                )

    def set_hot_set(self, hot_indices: Sequence[int], hot_weight: float = 1.0,
                    cold_weight: float = 0.0) -> None:
        """Concentrate traffic on a subset (dynamic-workload rotation)."""
        hot = set(hot_indices)
        weights = [
            hot_weight if index in hot else cold_weight
            for index in range(len(self.targets))
        ]
        self._validate_weights(weights)
        if not any(weights):
            raise ValueError("hot set selects no traffic")
        self.weights = weights

    def choose(self, rng: random.Random) -> Target:
        return rng.choices(self.targets, weights=self.weights, k=1)[0]


class _GeneratorBase:
    def __init__(
        self,
        client: ClientNode,
        mix: ServiceMix,
        server_mac,
        server_ip: int,
        rng: random.Random,
        recorder: Optional[LatencyRecorder] = None,
    ):
        self.client = client
        self.mix = mix
        self.server_mac = server_mac
        self.server_ip = server_ip
        self.rng = rng
        self.recorder = recorder or LatencyRecorder()
        self.sent = 0
        self.completed = 0
        #: arrivals the admission gate held back (open-loop only; always
        #: present so reports can read it from a generator that never ran
        #: or whose run never consulted an admission gate)
        self.deferrals = 0

    def _fire(self, target: Target) -> Event:
        self.sent += 1
        return self.client.send_request(
            self.server_mac,
            self.server_ip,
            target.service.udp_port,
            target.service.service_id,
            target.method.method_id,
            target.make_args(self.rng),
        )

    def _note(self, result: RpcResult) -> None:
        self.completed += 1
        self.recorder.record(result.rtt_ns)


class OpenLoopGenerator(_GeneratorBase):
    """Poisson arrivals at ``rate_per_sec`` for ``n_requests``.

    Admission control: when :attr:`admission` is set (a callable
    returning a hold-off in ns, 0 to admit), each arrival consults it
    before firing and sleeps out any pushback — the
    :class:`repro.ctrl.actuate.AdmissionGate` actuation point.  The
    ``None`` default takes the exact historical path (no extra call,
    no extra event), keeping ungated runs byte-identical.
    """

    #: optional admission gate: ``() -> hold_ns`` (0.0 admits)
    admission: Optional[Callable[[], float]] = None

    def run(self, rate_per_sec: float, n_requests: int):
        """Generator (sim process body): returns when all complete."""
        if rate_per_sec <= 0:
            raise ValueError("rate must be positive")
        sim = self.client.sim
        mean_gap_ns = 1e9 / rate_per_sec
        outstanding: list[Event] = []
        self.deferrals = 0
        for _ in range(n_requests):
            if self.admission is not None:
                hold_ns = self.admission()
                while hold_ns > 0:
                    self.deferrals += 1
                    yield sim.timeout(hold_ns)
                    hold_ns = self.admission()
            target = self.mix.choose(self.rng)
            done = self._fire(target)
            done.add_callback(lambda ev: self._note(ev.value))
            outstanding.append(done)
            yield sim.timeout(self.rng.expovariate(1.0) * mean_gap_ns)
        yield AllOf(sim, outstanding)
        return self.recorder


class ClosedLoopGenerator(_GeneratorBase):
    """``concurrency`` outstanding requests, each immediately replaced."""

    def run(self, concurrency: int, n_requests: int):
        """Generator (sim process body): returns when all complete."""
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        sim = self.client.sim
        finished = Event(sim)
        budget = {"left": n_requests}

        def launch():
            if budget["left"] <= 0:
                return
            budget["left"] -= 1
            target = self.mix.choose(self.rng)
            done = self._fire(target)
            done.add_callback(on_done)

        def on_done(ev: Event) -> None:
            self._note(ev.value)
            if self.completed >= n_requests:
                if not finished.triggered:
                    finished.succeed()
            else:
                launch()

        for _ in range(min(concurrency, n_requests)):
            launch()
        yield finished
        return self.recorder
