"""Synthetic trace generation and replay.

For dynamic-workload experiments that want something richer than a
constant-rate Poisson stream, :func:`generate_trace` synthesises a
per-service invocation trace with the features serverless/microservice
studies report — heavy-tailed per-service popularity, bursts, and
rotating hot sets — and :class:`TraceReplayer` feeds it to a client at
the recorded timestamps.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..metrics.histogram import LatencyRecorder
from ..sim.engine import AllOf, Event
from .client import ClientNode
from .generator import Target

__all__ = ["TraceEntry", "generate_trace", "TraceReplayer"]


@dataclass(frozen=True)
class TraceEntry:
    """One invocation in a trace."""

    time_ns: float
    target_index: int


def generate_trace(
    n_targets: int,
    duration_ns: float,
    mean_rate_per_sec: float,
    seed: int = 0,
    zipf_s: float = 1.1,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.1,
) -> list[TraceEntry]:
    """Synthesise an invocation trace.

    * per-service popularity is Zipf(``zipf_s``) over a random ranking;
    * a random ``burst_fraction`` of the timeline runs at
      ``burst_factor`` x the base rate (bursty arrivals);
    * within a regime, arrivals are Poisson.
    """
    if n_targets <= 0:
        raise ValueError("need at least one target")
    if duration_ns <= 0 or mean_rate_per_sec <= 0:
        raise ValueError("duration and rate must be positive")
    rng = random.Random(seed)
    # Zipf popularity over a shuffled ranking.
    ranks = list(range(n_targets))
    rng.shuffle(ranks)
    weights = [1.0 / (rank + 1) ** zipf_s for rank in ranks]
    total = sum(weights)
    weights = [w / total for w in weights]

    # Burst windows: contiguous slices of the timeline.
    n_windows = 20
    window_ns = duration_ns / n_windows
    burst_windows = set(
        rng.sample(range(n_windows), max(1, int(burst_fraction * n_windows)))
    )

    entries: list[TraceEntry] = []
    now = 0.0
    base_gap_ns = 1e9 / mean_rate_per_sec
    while now < duration_ns:
        window = min(n_windows - 1, int(now / window_ns))
        rate_scale = burst_factor if window in burst_windows else 1.0
        now += rng.expovariate(1.0) * base_gap_ns / rate_scale
        if now >= duration_ns:
            break
        target = rng.choices(range(n_targets), weights=weights, k=1)[0]
        entries.append(TraceEntry(time_ns=now, target_index=target))
    return entries


class TraceReplayer:
    """Replays a trace against a server via a client node."""

    def __init__(
        self,
        client: ClientNode,
        targets: Sequence[Target],
        server_mac,
        server_ip: int,
        recorder: Optional[LatencyRecorder] = None,
    ):
        self.client = client
        self.targets = list(targets)
        self.server_mac = server_mac
        self.server_ip = server_ip
        self.recorder = recorder or LatencyRecorder()
        self.sent = 0
        self.completed = 0
        #: per-target completion counts
        self.per_target: dict[int, int] = {}

    def run(self, trace: Sequence[TraceEntry], rng: random.Random):
        """Sim-process body: fire the trace, wait for all responses."""
        sim = self.client.sim
        outstanding: list[Event] = []
        start = sim.now
        for entry in trace:
            wait = start + entry.time_ns - sim.now
            if wait > 0:
                yield sim.timeout(wait)
            target = self.targets[entry.target_index]
            done = self.client.send_request(
                self.server_mac,
                self.server_ip,
                target.service.udp_port,
                target.service.service_id,
                target.method.method_id,
                target.make_args(rng),
            )
            self.sent += 1

            def on_done(ev, index=entry.target_index):
                self.completed += 1
                self.per_target[index] = self.per_target.get(index, 0) + 1
                self.recorder.record(ev.value.rtt_ns)

            done.add_callback(on_done)
            outstanding.append(done)
        if outstanding:
            yield AllOf(sim, outstanding)
        return self.recorder
