"""Workload generation: clients, distributions, traces (S12)."""

from .client import ClientNode, RpcResult
from .distributions import (
    CLOUD_RPC_SIZES,
    BimodalServiceTime,
    ExponentialServiceTime,
    FixedServiceTime,
    RpcSizeDistribution,
    ServiceTimeDistribution,
    args_for_payload,
)
from .generator import ClosedLoopGenerator, OpenLoopGenerator, ServiceMix, Target
from .trace_replay import TraceEntry, TraceReplayer, generate_trace
from .traces import BurstSchedule, HotSetSchedule

__all__ = [
    "BimodalServiceTime",
    "BurstSchedule",
    "CLOUD_RPC_SIZES",
    "ClientNode",
    "ClosedLoopGenerator",
    "ExponentialServiceTime",
    "FixedServiceTime",
    "HotSetSchedule",
    "OpenLoopGenerator",
    "RpcResult",
    "RpcSizeDistribution",
    "ServiceMix",
    "ServiceTimeDistribution",
    "Target",
    "TraceEntry",
    "TraceReplayer",
    "args_for_payload",
    "generate_trace",
]
