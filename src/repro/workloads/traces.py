"""Dynamic workload schedules.

The paper's flexibility argument is about workloads where the set of
hot services shifts over time and exceeds any static core assignment:
serverless bursts, rotating microservice hot sets.  These schedules
drive :class:`~repro.workloads.generator.ServiceMix` weight changes
during a run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["HotSetSchedule", "BurstSchedule"]


@dataclass(frozen=True)
class HotSetSchedule:
    """Every ``period_ns``, a fresh random subset of services is hot."""

    n_services: int
    hot_count: int
    period_ns: float
    seed: int = 0

    def __post_init__(self):
        if not 0 < self.hot_count <= self.n_services:
            raise ValueError(
                f"hot_count {self.hot_count} out of range 1..{self.n_services}"
            )
        if self.period_ns <= 0:
            raise ValueError("period must be positive")

    def hot_set_at(self, time_ns: float) -> frozenset[int]:
        """The hot service indices during the epoch containing time_ns."""
        epoch = int(time_ns // self.period_ns)
        rng = random.Random((self.seed << 20) ^ epoch)
        return frozenset(rng.sample(range(self.n_services), self.hot_count))

    def epochs(self, duration_ns: float):
        """Iterate (start_ns, hot_set) pairs covering [0, duration)."""
        start = 0.0
        while start < duration_ns:
            yield start, self.hot_set_at(start)
            start += self.period_ns


@dataclass(frozen=True)
class BurstSchedule:
    """Serverless-style: one service bursts while a baseline trickles.

    ``burst_service`` receives ``burst_rate`` during bursts of
    ``burst_ns`` starting every ``interval_ns``; all other services
    share the baseline rate throughout.
    """

    burst_service: int
    interval_ns: float
    burst_ns: float

    def __post_init__(self):
        if self.burst_ns <= 0 or self.interval_ns <= 0:
            raise ValueError("durations must be positive")
        if self.burst_ns > self.interval_ns:
            raise ValueError("burst longer than interval")

    def in_burst(self, time_ns: float) -> bool:
        return (time_ns % self.interval_ns) < self.burst_ns
