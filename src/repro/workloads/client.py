"""Client (load generator) nodes.

A :class:`ClientNode` models the *remote* end of an RPC: it has its own
switch port and MAC/IP, sends byte-exact request frames, and matches
response frames by request id.  It deliberately has no OS model — the
paper's measurements are about the *server's* end-system cost, so the
client is an infinitely fast traffic source/sink and the wire fabric
provides the (constant) propagation component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..net.headers import HeaderError, MacAddress
from ..net.link import Port, SwitchFabric
from ..net.packet import build_udp_frame, parse_udp_frame
from ..rpc.marshal import marshal_args, unmarshal_args
from ..rpc.message import RpcError, RpcMessage, RpcType
from ..sim.engine import Event, Simulator

__all__ = ["RpcResult", "ClientNode"]


@dataclass(frozen=True)
class RpcResult:
    """Outcome of one RPC seen from the client."""

    request_id: int
    args: Sequence[Any]
    results: Sequence[Any]
    sent_ns: float
    received_ns: float

    @property
    def rtt_ns(self) -> float:
        return self.received_ns - self.sent_ns


class ClientNode:
    """A remote RPC client with its own network identity."""

    def __init__(
        self,
        sim: Simulator,
        switch: SwitchFabric,
        mac: MacAddress,
        ip: int,
        name: str = "client",
        src_port_base: int = 40000,
    ):
        self.sim = sim
        self.mac = mac
        self.ip = ip
        self.name = name
        self.port: Port = switch.attach(mac, name)
        self.src_port_base = src_port_base
        self._next_request_id = 1
        self._pending: dict[int, tuple[float, Sequence[Any], Event]] = {}
        self.unmatched_responses = 0
        self.parse_errors = 0
        #: when set (fault runs with a lossy wire), a watchdog
        #: retransmits each request until its response arrives, so
        #: closed-loop drivers survive frame loss.  None (the default)
        #: spawns no watchdog at all — the loss-free timeline is
        #: byte-identical to a client without this feature.
        self.retry_timeout_ns: Optional[float] = None
        self.max_retries = 16
        self.retries = 0
        self.give_ups = 0
        #: span recorder (repro.obs); None keeps the request path free
        #: of any observability work beyond this attribute test
        self.obs = None
        self._obs_roots: dict[int, Any] = {}
        sim.process(self._rx_loop(), name=f"{name}-rx")

    # -- sending ----------------------------------------------------------------

    def send_request(
        self,
        dst_mac: MacAddress,
        dst_ip: int,
        dst_port: int,
        service_id: int,
        method_id: int,
        args: Sequence[Any],
        src_port: Optional[int] = None,
    ) -> Event:
        """Fire one request; the returned event yields an RpcResult.

        ``src_port`` pins the UDP source port (one value per *flow*) so
        fleet load balancers see stable flow 4-tuples; the default
        rotates through 1024 ports as before.
        """
        request_id = self._next_request_id
        self._next_request_id += 1
        payload = marshal_args(list(args))
        message = RpcMessage.request(service_id, method_id, request_id, payload)
        frame = build_udp_frame(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=(self.src_port_base + (request_id % 1024)
                      if src_port is None else src_port),
            dst_port=dst_port,
            payload=message.pack(),
            born_ns=self.sim.now,
            meta={"request_id": request_id},
        )
        obs = self.obs
        if obs is not None:
            # Root span of this request's trace; the context rides in
            # frame.meta and every layer hangs children under it.
            root = obs.start_trace("rpc", "client", request_id=request_id,
                                   client=self.name)
            frame.meta["obs"] = root.ctx
            self._obs_roots[request_id] = root
        done = Event(self.sim)
        self._pending[request_id] = (self.sim.now, list(args), done)
        self.sim.process(self.port.send(frame))
        if self.retry_timeout_ns is not None:
            self.sim.process(
                self._retry_watchdog(request_id, frame),
                name=f"{self.name}-retry-{request_id}",
            )
        return done

    def _retry_watchdog(self, request_id: int, frame):
        """Retransmit ``frame`` until its response arrives (fault runs).

        The server side is idempotent from the client's point of view:
        a duplicate response is dropped by the pending-table pop, so
        retransmitting on a timeout is always safe.
        """
        for _attempt in range(self.max_retries):
            yield self.sim.timeout(self.retry_timeout_ns)
            if request_id not in self._pending:
                return None
            self.retries += 1
            yield from self.port.send(frame)
        if request_id in self._pending:
            self.give_ups += 1
        return None

    def call(
        self,
        dst_mac: MacAddress,
        dst_ip: int,
        dst_port: int,
        service_id: int,
        method_id: int,
        args: Sequence[Any],
        src_port: Optional[int] = None,
    ):
        """Generator: send one request and wait for its response."""
        done = self.send_request(
            dst_mac, dst_ip, dst_port, service_id, method_id, args,
            src_port=src_port,
        )
        result = yield done
        return result

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- receiving ------------------------------------------------------------------

    def _rx_loop(self):
        while True:
            frame = yield from self.port.receive()
            try:
                parsed = parse_udp_frame(frame)
                message = RpcMessage.unpack(parsed.payload)
            except (HeaderError, RpcError):
                self.parse_errors += 1
                continue
            if message.header.rpc_type is not RpcType.RESPONSE:
                self.unmatched_responses += 1
                continue
            pending = self._pending.pop(message.header.request_id, None)
            if pending is None:
                self.unmatched_responses += 1
                continue
            sent_ns, args, done = pending
            if self.obs is not None:
                root = self._obs_roots.pop(message.header.request_id, None)
                if root is not None:
                    ctx = frame.peek_meta("obs")
                    wire_ns = frame.pop_meta("_obs_wire_ns", frame.born_ns)
                    if ctx is not None:
                        self.obs.record("wire.resp", "net", ctx,
                                        wire_ns, self.sim.now)
                    self.obs.finish(root)
            try:
                results = unmarshal_args(message.payload) if message.payload else []
            except Exception:
                results = []
            done.succeed(
                RpcResult(
                    request_id=message.header.request_id,
                    args=args,
                    results=results,
                    sent_ns=sent_ns,
                    received_ns=self.sim.now,
                )
            )
