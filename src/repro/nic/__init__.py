"""NIC models: DMA/interrupt, kernel-bypass, Lauberhorn (S5-S7)."""

from .base import BaseNic, NicStats
from .bypass import BypassNic, BypassQueue
from .dma import DmaNic, RxQueue
from .rss import rss_hash, rss_queue_index

__all__ = [
    "BaseNic",
    "BypassNic",
    "BypassQueue",
    "DmaNic",
    "NicStats",
    "RxQueue",
    "rss_hash",
    "rss_queue_index",
]
