"""The traditional PCIe DMA NIC of Figure 1.

Receive path (steps 1-4 of the paper's Section 2 list):

1. the device parses the frame (streaming header decode);
2. RSS hashes the 4-tuple to pick an RX queue;
3. the payload and a completion descriptor are DMA-written into host
   memory for that queue;
4. if interrupts are enabled for the queue (NAPI semantics), the device
   raises an MSI-X interrupt at the queue's core.

The kernel-side NAPI poll handler then runs the softirq protocol
processing (:meth:`~repro.os.netstack.NetStack.softirq_rx`) for each
completed descriptor and re-enables the interrupt when the queue runs
dry — so under load, interrupts are naturally moderated, as in Linux.

Transmit: the driver writes a descriptor (ordinary memory), rings a
doorbell (posted MMIO write); the device then DMA-reads the descriptor
and payload and puts the frame on the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.machine import Machine
from ..net.headers import HeaderError
from ..net.link import Port
from ..net.packet import Frame, parse_udp_frame
from ..os.kernel import Irq, Kernel
from .base import BaseNic
from .rss import rss_queue_index

__all__ = ["DmaNic", "RxQueue"]

#: NAPI poll budget: descriptors processed per poll invocation.
NAPI_BUDGET = 64


@dataclass
class RxQueue:
    """One host-side RX descriptor ring and its NAPI state."""

    index: int
    core_id: int
    capacity: int
    completed: list[Frame] = field(default_factory=list)
    irq_enabled: bool = True
    drops: int = 0

    @property
    def depth(self) -> int:
        return len(self.completed)


class DmaNic(BaseNic):
    """A conventional descriptor-ring, interrupt-driven NIC."""

    def __init__(
        self,
        machine: Machine,
        port: Port,
        n_queues: int = 1,
        name: str = "dma-nic",
    ):
        super().__init__(machine, port, name)
        if n_queues < 1:
            raise ValueError("need at least one RX queue")
        self.kernel: Optional[Kernel] = None
        self.queues = [
            RxQueue(
                index=i,
                core_id=i % machine.n_cores,
                capacity=machine.params.nic.rx_ring_entries,
            )
            for i in range(n_queues)
        ]
        #: interrupt moderation (ethtool rx-usecs-style): when > 0 the
        #: device holds a would-be interrupt for this long before
        #: raising it, batching completions behind one IRQ.  Runtime-
        #: settable (repro.ctrl tuning knob); the 0 default takes the
        #: exact pre-existing code path, keeping untuned runs
        #: byte-identical.
        self.irq_coalesce_ns = 0.0

    def attach_kernel(self, kernel: Kernel) -> None:
        self.kernel = kernel
        kernel.register_nic(self)

    def set_queue_core(self, queue_index: int, core_id: int) -> None:
        """Steer a queue's interrupt to a core (irqbalance-style)."""
        self.queues[queue_index].core_id = core_id

    # -- receive path -----------------------------------------------------------

    def _rx_loop(self):
        while True:
            frame = yield from self.port.receive()
            self.stats.rx_frames += 1
            if self.rx_fault is not None:
                yield from self.rx_fault()
            obs = self.obs
            ctx = frame.peek_meta("obs") if obs is not None else None
            if ctx is not None:
                obs.record("wire.req", "net", ctx, frame.born_ns, self.sim.now)
            rx_start_ns = self.sim.now
            # Device pipeline: header decode + RSS demux.
            yield self.sim.timeout(self.params.parse_ns + self.params.demux_ns)
            queue = self._classify(frame)
            if queue.depth >= queue.capacity:
                queue.drops += 1
                self.stats.rx_dropped += 1
                continue
            # DMA payload then completion descriptor into host memory.
            yield from self.link.dma_write(len(frame.data))
            yield from self.link.dma_write(self.params.descriptor_bytes)
            queue.completed.append(frame)
            if ctx is not None:
                obs.record("nic.rx", "nic", ctx, rx_start_ns, self.sim.now,
                           queue=queue.index)
            if queue.irq_enabled and self.kernel is not None:
                queue.irq_enabled = False
                if self.irq_coalesce_ns > 0:
                    # Moderation hold-off runs device-side (off the RX
                    # pipeline): completions landing in the gap ride
                    # the same interrupt — their descriptors are
                    # already in ``queue.completed`` when the NAPI
                    # poll finally runs.  Guarded so the 0 default
                    # takes the exact pre-existing inline path.
                    self.sim.process(self._raise_coalesced(queue),
                                     name=f"{self.name}-coalesce")
                else:
                    yield from self.link.raise_interrupt(
                        self.params.interrupt_raise_ns)
                    self.kernel.deliver_irq(
                        queue.core_id,
                        Irq(name=f"{self.name}-rxq{queue.index}",
                            handler=self._napi_poll(queue)),
                    )

    def _classify(self, frame: Frame) -> RxQueue:
        try:
            parsed = parse_udp_frame(frame, verify=False)
        except HeaderError:
            return self.queues[0]
        index = rss_queue_index(
            parsed.ip.src,
            parsed.ip.dst,
            parsed.udp.src_port,
            parsed.udp.dst_port,
            len(self.queues),
        )
        return self.queues[index]

    def _raise_coalesced(self, queue: RxQueue):
        """Device-side hold-off, then the usual MSI-X raise."""
        yield self.sim.timeout(self.irq_coalesce_ns)
        yield from self.link.raise_interrupt(self.params.interrupt_raise_ns)
        self.kernel.deliver_irq(
            queue.core_id,
            Irq(name=f"{self.name}-rxq{queue.index}",
                handler=self._napi_poll(queue)),
        )

    def _napi_poll(self, queue: RxQueue):
        """Build the NAPI poll IRQ handler for ``queue``."""

        def handler(kernel: Kernel, core):
            processed = 0
            costs = self.machine.params.nic
            while queue.completed and processed < NAPI_BUDGET:
                frame = queue.completed.pop(0)
                yield from core.execute(costs.driver_rx_instructions)
                yield from kernel.netstack.softirq_rx(core, frame)
                processed += 1
            if queue.completed:
                # Budget exhausted: re-arm a software poll, as NAPI does.
                kernel.deliver_irq(
                    queue.core_id,
                    Irq(name=f"{self.name}-rxq{queue.index}-napi",
                        handler=self._napi_poll(queue)),
                )
            else:
                queue.irq_enabled = True
            return None

        return handler

    def bind_metrics(self, registry, prefix: str = "nic") -> None:
        super().bind_metrics(registry, prefix)
        for queue in self.queues:
            registry.probe(f"{prefix}.rxq{queue.index}", lambda q=queue: {
                "depth": q.depth, "drops": q.drops,
            })

    # -- transmit path ------------------------------------------------------------

    def transmit(self, frame: Frame, core):
        """Driver TX: descriptor write + doorbell; generator on ``core``."""
        costs = self.machine.params.nic
        yield from core.execute(costs.driver_tx_instructions)
        # Doorbell: posted MMIO write; the device reacts after the
        # posted-write delay by fetching descriptor + payload via DMA.
        yield from self.link.mmio_write(core)
        delay = self.link.posted_delay_ns()

        def device_side():
            yield self.sim.timeout(delay)
            yield from self.link.dma_read(self.params.descriptor_bytes)
            yield from self.link.dma_read(len(frame.data))
            self.queue_tx(frame)

        self.sim.process(device_side())
        return None
