"""Kernel-bypass datapath (DPDK/Arrakis/IX-style).

The NIC DMA-writes frames straight into per-queue user-space rings;
pinned application workers busy-poll those rings with a poll-mode
driver (PMD) — no interrupts, no syscalls, no socket layer.  This is
the "fastest kernel-bypass" baseline the paper sets out to beat:
excellent latency when a dedicated core is spinning on the right
queue, but the core burns energy while idle and the queue->core
binding is static (Section 2's critique).

Flow steering is static: a ``dst_port -> queue`` table configured at
setup (Intel Flow Director-style), falling back to RSS.

Spin modelling: rather than simulating every poll iteration (which
would melt the event queue during 15 ms idle gaps), an idle worker
waits on the queue's arrival gate and is *charged* busy time and
poll instructions for the entire gap on wake-up — identical timing and
energy, O(1) events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..hw.machine import Machine
from ..net.headers import HeaderError
from ..net.link import Port
from ..net.packet import Frame, parse_udp_frame
from ..os import ops
from ..sim.resources import Gate
from .base import BaseNic
from .rss import rss_queue_index

__all__ = ["BypassQueue", "BypassNic"]


@dataclass
class BypassQueue:
    """A user-space RX ring plus its arrival gate."""

    index: int
    capacity: int
    gate: Gate
    ring: list[Frame] = field(default_factory=list)
    drops: int = 0

    def try_pop(self) -> Optional[Frame]:
        if self.ring:
            return self.ring.pop(0)
        return None


class BypassNic(BaseNic):
    """A NIC in pure kernel-bypass mode."""

    def __init__(
        self,
        machine: Machine,
        port: Port,
        n_queues: int = 1,
        name: str = "bypass-nic",
    ):
        super().__init__(machine, port, name)
        if n_queues < 1:
            raise ValueError("need at least one queue")
        self.queues = [
            BypassQueue(
                index=i,
                capacity=machine.params.nic.rx_ring_entries,
                gate=Gate(machine.sim, f"{name}.q{i}"),
            )
            for i in range(n_queues)
        ]
        #: static flow steering: UDP dst port -> queue index
        self.flow_table: dict[int, int] = {}
        #: PMD spin-accounting quantum; runtime-settable (repro.ctrl
        #: poll-interval tuning).  Read fresh on every poll iteration,
        #: so a controller changing it mid-run takes effect at the next
        #: spin segment.  The default matches the historical constant.
        self.poll_quantum_ns = 1_000_000.0

    def steer_port(self, udp_port: int, queue_index: int) -> None:
        """Pin a UDP port's flows to one queue (Flow Director-style)."""
        if not 0 <= queue_index < len(self.queues):
            raise ValueError(f"no queue {queue_index}")
        self.flow_table[udp_port] = queue_index

    # -- receive path -------------------------------------------------------

    def _rx_loop(self):
        while True:
            frame = yield from self.port.receive()
            self.stats.rx_frames += 1
            if self.rx_fault is not None:
                yield from self.rx_fault()
            obs = self.obs
            ctx = frame.peek_meta("obs") if obs is not None else None
            if ctx is not None:
                obs.record("wire.req", "net", ctx, frame.born_ns, self.sim.now)
            rx_start_ns = self.sim.now
            yield self.sim.timeout(self.params.parse_ns + self.params.demux_ns)
            queue = self._classify(frame)
            if len(queue.ring) >= queue.capacity:
                queue.drops += 1
                self.stats.rx_dropped += 1
                continue
            yield from self.link.dma_write(len(frame.data))
            yield from self.link.dma_write(self.params.descriptor_bytes)
            queue.ring.append(frame)
            if ctx is not None:
                obs.record("nic.rx", "nic", ctx, rx_start_ns, self.sim.now,
                           queue=queue.index)
            queue.gate.open()

    def _classify(self, frame: Frame) -> BypassQueue:
        try:
            parsed = parse_udp_frame(frame, verify=False)
        except HeaderError:
            return self.queues[0]
        steered = self.flow_table.get(parsed.udp.dst_port)
        if steered is not None:
            return self.queues[steered]
        index = rss_queue_index(
            parsed.ip.src,
            parsed.ip.dst,
            parsed.udp.src_port,
            parsed.udp.dst_port,
            len(self.queues),
        )
        return self.queues[index]

    def bind_metrics(self, registry, prefix: str = "nic") -> None:
        super().bind_metrics(registry, prefix)
        for queue in self.queues:
            registry.probe(f"{prefix}.rxq{queue.index}", lambda q=queue: {
                "depth": len(q.ring), "drops": q.drops,
            })

    # -- PMD (user-space driver) --------------------------------------------

    def poll_op(self, queue: BypassQueue) -> ops.Call:
        """A thread op that busy-polls ``queue`` until a frame arrives.

        Usage in a worker body::

            frame = yield nic.poll_op(queue)
        """

        def pmd_poll(core, thread):
            from ..sim.engine import AnyOf

            params = self.params
            # Charge spin time in bounded quanta so energy accounting is
            # correct even while the worker is mid-spin when a run ends.
            while not queue.ring:
                segment_start = self.sim.now
                quantum = self.sim.timeout(self.poll_quantum_ns)
                yield AnyOf(self.sim, [queue.gate.wait(), quantum])
                # If the gate won the race, drop the guard timer from
                # the heap instead of letting it fire into the void.
                quantum.cancel()
                waited = self.sim.now - segment_start
                if waited > 0:
                    # The worker was spinning the whole time: busy, not idle.
                    core.counters.busy_ns += waited
                    per_iter_ns = core.instructions_ns(params.pmd_poll_instructions)
                    core.counters.instructions += int(
                        waited / per_iter_ns * params.pmd_poll_instructions
                    )
            frame = queue.ring.pop(0)
            if self.obs is not None and frame.peek_meta("obs") is not None:
                # Host receipt: the "app" span runs from here until the
                # response reaches transmit().
                frame.meta["_obs_rx_ns"] = self.sim.now
            # Final poll iteration that found the descriptor + RX work.
            yield from core.execute(
                params.pmd_poll_instructions + params.pmd_rx_instructions
            )
            return frame

        return ops.Call(pmd_poll)

    def poll_many_op(self, queues) -> ops.Call:
        """Busy-poll several rings round-robin until any has a frame.

        The multiplexing a bypass worker must do when services outnumber
        cores: every poll sweep pays the per-queue check for *all*
        queues, which is exactly the overhead the paper attributes to
        static queue/core assignment under dynamic workloads.
        """
        queue_list = list(queues)
        if not queue_list:
            raise ValueError("need at least one queue")

        def pmd_poll(core, thread):
            from ..sim.engine import AnyOf

            params = self.params
            sweep_cost = params.pmd_poll_instructions * len(queue_list)
            while True:
                ready = next((q for q in queue_list if q.ring), None)
                if ready is not None:
                    break
                segment_start = self.sim.now
                waits = [q.gate.wait() for q in queue_list]
                quantum = self.sim.timeout(self.poll_quantum_ns)
                yield AnyOf(self.sim, waits + [quantum])
                quantum.cancel()  # no-op if the quantum itself fired
                waited = self.sim.now - segment_start
                if waited > 0:
                    core.counters.busy_ns += waited
                    per_sweep_ns = core.instructions_ns(sweep_cost)
                    core.counters.instructions += int(
                        waited / per_sweep_ns * sweep_cost
                    )
            frame = ready.ring.pop(0)
            if self.obs is not None and frame.peek_meta("obs") is not None:
                frame.meta["_obs_rx_ns"] = self.sim.now
            yield from core.execute(sweep_cost + params.pmd_rx_instructions)
            return frame

        return ops.Call(pmd_poll)

    # -- transmit path ----------------------------------------------------------

    def transmit(self, frame: Frame, core):
        """PMD TX: descriptor write + doorbell, no syscall; generator."""
        obs = self.obs
        if obs is not None:
            # Close the host-software window opened at ring pop: parse,
            # unmarshal, handler, marshal (and for Snap, both channel
            # hops) all land in one "app" span.
            ctx = frame.peek_meta("obs")
            rx_ns = frame.pop_meta("_obs_rx_ns")
            if ctx is not None and rx_ns is not None:
                obs.record("app", "app", ctx, rx_ns, self.sim.now)
        yield from core.execute(self.params.pmd_tx_instructions)
        yield from self.link.mmio_write(core)
        delay = self.link.posted_delay_ns()

        def device_side():
            yield self.sim.timeout(delay)
            yield from self.link.dma_read(self.params.descriptor_bytes)
            yield from self.link.dma_read(len(frame.data))
            self.queue_tx(frame)

        self.sim.process(device_side())
        return None
