"""Common NIC device machinery.

Every NIC flavour in the reproduction (DMA/interrupt, kernel-bypass,
Lauberhorn) attaches to a switch :class:`~repro.net.link.Port` for the
wire side, and exposes:

* ``transmit(frame, core)`` — the CPU-side submit path (what the
  kernel/driver or user-space PMD pays to hand a frame to the device);
* an internal RX loop simulation process that models the device
  pipeline and delivers frames host-side by whatever mechanism the
  flavour uses (IRQ+ring, user-polled ring, or coherent cache lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.machine import Machine
from ..net.link import Port
from ..net.packet import Frame
from ..sim.resources import Store

__all__ = ["NicStats", "BaseNic"]


@dataclass
class NicStats:
    rx_frames: int = 0
    rx_dropped: int = 0
    tx_frames: int = 0


class BaseNic:
    """Shared plumbing: the port, the TX engine queue, stats."""

    def __init__(self, machine: Machine, port: Port, name: str = "nic"):
        self.machine = machine
        self.sim = machine.sim
        self.params = machine.params.nic
        self.link = machine.link
        self.port = port
        self.name = name
        self.stats = NicStats()
        #: optional fault hook (a zero-arg generator factory) run by the
        #: RX loop per received frame; installed by repro.faults
        self.rx_fault = None
        #: optional span recorder (repro.obs.spans.SpanRecorder); None
        #: means every hook is a single attribute test
        self.obs = None
        #: host label stamped onto root spans when the recorder's
        #: ``tag_origin`` is on; arm_testbed overwrites it per fleet
        #: host index (host-side bookkeeping only)
        self.obs_host = "host0"
        #: optional flight recorder (repro.obs.flight.FlightRecorder),
        #: same None-guarded contract as ``obs``
        self.flight = None
        self._tx_engine: Store = Store(self.sim, name=f"{name}.txq")
        self._started = False

    def start(self) -> None:
        """Spawn the device's RX and TX engine loops (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._rx_loop(), name=f"{self.name}-rx")
        self.sim.process(self._tx_loop(), name=f"{self.name}-tx")

    # -- wire-side TX engine ----------------------------------------------------

    def _tx_loop(self):
        while True:
            frame = yield self._tx_engine.get()
            yield from self._tx_frame(frame)
            self.stats.tx_frames += 1
            yield from self.port.send(frame)
            obs = self.obs
            if obs is not None:
                ctx = frame.peek_meta("obs")
                queued_ns = frame.pop_meta("_obs_txq_ns")
                if ctx is not None and queued_ns is not None:
                    obs.record("nic.tx", "nic", ctx, queued_ns, self.sim.now)
                if ctx is not None:
                    # Wire entry time for the receiver's "wire.*" span
                    # (born_ns marks frame *construction*, which for
                    # user-space stacks predates the device by the whole
                    # host TX path).
                    frame.meta["_obs_wire_ns"] = self.sim.now

    def _tx_frame(self, frame: Frame):
        """Device-side work before a frame hits the wire; overridable."""
        return
        yield  # pragma: no cover - makes this a generator

    def queue_tx(self, frame: Frame) -> None:
        """Hand a frame to the device TX engine (device-side call)."""
        if self.obs is not None and frame.peek_meta("obs") is not None:
            frame.meta["_obs_txq_ns"] = self.sim.now
        self._tx_engine.try_put(frame)

    # -- observability ----------------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "nic") -> None:
        """Register this device's stats with a metrics registry."""
        registry.bind(prefix, self.stats)
        # TX-engine occupancy: every flavour shares this ring, so the
        # time-series layer gets a NIC occupancy window probe for free.
        registry.probe(prefix, lambda: {
            "txq_depth": len(self._tx_engine),
        })

    # -- subclass responsibilities ------------------------------------------------

    def _rx_loop(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def transmit(self, frame: Frame, core):  # pragma: no cover - abstract
        """CPU-side submit path; generator run on ``core``."""
        raise NotImplementedError
