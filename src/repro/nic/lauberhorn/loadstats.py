"""Per-service load statistics gathered by the NIC (Section 5.2).

"this can be initiated by the kernel scheduler, or by Lauberhorn based
on statistics it gathers about the instantaneous load on each server
process" — these counters are that statistic source.  The OS-side
rebalancer (:class:`repro.os.nicsched.NicScheduler`) reads them over
the kernel control channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServiceLoad", "LoadStats"]


@dataclass
class ServiceLoad:
    """Load view of one service."""

    service_id: int
    arrivals: int = 0
    delivered_fast: int = 0       # answered an armed user end-point
    delivered_kernel: int = 0     # dispatched via a kernel channel
    queued: int = 0               # placed in a backlog
    dropped: int = 0
    completed: int = 0
    #: current total backlog across this service's end-points + global
    backlog_now: int = 0
    #: EWMA inter-arrival estimate (ns); meaningless until
    #: :attr:`ewma_seeded` — a genuine 0.0 means a same-instant burst,
    #: not "unset" (the two used to share the 0.0 sentinel, silently
    #: re-seeding the estimate after any zero-ns gap)
    ewma_interarrival_ns: float = 0.0
    ewma_seeded: bool = False
    last_arrival_ns: float = -1.0

    def note_arrival(self, now_ns: float, alpha: float = 0.2) -> None:
        self.arrivals += 1
        if self.last_arrival_ns >= 0:
            gap = now_ns - self.last_arrival_ns
            if not self.ewma_seeded:
                self.ewma_interarrival_ns = gap
                self.ewma_seeded = True
            else:
                self.ewma_interarrival_ns += alpha * (gap - self.ewma_interarrival_ns)
        self.last_arrival_ns = now_ns

    def arrival_rate_per_sec(self) -> float:
        if not self.ewma_seeded:
            return 0.0
        if self.ewma_interarrival_ns <= 0:
            # Seeded by same-instant arrivals: an infinitely hot
            # service, not an idle one.
            return float("inf")
        return 1e9 / self.ewma_interarrival_ns


class LoadStats:
    """All services' load counters."""

    def __init__(self):
        self._services: dict[int, ServiceLoad] = {}

    def service(self, service_id: int) -> ServiceLoad:
        load = self._services.get(service_id)
        if load is None:
            load = ServiceLoad(service_id)
            self._services[service_id] = load
        return load

    def all(self) -> list[ServiceLoad]:
        return list(self._services.values())

    def hottest(self, n: int = 1) -> list[ServiceLoad]:
        """Services by descending arrival rate."""
        return sorted(
            self._services.values(),
            key=lambda s: s.arrival_rate_per_sec(),
            reverse=True,
        )[:n]

    def aggregate(self, service_ids) -> dict:
        """Summed counters over a set of services — the per-tenant load
        view (a tenant owns a set of service ids)."""
        totals = {
            "arrivals": 0, "delivered_fast": 0, "delivered_kernel": 0,
            "queued": 0, "dropped": 0, "completed": 0, "backlog_now": 0,
        }
        for service_id in service_ids:
            load = self._services.get(service_id)
            if load is None:
                continue
            for key in totals:
                totals[key] += getattr(load, key)
        return totals

    def most_backlogged(self) -> "ServiceLoad | None":
        candidates = [s for s in self._services.values() if s.backlog_now > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.backlog_now)
