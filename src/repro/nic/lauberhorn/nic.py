"""The Lauberhorn NIC: an OS-integrated, cache-coherent RPC NIC.

This device implements the paper's receive fast path (Figure 3) and the
NIC<->CPU protocol (Figure 4):

* It **homes** every end-point's CONTROL/AUX cache lines on the
  coherence fabric.  A CPU load of a CONTROL line parks at the NIC
  until a request is available (the stalled load), or until the
  Tryagain timeout (15 ms) fires.
* Incoming frames stream through header decoders and the RPC
  deserialiser; the decoded request is delivered by *answering the
  parked fill* with a composed CONTROL line carrying the handler's code
  pointer, data pointer, and the arguments.
* The load on the *other* CONTROL line signals completion: before
  answering it, the NIC fetch-exclusives the first line (and any
  response AUX lines) out of the CPU's cache and transmits the response.
* Demultiplexing consults live OS scheduling state
  (:class:`~repro.nic.lauberhorn.sched_state.SchedTable`, updated by the
  kernel at every context switch) plus the arming state it observes
  directly from cache traffic.
* Payloads too large for the line protocol fall back to DMA
  (Section 6: "for large messages ... revert back to DMA-based
  transfers"; ~4 KiB on Enzian).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ...hw.coherence import FillResponse, HomeDevice
from ...hw.machine import Machine
from ...net.headers import HeaderError, MacAddress
from ...net.link import Port
from ...net.packet import build_udp_frame, parse_udp_frame
from ...obs.spans import public_meta
from ...rpc.message import RpcError, RpcMessage, RpcType
from ...rpc.service import ServiceDef, ServiceRegistry
from ...sim.engine import Event
from ..base import BaseNic
from . import wire
from .endpoint import Endpoint, EndpointKind, InflightRequest, PendingRequest
from .loadstats import LoadStats
from .sched_state import SchedTable
from .telemetry import TelemetryRing

__all__ = ["LauberhornNic", "LauberhornStats"]


@dataclass
class LauberhornStats:
    requests_decoded: int = 0
    delivered_fast: int = 0
    delivered_kernel: int = 0
    queued_endpoint: int = 0
    queued_global: int = 0
    dropped_no_service: int = 0
    dropped_backlog_full: int = 0
    responses_sent: int = 0
    tryagains: int = 0
    retires: int = 0
    dma_fallbacks: int = 0
    preempt_requests: int = 0


class LauberhornNic(BaseNic, HomeDevice):
    """The prototype NIC of Section 5, as a simulated device."""

    def __init__(
        self,
        machine: Machine,
        port: Port,
        registry: ServiceRegistry,
        mac: MacAddress,
        ip: int,
        n_aux: int = 31,
        dma_threshold_bytes: int = 4096,
        backlog_capacity: int = 64,
        preempt_on_backlog: bool = False,
        tryagain_timeout_ns: Optional[float] = None,
        name: str = "lauberhorn",
    ):
        if machine.fabric is None:
            raise ValueError(
                "Lauberhorn needs a cache-coherent interconnect "
                f"(machine {machine.params.name!r} has none)"
            )
        super().__init__(machine, port, name)
        self.fabric = machine.fabric
        self.line_bytes = self.fabric.line_bytes
        self.registry = registry
        self.mac = mac
        self.ip = ip
        self.default_n_aux = n_aux
        self.dma_threshold_bytes = dma_threshold_bytes
        #: response-direction threshold; None -> same as requests.
        #: (Separable so experiments can force one direction's
        #: mechanism without perturbing the other.)
        self.response_dma_threshold_bytes: Optional[int] = None
        self.backlog_capacity = backlog_capacity
        self.preempt_on_backlog = preempt_on_backlog
        self.tryagain_timeout_ns = (
            tryagain_timeout_ns
            if tryagain_timeout_ns is not None
            else machine.params.nic.tryagain_timeout_ns
        )
        #: instructions the kernel pays per context switch to keep the
        #: NIC's scheduling state fresh (one posted line store).
        self.sched_push_instructions = 25

        self.endpoints: list[Endpoint] = []
        self._by_line: dict[int, Endpoint] = {}
        self._service_endpoints: dict[int, list[Endpoint]] = {}
        self._kernel_endpoints: list[Endpoint] = []
        self._service_pid: dict[int, int] = {}
        self.global_backlog: list[PendingRequest] = []
        self.sched = SchedTable()
        self.load = LoadStats()
        self.lstats = LauberhornStats()
        self.telemetry = TelemetryRing()
        self._dma_payloads: dict[int, bytes] = {}
        #: continuation end-points for nested-RPC replies (Section 6)
        self._continuations: dict[int, Endpoint] = {}
        self._continuation_pool: list[Endpoint] = []
        self._next_cont_tag = 1 << 48  # disjoint from client request ids
        #: pseudo-service standing for "reply delivery" on continuations
        self._cont_service = ServiceDef(
            service_id=0, name="<continuation>", udp_port=0
        )
        #: OS hooks called when a request has no runnable target
        self.attention_hooks: list[Callable[[int, int], None]] = []
        #: optional multi-tenant isolation state (:mod:`repro.tenancy`);
        #: None means the exact historical single-tenant behaviour
        self.tenants = None
        self._tenant_backlog = None

    # -- configuration -------------------------------------------------------

    def register_service(self, service: ServiceDef, pid: int,
                         tenant=None) -> None:
        """Install a service's demux entry (OS does this at bind time).

        ``tenant`` (a :class:`repro.tenancy.TenantSpec`, id, or name)
        binds the service to a tenant of the attached table — this is
        where tenant identity enters the NIC, exactly as budgets would
        be programmed into demux hardware at bind time.
        """
        self._service_pid[service.service_id] = pid
        self._service_endpoints.setdefault(service.service_id, [])
        if tenant is not None:
            if self.tenants is None:
                raise RuntimeError(
                    "register_service(tenant=...) requires attach_tenants() "
                    "first")
            self.tenants.assign(service.service_id, tenant)

    def attach_tenants(self, table) -> None:
        """Install a :class:`repro.tenancy.TenantTable`: demux starts
        charging per-tenant, the global backlog becomes per-tenant
        queues under deficit-weighted round-robin, and token-bucket
        rate limits police admission.  Must happen before traffic."""
        from ...tenancy import DeficitRoundRobin

        if self.global_backlog:
            raise RuntimeError("attach_tenants() before traffic starts")
        self.tenants = table
        self._tenant_backlog = DeficitRoundRobin()
        for spec in table:
            self._tenant_backlog.add_tenant(spec.tenant_id, spec.weight)

    # -- tenant accounting (every path below is unreachable until
    #    attach_tenants is called; the untenanted fast path never pays) --

    def _tenant_of(self, service: ServiceDef):
        """Spec of the tenant owning ``service``; None on the untenanted
        path and for the continuation pseudo-service."""
        if self.tenants is None or service is self._cont_service:
            return None
        spec = self.tenants.tenant_for_service(service.service_id)
        self._tenant_backlog.add_tenant(spec.tenant_id, spec.weight)
        return spec

    def _tenant_stats(self, service: ServiceDef):
        spec = self._tenant_of(service)
        if spec is None:
            return None
        return self.tenants.stats[spec.tenant_id]

    def _over_budget(self, spec) -> bool:
        return (spec.ctrl_budget is not None
                and self.tenants.stats[spec.tenant_id].held_now
                >= spec.ctrl_budget)

    def _tenant_dispatchable(self, tenant_id: int) -> bool:
        return not self._over_budget(self.tenants.get(tenant_id))

    def _charge_tryagain(self, ep: Endpoint) -> None:
        if ep.service is None:
            return
        stats = self._tenant_stats(ep.service)
        if stats is not None:
            stats.tryagains += 1

    def _charge_ctrl_load(self, ep: Endpoint) -> None:
        if ep.service is None:
            return
        stats = self._tenant_stats(ep.service)
        if stats is not None:
            stats.ctrl_loads += 1

    def _tenant_complete(self, service: ServiceDef) -> None:
        spec = self._tenant_of(service)
        if spec is None:
            return
        stats = self.tenants.stats[spec.tenant_id]
        stats.completed += 1
        stats.held_now = max(0, stats.held_now - 1)
        if spec.ctrl_budget is not None:
            self._budget_kick()

    def _budget_kick(self) -> None:
        """A CONTROL line was just released: a parked fill that was
        budget-blocked may be serviceable now.  Without the kick it
        would sit until its Tryagain timeout — a 15 ms tail for no
        reason.  Scan order (endpoint id) is deterministic."""
        for ep in self.endpoints:
            if ep.parked is not None:
                request = self._next_request_for(ep)
                if request is not None:
                    self._consume_parked_and_deliver(ep, request)

    def create_endpoint(
        self,
        kind: EndpointKind,
        service: Optional[ServiceDef] = None,
        n_aux: Optional[int] = None,
        backlog_capacity: Optional[int] = None,
    ) -> Endpoint:
        """Allocate and home a new end-point's cache lines."""
        if kind is EndpointKind.USER and service is None:
            raise ValueError("user end-points must be bound to a service")
        aux = self.default_n_aux if n_aux is None else n_aux
        size = Endpoint.region_size(self.line_bytes, aux)
        region = self.machine.alloc.allocate(size, f"{self.name}-ep{len(self.endpoints)}")
        self.fabric.register_home(region, self)
        endpoint = Endpoint(
            endpoint_id=len(self.endpoints),
            kind=kind,
            region=region,
            line_bytes=self.line_bytes,
            n_aux=aux,
            service=service,
            backlog_capacity=(
                self.backlog_capacity if backlog_capacity is None else backlog_capacity
            ),
        )
        self.endpoints.append(endpoint)
        for addr in region.lines(self.line_bytes):
            self._by_line[addr] = endpoint
        if kind is EndpointKind.KERNEL:
            self._kernel_endpoints.append(endpoint)
        else:
            self._service_endpoints.setdefault(service.service_id, []).append(endpoint)
        return endpoint

    # -- continuation end-points (nested RPCs, Section 6) ---------------------

    def create_continuation_pool(self, n: int, n_aux: int = 4) -> None:
        """Pre-allocate reply end-points so acquiring one at call time
        is 'a cheap operation' — no allocation on the critical path."""
        for _ in range(n):
            endpoint = self.create_endpoint(
                EndpointKind.USER,
                service=self._cont_service,
                n_aux=n_aux,
            )
            endpoint.owner_label = "continuation-pool"
            self._continuation_pool.append(endpoint)

    def acquire_continuation(self) -> tuple[int, Endpoint]:
        """Take a reply end-point from the pool and bind a fresh tag.

        Returns (tag, endpoint).  The caller embeds the tag as the
        nested request's id; the matching RESPONSE is delivered to the
        end-point's CONTROL lines like a request.
        """
        if not self._continuation_pool:
            raise RuntimeError("continuation pool exhausted")
        endpoint = self._continuation_pool.pop()
        tag = self._next_cont_tag
        self._next_cont_tag += 1
        self._continuations[tag] = endpoint
        return tag, endpoint

    def release_continuation(self, tag: int, endpoint: Endpoint) -> None:
        """Return a reply end-point to the pool after use."""
        self._continuations.pop(tag, None)
        endpoint.inflight = None
        self._continuation_pool.append(endpoint)

    def add_attention_hook(self, hook: Callable[[int, int], None]) -> None:
        """``hook(service_id, backlog_depth)`` fires when a request has
        no armed end-point and its process is not running."""
        self.attention_hooks.append(hook)

    # -- kernel-pushed scheduling state ------------------------------------------

    def on_context_switch(self, core_id: int, process) -> None:
        """Called by the kernel on every address-space switch."""
        self.sched.record_switch(core_id, process.pid)

    # -- HomeDevice interface -----------------------------------------------------

    def service_time_ns(self) -> float:
        return 0.0

    def service_fill(self, core_id: int, addr: int, for_write: bool) -> Event:
        endpoint = self._by_line.get(addr - (addr % self.line_bytes))
        event = Event(self.sim)
        if endpoint is None or not endpoint.is_ctrl(addr):
            # AUX line (or stray): answer immediately from the home copy.
            event.succeed(FillResponse(data=b""))
            return event
        parity = endpoint.parity_of(addr)
        self.sim.process(
            self._ctrl_fill_fsm(endpoint, core_id, parity, event),
            name=f"{self.name}-fill-ep{endpoint.id}",
        )
        return event

    # -- the endpoint FSM ------------------------------------------------------------

    def _ctrl_fill_fsm(self, ep: Endpoint, core_id: int, parity: int, event: Event):
        """React to a CPU load on CONTROL[parity] of ``ep``."""
        ep.stats.ctrl_loads += 1
        if self.tenants is not None:
            self._charge_ctrl_load(ep)
        inflight = ep.inflight
        if inflight is not None and parity != inflight.parity:
            # Completion signal: issue the fetch-exclusive *before*
            # responding to this load ("Before responding to the read on
            # the second cache line, the NIC issues a fetch exclusive").
            # The invalidation takes effect now (channel ordering); the
            # data transfer and response transmission run concurrently
            # with the delivery below, keeping the pipeline full.
            ep.inflight = None
            self.telemetry.on_completion(inflight.request.tag, self.sim.now)
            self._begin_response_extraction(ep, inflight)
            if self.tenants is not None:
                self._tenant_complete(inflight.request.service)
        yield from self._arm(ep, core_id, parity, event)
        return None

    def _arm(self, ep: Endpoint, core_id: int, parity: int, event: Event):
        """Either deliver a waiting request or park the fill."""
        if ep.parked is not None:
            # A second core raced onto this end-point (end-points are
            # single-consumer by design): bounce it with Tryagain rather
            # than stranding the first core's parked fill.
            yield self.sim.timeout(self.params.compose_line_ns)
            ep.stats.tryagains += 1
            self.lstats.tryagains += 1
            if self.tenants is not None:
                self._charge_tryagain(ep)
            if self.flight is not None:
                self.flight.note("nic.tryagain", endpoint=ep.id, reason="race")
            event.succeed(
                FillResponse(data=wire.tryagain_line(self.line_bytes))
            )
            return None
        request = self._next_request_for(ep)
        if request is not None:
            yield from self._deliver(ep, parity, event, request)
            return None
        ep.parked = (core_id, parity, event)
        ep.generation += 1
        self.sim.process(
            self._tryagain_timer(ep, ep.generation),
            name=f"{self.name}-tryagain-ep{ep.id}",
        )
        return None

    def _next_request_for(self, ep: Endpoint) -> Optional[PendingRequest]:
        if self.tenants is not None:
            return self._next_request_tenanted(ep)
        if ep.backlog:
            request = ep.backlog.pop(0)
            self._note_unqueued(request)
            return request
        if ep.kind is EndpointKind.KERNEL and self.global_backlog:
            request = self.global_backlog.pop(0)
            self._note_unqueued(request)
            return request
        if ep.kind is EndpointKind.USER and ep.service is not None:
            # A user loop arming may drain requests that earlier fell
            # back to the global queue for its service.
            for index, queued in enumerate(self.global_backlog):
                if queued.service.service_id == ep.service.service_id:
                    del self.global_backlog[index]
                    self._note_unqueued(queued)
                    return queued
        return None

    def _next_request_tenanted(self, ep: Endpoint) -> Optional[PendingRequest]:
        """Tenant-aware twin of :meth:`_next_request_for`: the same
        queue-consultation order, but budget-gated and arbitrated by
        deficit-weighted round-robin instead of global FIFO."""
        if ep.backlog:
            spec = self._tenant_of(ep.service) if ep.service is not None else None
            if spec is not None and self._over_budget(spec):
                return None  # park: the tenant holds its full budget
            request = ep.backlog.pop(0)
            self._note_unqueued(request)
            return request
        if ep.kind is EndpointKind.KERNEL and len(self._tenant_backlog):
            popped = self._tenant_backlog.pop(self._tenant_dispatchable)
            if popped is not None:
                _tid, request = popped
                self._note_unqueued(request)
                return request
            return None
        if ep.kind is EndpointKind.USER and ep.service is not None \
                and ep.service is not self._cont_service:
            spec = self._tenant_of(ep.service)
            if self._over_budget(spec):
                return None
            sid = ep.service.service_id
            request = self._tenant_backlog.steal(
                spec.tenant_id,
                lambda queued: queued.service.service_id == sid,
            )
            if request is not None:
                self._note_unqueued(request)
                return request
        return None

    def _note_unqueued(self, request: PendingRequest) -> None:
        load = self.load.service(request.service.service_id)
        load.backlog_now = max(0, load.backlog_now - 1)
        if self.tenants is not None:
            stats = self._tenant_stats(request.service)
            if stats is not None:
                stats.queued_now = max(0, stats.queued_now - 1)

    def set_tryagain_timeout_ns(self, value: float) -> None:
        """Runtime actuation hook (:mod:`repro.ctrl`): retune the
        Tryagain park timeout.  The timer reads the attribute fresh on
        every arm, so a change applies to the next parked fill — timers
        already in flight keep the timeout they were armed with.
        """
        if value <= 0:
            raise ValueError(f"non-positive tryagain timeout: {value}")
        self.tryagain_timeout_ns = float(value)

    def _tryagain_timer(self, ep: Endpoint, generation: int):
        yield self.sim.timeout(self.tryagain_timeout_ns)
        if ep.generation != generation or ep.parked is None:
            return None
        _core, _parity, event = ep.parked
        ep.parked = None
        ep.generation += 1
        yield self.sim.timeout(self.params.compose_line_ns)
        ep.stats.tryagains += 1
        self.lstats.tryagains += 1
        if self.tenants is not None:
            self._charge_tryagain(ep)
        if self.flight is not None:
            self.flight.note("nic.tryagain", endpoint=ep.id, reason="timeout")
        event.succeed(FillResponse(data=wire.tryagain_line(self.line_bytes)))
        return None

    def send_tryagain(self, ep: Endpoint) -> bool:
        """Immediately answer a parked fill with Tryagain (preemption
        support, Section 5.1/5.2).  Returns False if nothing is parked."""
        if ep.parked is None:
            return False
        _core, _parity, event = ep.parked
        ep.parked = None
        ep.generation += 1
        ep.stats.tryagains += 1
        self.lstats.tryagains += 1
        if self.tenants is not None:
            self._charge_tryagain(ep)
        if self.flight is not None:
            self.flight.note("nic.tryagain", endpoint=ep.id, reason="preempt")
        event.succeed(FillResponse(data=wire.tryagain_line(self.line_bytes)))
        return True

    def retire(self, ep: Endpoint) -> bool:
        """Answer a parked kernel thread with Retire, reclaiming its core
        (Section 5.2 on non-preemptive kernels)."""
        if ep.parked is None:
            return False
        _core, _parity, event = ep.parked
        ep.parked = None
        ep.generation += 1
        ep.stats.retires += 1
        self.lstats.retires += 1
        event.succeed(FillResponse(data=wire.retire_line(self.line_bytes)))
        return True

    # -- delivery --------------------------------------------------------------------

    def _deliver(self, ep: Endpoint, parity: int, event: Event, request: PendingRequest):
        service = request.service
        method = service.methods.get(request.method_id)
        code_ptr = method.code_ptr if method else 0
        flags = wire.FLAG_VALID_REQ
        if ep.kind is EndpointKind.KERNEL:
            flags |= wire.FLAG_KERNEL_DISPATCH

        dma_addr = 0
        use_dma = (
            len(request.payload) > ep.max_line_payload()
            or len(request.payload) >= self.dma_threshold_bytes
        )
        if use_dma:
            flags |= wire.FLAG_DMA_FALLBACK
            dma_region = self.machine.alloc.allocate(
                max(len(request.payload), 1), "lauberhorn-dma"
            )
            dma_addr = dma_region.base
            self._dma_payloads[dma_addr] = request.payload
            self.lstats.dma_fallbacks += 1
            # Fixed DMA machinery cost (buffer, IOMMU, descriptors,
            # completion) plus the bulk transfer itself.
            yield self.sim.timeout(self.params.dma_fallback_fixed_ns)
            yield from self.link.dma_write(len(request.payload))

        control, aux_lines = wire.encode_request(
            self.line_bytes,
            service_id=service.service_id,
            method_id=request.method_id,
            code_ptr=code_ptr,
            data_ptr=service.data_ptr,
            tag=request.tag,
            payload=request.payload,
            flags=flags,
            dma_addr=dma_addr,
        )
        # Stage AUX lines before answering the CONTROL fill; any lines
        # the CPU still holds are recalled concurrently (the NIC's
        # coherence engine pipelines invalidations).
        to_recall = [
            ep.aux_addrs[i]
            for i in range(len(aux_lines))
            if self.fabric.has_holders(ep.aux_addrs[i])
        ]
        if to_recall:
            from ...sim.engine import AllOf

            recalls = [
                self.sim.process(self.fabric.device_recall(addr))
                for addr in to_recall
            ]
            yield AllOf(self.sim, recalls)
        for index, line_data in enumerate(aux_lines):
            self.fabric.device_write(ep.aux_addrs[index], line_data)
        yield self.sim.timeout(self.params.compose_line_ns)

        ep.inflight = InflightRequest(
            request=request,
            parity=parity,
            delivered_ns=self.sim.now,
            via_kernel=ep.kind is EndpointKind.KERNEL,
            dma=use_dma,
        )
        ep.last_delivery_ns = self.sim.now
        ep.stats.delivered += 1
        ep.generation += 1
        if service is not self._cont_service:
            self.telemetry.on_delivery(
                request.tag, self.sim.now, ep.kind is EndpointKind.KERNEL
            )
            obs = self.obs
            if obs is not None:
                dispatch_span = request.meta.pop("_obs_dispatch", None)
                if dispatch_span is not None:
                    obs.finish(dispatch_span,
                               via_kernel=ep.kind is EndpointKind.KERNEL)
                ctx = request.meta.get("obs")
                if ctx is not None:
                    # Handler window, NIC-observed: delivery (CONTROL
                    # fill answered) to completion (the other line's
                    # load) — zero software on the data path.
                    request.meta["_obs_service"] = obs.start(
                        "app", "app", ctx)
            load = self.load.service(service.service_id)
            if ep.kind is EndpointKind.KERNEL:
                ep.stats.kernel_dispatches += 1
                load.delivered_kernel += 1
                self.lstats.delivered_kernel += 1
            else:
                load.delivered_fast += 1
                self.lstats.delivered_fast += 1
            if self.tenants is not None:
                tstats = self._tenant_stats(service)
                if tstats is not None:
                    tstats.held_now += 1  # CONTROL line now held by tenant
                    if use_dma:
                        tstats.dma_fallbacks += 1
                    if ep.kind is EndpointKind.KERNEL:
                        tstats.delivered_kernel += 1
                    else:
                        tstats.delivered_fast += 1
        event.succeed(FillResponse(data=control))
        return None

    def read_dma_buffer(self, addr: int) -> bytes:
        """CPU-side helper: fetch and free a DMA-fallback payload."""
        return self._dma_payloads.pop(addr)

    def stage_response_dma(self, payload: bytes) -> int:
        """CPU-side helper: place a large response in a host buffer the
        NIC will DMA-read (the response-direction twin of the Section 6
        fallback).  Returns the buffer address for the CONTROL line."""
        region = self.machine.alloc.allocate(max(len(payload), 1),
                                             "lauberhorn-resp-dma")
        self._dma_payloads[region.base] = payload
        return region.base

    def completion_signal(self, ep: Endpoint) -> bool:
        """Device-side: extract+transmit the in-flight response *now*.

        Used by the kernel dispatch path, which signals completion with
        an explicit posted write rather than by loading the alternate
        CONTROL line (it is about to leave for a promoted user loop,
        Figure 5 ①, so the implicit signal would come far too late).
        """
        inflight = ep.inflight
        if inflight is None:
            return False
        ep.inflight = None
        self.telemetry.on_completion(inflight.request.tag, self.sim.now)
        self._begin_response_extraction(ep, inflight)
        if self.tenants is not None:
            self._tenant_complete(inflight.request.service)
        return True

    def completion_signal_op(self, ep: Endpoint):
        """CPU-side thread op raising :meth:`completion_signal`: a
        posted store to a NIC-homed doorbell line (~tens of ns busy)."""
        from ...os import ops

        def signal(core, thread):
            yield from core.busy_ns(30.0)
            delay = self.machine.params.interconnect.one_way_ns

            def arrive():
                yield self.sim.timeout(delay)
                self.completion_signal(ep)

            self.sim.process(arrive())
            return None

        return ops.Call(signal)

    # -- response extraction ------------------------------------------------------------

    def _begin_response_extraction(
        self, ep: Endpoint, inflight: InflightRequest
    ) -> None:
        """Claim the response lines (invalidations effective immediately,
        by interconnect channel ordering) and spawn the timed
        extraction + transmit tail, which overlaps with the next
        delivery on this end-point."""
        from ...sim.clock import bytes_time_ns

        obs = self.obs
        if obs is not None:
            service_span = inflight.request.meta.pop("_obs_service", None)
            if service_span is not None:
                obs.finish(service_span)
            if "obs" in inflight.request.meta:
                inflight.request.meta["_obs_done_ns"] = self.sim.now
        ctrl_addr = ep.ctrl_addrs[inflight.parity]
        data, dirty = self.fabric.device_claim(ctrl_addr)
        header_n_aux = data[1]
        aux_payloads = []
        wire_delay = self.fabric.claim_transfer_ns(dirty)
        for index in range(header_n_aux):
            aux_data, aux_dirty = self.fabric.device_claim(
                ep.resp_aux_addrs[index]
            )
            aux_payloads.append(aux_data)
            if aux_dirty:
                # AUX data pipelines behind the CONTROL line: one extra
                # serialisation each, no extra round trips.
                wire_delay += bytes_time_ns(
                    self.line_bytes,
                    self.machine.params.interconnect.bandwidth_bps,
                )
        self.sim.process(
            self._finish_response(ep, inflight, data, aux_payloads, wire_delay),
            name=f"{self.name}-resp-ep{ep.id}",
        )

    def _finish_response(
        self,
        ep: Endpoint,
        inflight: InflightRequest,
        data: bytes,
        aux_payloads: list[bytes],
        wire_delay: float,
    ):
        yield self.sim.timeout(wire_delay)
        try:
            line, payload = wire.decode_response(data, aux_payloads)
        except wire.WireFormatError:
            line, payload = None, b""
        if line is not None and line.is_dma:
            # Large response: pull it from the host buffer over DMA.
            payload = self._dma_payloads.pop(line.dma_addr, b"")
            self.lstats.dma_fallbacks += 1
            yield self.sim.timeout(self.params.dma_fallback_fixed_ns)
            yield from self.link.dma_read(max(len(payload), 1))
        request = inflight.request
        message = RpcMessage.response(
            request.service.service_id,
            request.method_id,
            request.tag,
            payload,
        )
        if request.service.encrypted:
            from ...net.crypto import nic_crypto_ns

            yield self.sim.timeout(nic_crypto_ns(len(payload)))
        yield self.sim.timeout(self.params.compose_line_ns)
        obs = self.obs
        if obs is not None:
            ctx = request.meta.get("obs")
            done_ns = request.meta.pop("_obs_done_ns", None)
            if ctx is not None and done_ns is not None:
                obs.record("nic.egress", "nic", ctx, done_ns, self.sim.now)
        frame = build_udp_frame(
            src_mac=self.mac,
            dst_mac=request.reply_mac,
            src_ip=self.ip,
            dst_ip=request.reply_ip,
            src_port=request.service.udp_port,
            dst_port=request.reply_port,
            payload=message.pack(),
            born_ns=self.sim.now,
            meta=dict(public_meta(request.meta)),
        )
        ep.stats.completed += 1
        self.load.service(request.service.service_id).completed += 1
        self.lstats.responses_sent += 1
        self.telemetry.on_sent(request.tag, self.sim.now)
        self.queue_tx(frame)
        return None

    # -- receive path --------------------------------------------------------------------

    def _rx_loop(self):
        while True:
            frame = yield from self.port.receive()
            self.stats.rx_frames += 1
            if self.rx_fault is not None:
                yield from self.rx_fault()
            obs = self.obs
            ctx = frame.peek_meta("obs") if obs is not None else None
            if ctx is not None:
                obs.record("wire.req", "net", ctx, frame.born_ns, self.sim.now)
            rx_start_ns = self.sim.now
            yield self.sim.timeout(self.params.parse_ns + self.params.demux_ns)
            try:
                parsed = parse_udp_frame(frame)
                message = RpcMessage.unpack(parsed.payload)
            except (HeaderError, RpcError):
                self.stats.rx_dropped += 1
                continue
            if message.header.rpc_type is RpcType.RESPONSE:
                endpoint = self._continuations.get(message.header.request_id)
                if endpoint is None:
                    self.stats.rx_dropped += 1
                    continue
                yield self.sim.timeout(
                    self.params.deserialize_ns_per_64b
                    * math.ceil(max(len(message.payload), 1) / 64)
                )
                reply = PendingRequest(
                    service=self._cont_service,
                    method_id=message.header.method_id,
                    tag=message.header.request_id,
                    payload=message.payload,
                    reply_ip=parsed.ip.src,
                    reply_port=parsed.udp.src_port,
                    reply_mac=parsed.eth.src,
                    born_ns=frame.born_ns,
                    arrived_ns=self.sim.now,
                    meta=frame.copy_meta(),
                )
                if endpoint.armed:
                    self._consume_parked_and_deliver(endpoint, reply)
                else:
                    endpoint.push_backlog(reply)
                continue
            if message.header.rpc_type is not RpcType.REQUEST:
                self.stats.rx_dropped += 1
                continue
            try:
                service = self.registry.by_port(parsed.udp.dst_port)
            except KeyError:
                self.lstats.dropped_no_service += 1
                self.stats.rx_dropped += 1
                continue
            # Demux is where the serving identity becomes known:
            # annotate the *root* span (its id is what rides in
            # Frame.meta["obs"]) so tail/SLO/flame forensics can group
            # by (host, tenant, service).  Gated on tag_origin so
            # armed-but-untagged runs keep their historical payloads.
            tag = ctx is not None and obs.tag_origin
            if tag:
                obs.annotate(ctx, host=self.obs_host, service=service.name)
            if self.tenants is not None:
                # Rate-limit policing at demux time: the tenant is known
                # (service lookup above) but the expensive pipeline
                # stages (AEAD, deserialise) have not run yet — an
                # over-rate frame costs only parse+demux, which is the
                # whole point of gating admission here.
                spec = self._tenant_of(service)
                if tag:
                    obs.annotate(ctx, tenant=spec.name)
                tstats = self.tenants.stats[spec.tenant_id]
                tstats.arrivals += 1
                bucket = self.tenants.bucket_for(spec.tenant_id)
                if bucket is not None and not bucket.allow(self.sim.now):
                    tstats.rate_dropped += 1
                    self.stats.rx_dropped += 1
                    continue
                tstats.admitted += 1
            if service.encrypted:
                # Inline AEAD open in the NIC pipeline (Section 6).
                from ...net.crypto import nic_crypto_ns

                yield self.sim.timeout(nic_crypto_ns(len(message.payload)))
            # On-NIC deserialisation (Optimus-Prime-style streaming).
            yield self.sim.timeout(
                self.params.deserialize_ns_per_64b
                * math.ceil(max(len(message.payload), 1) / 64)
            )
            self.lstats.requests_decoded += 1
            request = PendingRequest(
                service=service,
                method_id=message.header.method_id,
                tag=message.header.request_id,
                payload=message.payload,
                reply_ip=parsed.ip.src,
                reply_port=parsed.udp.src_port,
                reply_mac=parsed.eth.src,
                born_ns=frame.born_ns,
                arrived_ns=self.sim.now,
                meta=frame.copy_meta(),
            )
            self.load.service(service.service_id).note_arrival(self.sim.now)
            self.telemetry.on_arrival(request.tag, service.service_id, self.sim.now)
            if ctx is not None:
                obs.record("nic.rx", "nic", ctx, rx_start_ns, self.sim.now)
                # Open the dispatch window; _deliver closes it (the
                # span object travels in the request's metadata).
                request.meta["_obs_dispatch"] = obs.start(
                    "nic.dispatch", "nic", ctx)
            self._dispatch_request(request)

    def _dispatch_request(self, request: PendingRequest) -> None:
        """Route a decoded request per Section 5.2's policy.

        With tenants attached, direct delivery (steps 1 and 3) is
        budget-gated — a tenant at its CONTROL-line cap can still
        *queue* (queued work holds no lines) but cannot take another
        line until a completion frees one — and the global overflow
        queue (step 4) is the tenant's DWRR queue instead of the
        shared FIFO.
        """
        service_id = request.service.service_id
        load = self.load.service(service_id)
        spec = self._tenant_of(request.service)
        budget_blocked = spec is not None and self._over_budget(spec)

        # 1. Fast path: a user-mode loop is stalled on this service's lines.
        if not budget_blocked:
            for ep in self._service_endpoints.get(service_id, ()):
                if ep.armed:
                    self._consume_parked_and_deliver(ep, request)
                    return

        # 2. The process is on-core but busy: queue on its end-point;
        #    its next CONTROL load picks the request up with no kernel
        #    involvement.
        pid = self._service_pid.get(service_id)
        if pid is not None and self.sched.is_running(pid):
            for ep in self._service_endpoints.get(service_id, ()):
                if ep.push_backlog(request):
                    load.queued += 1
                    load.backlog_now += 1
                    self.lstats.queued_endpoint += 1
                    if spec is not None:
                        self.tenants.stats[spec.tenant_id].queued_now += 1
                    return
            # fall through when backlogs are full

        # 3. Kernel dispatch: a parked kernel thread takes it.
        if not budget_blocked:
            for ep in self._kernel_endpoints:
                if ep.armed:
                    self._consume_parked_and_deliver(ep, request)
                    return

        # 4. Nobody is waiting: queue globally and alert the OS.
        if spec is not None:
            if len(self._tenant_backlog) < 4096:
                self._tenant_backlog.push(spec.tenant_id, request)
                load.queued += 1
                load.backlog_now += 1
                self.lstats.queued_global += 1
                self.tenants.stats[spec.tenant_id].queued_now += 1
            else:
                load.dropped += 1
                self.lstats.dropped_backlog_full += 1
                self.tenants.stats[spec.tenant_id].dropped += 1
                return
        elif len(self.global_backlog) < 4096:
            self.global_backlog.append(request)
            load.queued += 1
            load.backlog_now += 1
            self.lstats.queued_global += 1
        else:
            load.dropped += 1
            self.lstats.dropped_backlog_full += 1
            return
        for hook in self.attention_hooks:
            hook(service_id, load.backlog_now)
        if self.preempt_on_backlog:
            self._preempt_a_victim(service_id)

    def _consume_parked_and_deliver(self, ep: Endpoint, request: PendingRequest) -> None:
        core_id, parity, event = ep.parked
        ep.parked = None
        ep.generation += 1
        self.sim.process(
            self._deliver(ep, parity, event, request),
            name=f"{self.name}-deliver-ep{ep.id}",
        )

    def _preempt_a_victim(self, wanting_service_id: int) -> None:
        """Unblock an armed user loop of a *different* service so its
        core re-enters the kernel and can serve the backlog.  Picks the
        coldest victim (longest since its last delivery) to avoid
        preempting an actively hot loop."""
        candidates = [
            ep
            for ep in self.endpoints
            if ep.kind is EndpointKind.USER
            and ep.armed
            and ep.service is not None
            and ep.service.service_id != wanting_service_id
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda ep: ep.last_delivery_ns)
        self.lstats.preempt_requests += 1
        self.send_tryagain(victim)

    # -- observability ------------------------------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "nic") -> None:
        super().bind_metrics(registry, prefix)
        registry.bind(f"{prefix}.lauberhorn", self.lstats)
        registry.probe(f"{prefix}.telemetry", lambda: {
            "completed": len(self.telemetry.completed),
            "inflight": len(self.telemetry._inflight),
            "dropped": self.telemetry.dropped,
            "reused": self.telemetry.reused,
        })
        registry.probe(f"{prefix}.backlog", lambda: {
            "global": len(self.global_backlog),
            "endpoints": sum(len(ep.backlog) for ep in self.endpoints),
        })
        if self.tenants is not None:
            # Per-tenant ledger; only present when a table is attached,
            # so untenanted metric snapshots are unchanged.  Two views
            # of the same counters: the nested dict for snapshot
            # consumers, and flat `{prefix}.tenant.<name>.<counter>`
            # rows so TimeSeriesSampler.series()/rate_series() can
            # chart a single tenant counter by key.
            registry.probe(f"{prefix}.tenants", self.tenants.snapshot)
            registry.probe(f"{prefix}.tenant", self.tenants.snapshot_by_id)

    # -- debug/validation --------------------------------------------------------------------

    def check_quiescent(self) -> list[str]:
        """Consistency check for a drained NIC; returns violations.

        After all traffic completes, nothing should be in flight: no
        undelivered backlog, no owed responses, no leaked continuations
        or DMA buffers, and the counters must balance.  Tests call this
        after a run; an empty list means all clear.
        """
        problems: list[str] = []
        if self.global_backlog:
            problems.append(f"{len(self.global_backlog)} requests in the "
                            "global backlog")
        if self._tenant_backlog is not None and len(self._tenant_backlog):
            problems.append(f"{len(self._tenant_backlog)} requests in "
                            "tenant DWRR queues")
        for ep in self.endpoints:
            if ep.backlog:
                problems.append(f"endpoint {ep.id}: {len(ep.backlog)} "
                                "backlogged requests")
            if ep.inflight is not None:
                problems.append(f"endpoint {ep.id}: response still owed")
        if self._continuations:
            problems.append(f"{len(self._continuations)} leaked continuations")
        if self._dma_payloads:
            problems.append(f"{len(self._dma_payloads)} unclaimed DMA buffers")
        delivered = self.lstats.delivered_fast + self.lstats.delivered_kernel
        if self.lstats.responses_sent > delivered:
            problems.append(
                f"sent {self.lstats.responses_sent} responses for only "
                f"{delivered} deliveries"
            )
        if self.telemetry._inflight:
            problems.append(
                f"{len(self.telemetry._inflight)} telemetry timelines open"
            )
        return problems

    # -- CPU-side transmit (PIO path for non-RPC kernel traffic) ----------------------------

    def transmit(self, frame, core):
        """PIO transmit over the coherent link ([21]'s model): the core
        writes the frame as lines; cheap, posted."""
        lines = math.ceil(len(frame.data) / self.line_bytes)
        yield from core.busy_ns(lines * 15.0)
        delay = self.machine.params.interconnect.one_way_ns

        def arrive():
            yield self.sim.timeout(delay)
            self.queue_tx(frame)

        self.sim.process(arrive())
        return None
