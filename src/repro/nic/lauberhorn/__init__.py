"""Lauberhorn: the paper's OS-integrated cache-coherent NIC (S7)."""

from . import wire
from .endpoint import Endpoint, EndpointKind, InflightRequest, PendingRequest
from .loadstats import LoadStats, ServiceLoad
from .nic import LauberhornNic, LauberhornStats
from .sched_state import SchedTable

__all__ = [
    "Endpoint",
    "EndpointKind",
    "InflightRequest",
    "LauberhornNic",
    "LauberhornStats",
    "LoadStats",
    "PendingRequest",
    "SchedTable",
    "ServiceLoad",
    "wire",
]
