"""Per-RPC telemetry gathered by the NIC (Section 6).

"support for tracing, debugging, and statistics presents interesting
properties for further close integration with the OS" — because the
NIC sees every stage of an RPC's life, it can produce a complete
timeline with zero software on the data path:

* ``arrived``   — last byte decoded off the wire;
* ``delivered`` — the CONTROL-line fill answered (handler starts);
* ``completed`` — the completion signal observed (handler done);
* ``sent``      — the response frame queued to the wire.

The OS reads the ring over the kernel control channel (modelled as a
direct view; E8 prices the channel).  The breakdown distinguishes
*queueing* (arrived->delivered: nobody was armed) from *service*
(delivered->completed) from *egress* (completed->sent), which is
exactly what a fleet operator needs to tell overload from slow code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ...metrics.histogram import LatencyRecorder, LatencySummary

__all__ = ["RpcTimeline", "TelemetryRing"]


@dataclass
class RpcTimeline:
    """One RPC's NIC-observed timeline (all times in ns)."""

    tag: int
    service_id: int
    arrived_ns: float
    delivered_ns: Optional[float] = None
    completed_ns: Optional[float] = None
    sent_ns: Optional[float] = None
    via_kernel: bool = False

    @property
    def queueing_ns(self) -> Optional[float]:
        if self.delivered_ns is None:
            return None
        return self.delivered_ns - self.arrived_ns

    @property
    def service_ns(self) -> Optional[float]:
        if self.completed_ns is None or self.delivered_ns is None:
            return None
        return self.completed_ns - self.delivered_ns

    @property
    def egress_ns(self) -> Optional[float]:
        if self.sent_ns is None or self.completed_ns is None:
            return None
        return self.sent_ns - self.completed_ns

    @property
    def total_ns(self) -> Optional[float]:
        if self.sent_ns is None:
            return None
        return self.sent_ns - self.arrived_ns


class TelemetryRing:
    """A bounded ring of completed timelines plus in-flight tracking."""

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: bounded FIFO of finished timelines; eviction is O(1)
        self.completed: deque[RpcTimeline] = deque(maxlen=capacity)
        self.dropped = 0
        #: arrivals whose tag was already in flight (client retransmits
        #: under a lossy wire); the stale timeline is retired, not lost
        #: silently
        self.reused = 0
        self._inflight: dict[int, RpcTimeline] = {}

    # -- NIC-side hooks --------------------------------------------------------

    def on_arrival(self, tag: int, service_id: int, now_ns: float) -> None:
        stale = self._inflight.get(tag)
        if stale is not None:
            # A retransmission reused the tag while the original is
            # still in flight.  Overwriting would silently corrupt the
            # original's timeline; retire it instead and count the
            # collision so operators can see retransmission pressure.
            self.reused += 1
            self._retire(stale)
        self._inflight[tag] = RpcTimeline(
            tag=tag, service_id=service_id, arrived_ns=now_ns
        )

    def on_delivery(self, tag: int, now_ns: float, via_kernel: bool) -> None:
        timeline = self._inflight.get(tag)
        if timeline is not None:
            timeline.delivered_ns = now_ns
            timeline.via_kernel = via_kernel

    def on_completion(self, tag: int, now_ns: float) -> None:
        timeline = self._inflight.get(tag)
        if timeline is not None:
            timeline.completed_ns = now_ns

    def on_sent(self, tag: int, now_ns: float) -> None:
        timeline = self._inflight.pop(tag, None)
        if timeline is None:
            return
        timeline.sent_ns = now_ns
        self._retire(timeline)

    def _retire(self, timeline: RpcTimeline) -> None:
        # deque(maxlen=...) evicts the oldest entry on append; count it
        # first so `dropped` stays exact.
        if len(self.completed) == self.capacity:
            self.dropped += 1
        self.completed.append(timeline)

    # -- OS-side queries ---------------------------------------------------------

    def for_service(self, service_id: int) -> list[RpcTimeline]:
        return [t for t in self.completed if t.service_id == service_id]

    def for_services(self, service_ids) -> list[RpcTimeline]:
        """Timelines for any of a set of services — the per-tenant
        query (a tenant owns a *set* of service ids)."""
        wanted = set(service_ids)
        return [t for t in self.completed if t.service_id in wanted]

    def breakdown_for(self, service_ids) -> dict[str, LatencySummary]:
        """Per-stage percentile summaries over a set of services —
        per-tenant p99.9 attribution for the isolation experiments."""
        timelines = self.for_services(service_ids)
        stages = {
            "queueing": [t.queueing_ns for t in timelines],
            "service": [t.service_ns for t in timelines],
            "egress": [t.egress_ns for t in timelines],
            "total": [t.total_ns for t in timelines],
        }
        summaries: dict[str, LatencySummary] = {}
        for name, samples in stages.items():
            recorder = LatencyRecorder(name)
            recorder.extend(s for s in samples if s is not None)
            summary = recorder.summary_or_none()
            if summary is not None:
                summaries[name] = summary
        return summaries

    def breakdown(self, service_id: Optional[int] = None) -> dict[str, LatencySummary]:
        """Percentile summaries of each pipeline stage."""
        timelines = (
            self.completed if service_id is None else self.for_service(service_id)
        )
        stages = {
            "queueing": [t.queueing_ns for t in timelines],
            "service": [t.service_ns for t in timelines],
            "egress": [t.egress_ns for t in timelines],
            "total": [t.total_ns for t in timelines],
        }
        summaries: dict[str, LatencySummary] = {}
        for name, samples in stages.items():
            recorder = LatencyRecorder(name)
            recorder.extend(s for s in samples if s is not None)
            summary = recorder.summary_or_none()
            if summary is not None:
                summaries[name] = summary
        return summaries

    def kernel_dispatch_fraction(self) -> float:
        if not self.completed:
            return 0.0
        via_kernel = sum(1 for t in self.completed if t.via_kernel)
        return via_kernel / len(self.completed)
