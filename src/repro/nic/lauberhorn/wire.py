"""CONTROL/AUX cache-line layouts for the Lauberhorn protocol.

A request is delivered to the CPU as one CONTROL line plus zero or more
AUX lines (Figure 4): the CONTROL line carries exactly what the paper
says the stalled load should return — "just the arguments and virtual
address of the first instruction of the target function to jump to" —
plus the flags/metadata the protocol needs.

CONTROL line, NIC -> CPU (request delivery):

====== ===== =========================================================
offset size  field
====== ===== =========================================================
0      1     flags (VALID_REQ / TRYAGAIN / RETIRE / DMA_FALLBACK /
             KERNEL_DISPATCH / SCHED_HINT)
1      1     n_aux — AUX lines holding the rest of the payload
2      2     method_id
4      4     service_id
8      8     code_ptr — first instruction of the handler
16     8     data_ptr — service data segment
24     4     payload_len — total argument bytes
28     8     request tag
36     8     dma_addr (DMA_FALLBACK only)
44     4     reserved
48     ...   inline argument bytes
====== ===== =========================================================

CONTROL line, CPU -> NIC (response, written into the same line):

====== ===== =========================================================
0      1     flags (RESP_VALID)
1      1     n_aux — AUX lines holding the rest of the response
2      2     reserved
4      4     resp_len — total response bytes
8      8     request tag (echoed)
16     ...   inline response bytes
====== ===== =========================================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

__all__ = [
    "FLAG_VALID_REQ",
    "FLAG_TRYAGAIN",
    "FLAG_RETIRE",
    "FLAG_DMA_FALLBACK",
    "FLAG_KERNEL_DISPATCH",
    "FLAG_SCHED_HINT",
    "FLAG_RESP_VALID",
    "FLAG_RESP_DMA",
    "REQ_INLINE_OFFSET",
    "RESP_INLINE_OFFSET",
    "WireFormatError",
    "RequestLine",
    "ResponseLine",
    "encode_request",
    "decode_request_line",
    "encode_response",
    "encode_response_dma",
    "decode_response",
    "tryagain_line",
    "retire_line",
    "sched_hint_line",
    "lines_needed",
    "max_inline_payload",
]


class WireFormatError(ValueError):
    """Malformed CONTROL line contents."""


FLAG_VALID_REQ = 0x01
FLAG_TRYAGAIN = 0x02
FLAG_RETIRE = 0x04
FLAG_DMA_FALLBACK = 0x08
FLAG_KERNEL_DISPATCH = 0x10
FLAG_SCHED_HINT = 0x20
FLAG_RESP_VALID = 0x01

REQ_INLINE_OFFSET = 48
RESP_INLINE_OFFSET = 16

_REQ_HEADER = "!BBHIQQIQQ"  # through dma_addr (44 bytes), then pad to 48
assert struct.calcsize(_REQ_HEADER) == 44
_RESP_HEADER = "!BBHIQ"
assert struct.calcsize(_RESP_HEADER) == 16


@dataclass(frozen=True)
class RequestLine:
    """Decoded NIC->CPU CONTROL line."""

    flags: int
    n_aux: int
    method_id: int
    service_id: int
    code_ptr: int
    data_ptr: int
    payload_len: int
    tag: int
    dma_addr: int
    inline: bytes

    @property
    def is_tryagain(self) -> bool:
        return bool(self.flags & FLAG_TRYAGAIN)

    @property
    def is_retire(self) -> bool:
        return bool(self.flags & FLAG_RETIRE)

    @property
    def is_request(self) -> bool:
        return bool(self.flags & FLAG_VALID_REQ)

    @property
    def is_dma(self) -> bool:
        return bool(self.flags & FLAG_DMA_FALLBACK)

    @property
    def is_kernel_dispatch(self) -> bool:
        return bool(self.flags & FLAG_KERNEL_DISPATCH)

    @property
    def is_sched_hint(self) -> bool:
        return bool(self.flags & FLAG_SCHED_HINT)


#: response flag: payload staged in a host DMA buffer, not in lines
FLAG_RESP_DMA = 0x08


@dataclass(frozen=True)
class ResponseLine:
    """Decoded CPU->NIC CONTROL line."""

    flags: int
    n_aux: int
    resp_len: int
    tag: int
    inline: bytes
    dma_addr: int = 0

    @property
    def is_valid(self) -> bool:
        return bool(self.flags & FLAG_RESP_VALID)

    @property
    def is_dma(self) -> bool:
        return bool(self.flags & FLAG_RESP_DMA)


def max_inline_payload(line_bytes: int) -> int:
    return line_bytes - REQ_INLINE_OFFSET


def lines_needed(payload_len: int, line_bytes: int) -> int:
    """AUX lines needed for a payload after the inline chunk."""
    spill = payload_len - max_inline_payload(line_bytes)
    if spill <= 0:
        return 0
    return -(-spill // line_bytes)


def encode_request(
    line_bytes: int,
    service_id: int,
    method_id: int,
    code_ptr: int,
    data_ptr: int,
    tag: int,
    payload: bytes,
    flags: int = FLAG_VALID_REQ,
    dma_addr: int = 0,
) -> tuple[bytes, list[bytes]]:
    """Build (control_line, aux_lines) for a request delivery.

    With FLAG_DMA_FALLBACK the payload is *not* placed in lines — it is
    assumed DMA'd to ``dma_addr`` — and no AUX lines are produced.
    """
    if flags & FLAG_DMA_FALLBACK:
        inline, aux = b"", []
    else:
        cut = max_inline_payload(line_bytes)
        inline = payload[:cut]
        rest = payload[cut:]
        aux = [rest[i : i + line_bytes] for i in range(0, len(rest), line_bytes)]
    if len(aux) > 255:
        raise WireFormatError(f"payload needs {len(aux)} AUX lines (max 255)")
    header = struct.pack(
        _REQ_HEADER,
        flags,
        len(aux),
        method_id,
        service_id,
        code_ptr,
        data_ptr,
        len(payload),
        tag,
        dma_addr,
    )
    control = header + b"\x00" * (REQ_INLINE_OFFSET - len(header)) + inline
    if len(control) > line_bytes:
        raise WireFormatError("control line overflow")
    return control.ljust(line_bytes, b"\x00"), [a.ljust(line_bytes, b"\x00") for a in aux]


def decode_request_line(data: bytes) -> RequestLine:
    if len(data) < REQ_INLINE_OFFSET:
        raise WireFormatError(f"control line too short: {len(data)} B")
    (flags, n_aux, method_id, service_id, code_ptr, data_ptr, payload_len,
     tag, dma_addr) = struct.unpack(_REQ_HEADER, data[:44])
    inline = data[REQ_INLINE_OFFSET:]
    if not flags & FLAG_DMA_FALLBACK:
        inline = inline[: max(0, min(payload_len, len(inline)))]
    else:
        inline = b""
    return RequestLine(
        flags=flags,
        n_aux=n_aux,
        method_id=method_id,
        service_id=service_id,
        code_ptr=code_ptr,
        data_ptr=data_ptr,
        payload_len=payload_len,
        tag=tag,
        dma_addr=dma_addr,
        inline=inline,
    )


def assemble_request_payload(line: RequestLine, aux_lines: list[bytes]) -> bytes:
    """Reassemble the full payload from inline + AUX line contents."""
    if line.is_dma:
        raise WireFormatError("DMA-fallback payloads live in host memory")
    buffer = bytearray(line.inline)
    remaining = line.payload_len - len(buffer)
    for aux in aux_lines:
        take = min(remaining, len(aux))
        buffer += aux[:take]
        remaining -= take
    if remaining > 0:
        raise WireFormatError(f"payload short by {remaining} B")
    return bytes(buffer)


def encode_response(
    line_bytes: int, tag: int, payload: bytes
) -> tuple[bytes, list[bytes]]:
    """Build (control_line, aux_lines) for a CPU response."""
    cut = line_bytes - RESP_INLINE_OFFSET
    inline = payload[:cut]
    rest = payload[cut:]
    aux = [rest[i : i + line_bytes] for i in range(0, len(rest), line_bytes)]
    if len(aux) > 255:
        raise WireFormatError(f"response needs {len(aux)} AUX lines (max 255)")
    header = struct.pack(_RESP_HEADER, FLAG_RESP_VALID, len(aux), 0, len(payload), tag)
    control = header + inline
    return control.ljust(line_bytes, b"\x00"), [a.ljust(line_bytes, b"\x00") for a in aux]


def encode_response_dma(
    line_bytes: int, tag: int, resp_len: int, dma_addr: int
) -> bytes:
    """Response CONTROL line for a DMA-staged payload (no AUX lines)."""
    header = struct.pack(
        _RESP_HEADER, FLAG_RESP_VALID | FLAG_RESP_DMA, 0, 0, resp_len, tag
    )
    control = header + struct.pack("!Q", dma_addr)
    if len(control) > line_bytes:
        raise WireFormatError("response control line overflow")
    return control.ljust(line_bytes, b"\x00")


def decode_response(data: bytes, aux_lines: list[bytes]) -> tuple[ResponseLine, bytes]:
    """Decode a response control line + AUX lines into (line, payload).

    DMA-staged responses return an empty payload; the caller fetches it
    from host memory via ``line.dma_addr``.
    """
    if len(data) < RESP_INLINE_OFFSET:
        raise WireFormatError(f"response line too short: {len(data)} B")
    flags, n_aux, _rsvd, resp_len, tag = struct.unpack(_RESP_HEADER, data[:16])
    if flags & FLAG_RESP_DMA:
        if len(data) < RESP_INLINE_OFFSET + 8:
            raise WireFormatError("DMA response line truncated")
        dma_addr = struct.unpack(
            "!Q", data[RESP_INLINE_OFFSET : RESP_INLINE_OFFSET + 8]
        )[0]
        line = ResponseLine(flags=flags, n_aux=0, resp_len=resp_len, tag=tag,
                            inline=b"", dma_addr=dma_addr)
        return line, b""
    inline = data[RESP_INLINE_OFFSET:]
    line = ResponseLine(
        flags=flags, n_aux=n_aux, resp_len=resp_len, tag=tag,
        inline=inline[: min(resp_len, len(inline))],
    )
    buffer = bytearray(line.inline)
    remaining = resp_len - len(buffer)
    for aux in aux_lines:
        take = min(remaining, len(aux))
        buffer += aux[:take]
        remaining -= take
    if remaining > 0:
        raise WireFormatError(f"response short by {remaining} B")
    return line, bytes(buffer)


def _flag_only_line(line_bytes: int, flags: int) -> bytes:
    header = struct.pack(
        _REQ_HEADER, flags, 0, 0, 0, 0, 0, 0, 0, 0
    )
    return header.ljust(line_bytes, b"\x00")


def tryagain_line(line_bytes: int) -> bytes:
    """The dummy message answering a blocked load at timeout."""
    return _flag_only_line(line_bytes, FLAG_TRYAGAIN)


def retire_line(line_bytes: int) -> bytes:
    """Tells a parked kernel thread to give up its end-point."""
    return _flag_only_line(line_bytes, FLAG_RETIRE)


def sched_hint_line(line_bytes: int, service_id: int, backlog: int) -> bytes:
    """NIC -> kernel load information (Section 5.2)."""
    header = struct.pack(
        _REQ_HEADER, FLAG_SCHED_HINT, 0, 0, service_id, 0, 0, backlog, 0, 0
    )
    return header.ljust(line_bytes, b"\x00")
