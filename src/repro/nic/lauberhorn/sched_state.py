"""Scheduling state shared between the kernel and the NIC.

Section 4: "since the NIC is responsible for demultiplexing an incoming
packet to an application end-point, it should have access to all the
relevant OS state: which processes are currently in the run queues on
which cores, which are currently executing, and which are waiting."

The kernel pushes an update on every context switch (one posted store
to a NIC-homed line — the cost is charged on the switching core, see
``sched_push_instructions``); the NIC additionally *infers* arming
state from the cache traffic it observes (a parked fill on an
end-point's CONTROL line **is** the information that a core is
waiting there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SchedTable"]


@dataclass
class SchedTable:
    """The NIC's mirror of kernel scheduling state."""

    #: core id -> pid of the process last dispatched there
    core_process: dict[int, int] = field(default_factory=dict)
    #: pid -> set of cores currently hosting it
    process_cores: dict[int, set[int]] = field(default_factory=dict)
    #: number of updates received (E8 counts these)
    updates: int = 0

    def record_switch(self, core_id: int, pid: int) -> None:
        previous = self.core_process.get(core_id)
        if previous is not None:
            cores = self.process_cores.get(previous)
            if cores is not None:
                cores.discard(core_id)
                if not cores:
                    del self.process_cores[previous]
        self.core_process[core_id] = pid
        self.process_cores.setdefault(pid, set()).add(core_id)
        self.updates += 1

    def is_running(self, pid: int) -> bool:
        return bool(self.process_cores.get(pid))

    def cores_of(self, pid: int) -> frozenset[int]:
        return frozenset(self.process_cores.get(pid, ()))
