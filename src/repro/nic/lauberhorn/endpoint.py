"""Lauberhorn communication end-points.

Each end-point is a set of NIC-homed cache lines (Section 5.1): two
CONTROL lines — loads alternate between them, giving the NIC an
implicit completion signal — plus AUX lines for payloads larger than
the inline CONTROL capacity.

The end-point FSM, driven by the NIC core:

* ``IDLE`` — no load outstanding; arriving requests queue in the
  backlog.
* ``ARMED(parity)`` — a core's load on CONTROL[parity] is parked at the
  NIC; the next request is delivered by answering that fill.
* After delivery the end-point returns to IDLE *with* an in-flight
  request recorded; the load on CONTROL[1-parity] both signals
  completion (triggering response extraction) and re-arms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ...hw.address import Region
from ...rpc.service import ServiceDef
from ...sim.engine import Event

__all__ = ["EndpointKind", "InflightRequest", "PendingRequest", "Endpoint"]


class EndpointKind(enum.Enum):
    #: bound to one service's process; runs the user-mode fast path
    USER = "user"
    #: owned by a parked kernel thread; receives any service's requests
    KERNEL = "kernel"


@dataclass
class PendingRequest:
    """A decoded request waiting to be delivered to a CPU."""

    service: ServiceDef
    method_id: int
    tag: int
    payload: bytes
    reply_ip: int
    reply_port: int
    reply_mac: Any
    born_ns: float
    arrived_ns: float
    meta: dict = field(default_factory=dict)


@dataclass
class InflightRequest:
    """A request delivered to a CPU whose response is still owed."""

    request: PendingRequest
    parity: int
    delivered_ns: float
    via_kernel: bool = False
    dma: bool = False


@dataclass
class EndpointStats:
    #: CPU loads observed on this end-point's CONTROL lines; each must
    #: be answered exactly once (deliver/Tryagain/Retire) or be parked
    ctrl_loads: int = 0
    delivered: int = 0
    completed: int = 0
    tryagains: int = 0
    retires: int = 0
    backlog_peak: int = 0
    kernel_dispatches: int = 0


class Endpoint:
    """One end-point's lines, FSM state, and queues."""

    def __init__(
        self,
        endpoint_id: int,
        kind: EndpointKind,
        region: Region,
        line_bytes: int,
        n_aux: int,
        service: Optional[ServiceDef] = None,
        backlog_capacity: int = 64,
    ):
        self.id = endpoint_id
        self.kind = kind
        self.region = region
        self.line_bytes = line_bytes
        self.service = service
        self.backlog_capacity = backlog_capacity
        # Line addresses: [ctrl0, ctrl1, aux0..auxN-1, resp_aux0..]
        self.ctrl_addrs = (region.base, region.base + line_bytes)
        self.aux_addrs = tuple(
            region.base + (2 + i) * line_bytes for i in range(n_aux)
        )
        # Response AUX lines are a disjoint set (the "transmit path uses
        # a similar, disjoint set of cache lines").
        self.resp_aux_addrs = tuple(
            region.base + (2 + n_aux + i) * line_bytes for i in range(n_aux)
        )
        #: parked fill: (core_id, parity, event) or None
        self.parked: Optional[tuple[int, int, Event]] = None
        #: request delivered, response not yet extracted
        self.inflight: Optional[InflightRequest] = None
        self.backlog: list[PendingRequest] = []
        #: bumps on every state change; invalidates stale Tryagain timers
        self.generation = 0
        #: thread/core bookkeeping for the OS layer
        self.owner_label: str = ""
        #: when the NIC last delivered a request here (victim selection)
        self.last_delivery_ns: float = -1.0
        self.stats = EndpointStats()

    @classmethod
    def region_size(cls, line_bytes: int, n_aux: int) -> int:
        """Bytes of NIC-homed address space an end-point occupies."""
        return (2 + 2 * n_aux) * line_bytes

    @property
    def armed(self) -> bool:
        return self.parked is not None

    @property
    def armed_parity(self) -> Optional[int]:
        return self.parked[1] if self.parked else None

    def parity_of(self, addr: int) -> int:
        """Which CONTROL line an address belongs to (0 or 1)."""
        line_addr = addr - (addr % self.line_bytes)
        if line_addr == self.ctrl_addrs[0]:
            return 0
        if line_addr == self.ctrl_addrs[1]:
            return 1
        raise ValueError(f"{addr:#x} is not a CONTROL line of endpoint {self.id}")

    def is_ctrl(self, addr: int) -> bool:
        line_addr = addr - (addr % self.line_bytes)
        return line_addr in self.ctrl_addrs

    def max_line_payload(self) -> int:
        """Largest payload deliverable via lines (beyond: DMA fallback)."""
        from .wire import max_inline_payload

        return max_inline_payload(self.line_bytes) + len(self.aux_addrs) * self.line_bytes

    def push_backlog(self, request: PendingRequest) -> bool:
        """Queue a request; False if the backlog is full (drop)."""
        if len(self.backlog) >= self.backlog_capacity:
            return False
        self.backlog.append(request)
        self.stats.backlog_peak = max(self.stats.backlog_peak, len(self.backlog))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        svc = self.service.name if self.service else "*"
        return (
            f"<Endpoint {self.id} {self.kind.value} svc={svc} "
            f"armed={self.armed} backlog={len(self.backlog)}>"
        )
