"""Receive-Side Scaling: 4-tuple hashing to an RX queue.

A Toeplitz-flavoured but simplified hash — what matters for the
experiments is determinism and uniform spreading, not bit-for-bit
compatibility with any vendor.  The paper cites RSS as the canonical
"offload without involving the OS at all" mechanism whose static
queue->core mapping breaks down for dynamic workloads.
"""

from __future__ import annotations

__all__ = ["rss_hash", "rss_queue_index"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def rss_hash(src_ip: int, dst_ip: int, src_port: int, dst_port: int) -> int:
    """64-bit FNV-1a over the flow 4-tuple."""
    value = _FNV_OFFSET
    for chunk in (
        src_ip.to_bytes(4, "big"),
        dst_ip.to_bytes(4, "big"),
        src_port.to_bytes(2, "big"),
        dst_port.to_bytes(2, "big"),
    ):
        for byte in chunk:
            value ^= byte
            value = (value * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return value


def rss_queue_index(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int, n_queues: int
) -> int:
    """Map a flow to one of ``n_queues`` queues."""
    if n_queues <= 0:
        raise ValueError("n_queues must be positive")
    return rss_hash(src_ip, dst_ip, src_port, dst_port) % n_queues
