"""Rack-scale fleets: hosts x topology x load balancing (E23).

The paper's claim is a datacenter claim; this package scales the
single-machine testbeds to a rack so placement and replication
questions (which hosts get the coherent NIC, how skew lands on
replicas) become runnable experiments.  See docs/fleet.md.
"""

from .builder import (
    Deployment,
    Fleet,
    Host,
    HostSpec,
    build_fleet,
    host_ip,
    host_mac,
)
from .routing import EcmpBalancer

__all__ = [
    "Deployment",
    "EcmpBalancer",
    "Fleet",
    "Host",
    "HostSpec",
    "build_fleet",
    "host_ip",
    "host_mac",
]
