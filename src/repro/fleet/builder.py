"""Fleet builder: N hosts x a ToR/spine topology, one virtual clock.

A :class:`Fleet` generalises the single-machine testbed: each
:class:`HostSpec` picks a serving stack (``linux``/``snap``/``bypass``/
``lauberhorn``) and a rack, and the builder wires every host's machine
into one shared :class:`~repro.sim.engine.Simulator` behind a
:class:`~repro.net.topology.Topology`.  Per-host assembly is exactly
the legacy testbed wiring (:mod:`repro.experiments.testbed`), which is
what the differential harness leans on: a fleet of one host on a
1-ToR topology replays byte-identical to ``build_*_testbed``.

Identities are positional and stable:

* host ``i`` gets MAC ``02:00:00:00:00:{i+1:02x}`` and IP
  ``10.0.0.{i+1}`` — host 0 *is* the legacy ``SERVER_MAC``/
  ``SERVER_IP``, with the legacy port and NIC names, so every
  name-derived fault stream matches the single-machine beds;
* client ``i`` keeps the legacy ``02:00:00:00:01:{i:02x}`` /
  ``10.0.1.{i+1}`` identity.

Host 0's machine is seeded with the fleet's root seed (legacy
behaviour); host ``i > 0`` draws ``derive_seed(seed, "fleet", "host",
i)`` so adding a host never perturbs existing hosts' RNG streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Optional, Sequence

from ..experiments.testbed import (
    SERVER_IP,
    SERVER_MAC,
    Testbed,
    _assemble_bypass,
    _assemble_lauberhorn,
    _assemble_linux,
    deploy_service,
)
from ..hw.machine import Machine
from ..hw.params import ENZIAN, ENZIAN_PCIE, MachineParams
from ..net.headers import MacAddress
from ..net.packet import ip_address
from ..net.topology import Topology, TopologySpec
from ..sim.rng import derive_seed
from ..workloads.client import ClientNode
from .routing import EcmpBalancer

__all__ = ["HostSpec", "Host", "Deployment", "Fleet", "build_fleet",
           "host_mac", "host_ip"]

#: default NIC model names, per stack (host 0 keeps them verbatim;
#: host i > 0 appends ``-h{i}`` so fault/metric names never collide)
_NIC_BASENAMES = {
    "linux": "dma-nic",
    "snap": "bypass-nic",
    "bypass": "bypass-nic",
    "lauberhorn": "lauberhorn",
}


def host_mac(index: int) -> MacAddress:
    """Server MAC for host ``index`` (index 0 == legacy SERVER_MAC)."""
    return MacAddress.from_string(f"02:00:00:00:00:{index + 1:02x}")


def host_ip(index: int) -> int:
    """Server IP for host ``index`` (index 0 == legacy SERVER_IP)."""
    return ip_address(f"10.0.0.{index + 1}")


@dataclass(frozen=True)
class HostSpec:
    """What to build on one fleet slot."""

    stack: str = "linux"
    #: machine preset; None picks the stack's legacy default
    #: (ENZIAN for lauberhorn, ENZIAN_PCIE otherwise)
    params: Optional[MachineParams] = None
    #: which ToR this host plugs into
    tor: int = 0
    #: RX queues; None picks the stack's legacy default
    n_queues: Optional[int] = None

    def __post_init__(self):
        if self.stack not in _NIC_BASENAMES:
            raise ValueError(f"unknown stack {self.stack!r}")

    def resolved_params(self) -> MachineParams:
        if self.params is not None:
            return self.params
        return ENZIAN if self.stack == "lauberhorn" else ENZIAN_PCIE


@dataclass
class Host(Testbed):
    """One fleet member: a legacy testbed plus its fleet coordinates."""

    index: int = 0
    stack: str = "linux"
    tor: int = 0


@dataclass(frozen=True)
class Deployment:
    """One replica of a replicated service."""

    host: Host
    service: object
    method: object


@dataclass
class Fleet:
    """An assembled rack: hosts + clients behind one switch topology."""

    topology: Topology
    hosts: list[Host]
    clients: list[ClientNode]
    seed: int = 0
    #: replicas of the last :meth:`deploy` call, in host order
    deployments: list[Deployment] = field(default_factory=list)
    balancer: Optional[EcmpBalancer] = None
    #: fault counters for gear no host owns (client + trunk ports)
    fault_stats: object = None
    #: the ambient fault plan the fleet was built under (or None)
    plan: object = None

    @property
    def sim(self):
        return self.hosts[0].machine.sim

    @property
    def switches(self):
        return list(self.topology.switches())

    @property
    def machines(self):
        return [host.machine for host in self.hosts]

    def host_for(self, stack: str) -> Host:
        """First host running ``stack`` (KeyError if none does)."""
        for host in self.hosts:
            if host.stack == stack:
                return host
        raise KeyError(f"no host runs stack {stack!r}")

    def run(self, until=None):
        """Advance the shared simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)

    # -- service deployment ------------------------------------------------

    def deploy(
        self,
        name: str = "echo",
        udp_port: int = 9000,
        handler: Optional[Callable] = None,
        *,
        cost_instructions: int = 500,
        method_name: str = "m",
        replicas: Optional[Sequence[int]] = None,
        tenant=None,
    ) -> list[Deployment]:
        """Deploy one service on ``replicas`` (host indices; default all)
        and stand up the ECMP balancer over them.  ``tenant`` (a tenant
        *name*) binds the replicas on tenanted lauberhorn hosts to that
        tenant of each host's own table."""
        indices = (list(range(len(self.hosts)))
                   if replicas is None else list(replicas))
        deployments = []
        for index in indices:
            host = self.hosts[index]
            host_tenant = tenant
            if tenant is not None and getattr(host.nic, "tenants",
                                              None) is None:
                host_tenant = None
            service, method = deploy_service(
                host, host.stack, handler,
                name=name, udp_port=udp_port,
                cost_instructions=cost_instructions,
                method_name=method_name,
                tenant=host_tenant,
            )
            deployments.append(Deployment(host, service, method))
        self.deployments = deployments
        self.balancer = EcmpBalancer(deployments, seed=self.seed,
                                     dst_port=udp_port)
        return deployments

    def send(self, client: ClientNode, flow_port: int, args):
        """Fire one request of flow ``(client, flow_port)`` at the
        replica the balancer picks; returns the completion event."""
        if self.balancer is None:
            raise RuntimeError("deploy() a service before send()")
        deployment = self.balancer.pick(client.ip, flow_port)
        return client.send_request(
            args=args, src_port=flow_port,
            **deployment.host.call_args(deployment.service,
                                        deployment.method),
        )


def _host_from_bed(bed: Testbed, index: int, stack: str, tor: int) -> Host:
    values = {f.name: getattr(bed, f.name) for f in fields(Testbed)}
    return Host(index=index, stack=stack, tor=tor, **values)


def build_fleet(
    hosts: Sequence[HostSpec],
    topo: Optional[TopologySpec] = None,
    n_clients: int = 1,
    seed: int = 0,
    switch_latency_ns: float = 250.0,
    client_tor: int = 0,
) -> Fleet:
    """Assemble a fleet on one shared simulator.

    Construction order mirrors the legacy ``_base`` + assembly
    sequence — machines, switches, clients, then per-host stacks — so
    a 1-host, 1-ToR fleet is event-for-event the legacy testbed.
    Fault plans are ambient, exactly as for single testbeds: build
    under ``with plan:`` and every machine, link, and NIC picks it up.
    """
    specs = list(hosts)
    if not specs:
        raise ValueError("a fleet needs at least one host")
    if topo is None:
        topo = TopologySpec(port_latency_ns=switch_latency_ns)
    for spec in specs:
        if not 0 <= spec.tor < topo.n_tors:
            raise ValueError(f"host ToR {spec.tor} outside topology "
                             f"({topo.n_tors} ToRs)")

    # 1. Machines — host 0 owns the simulator and the root seed.
    machines = [Machine(specs[0].resolved_params(), seed=seed)]
    sim = machines[0].sim
    for index in range(1, len(specs)):
        machines.append(Machine(
            specs[index].resolved_params(),
            seed=derive_seed(seed, "fleet", "host", str(index)),
            sim=sim,
        ))

    # 2. The switch topology (degenerate 1-ToR == the legacy switch).
    topology = Topology(
        sim, topo,
        bandwidth_bps=specs[0].resolved_params().link_bps,
        seed=seed,
    )

    # 3. Clients, with their legacy identities.
    clients = []
    for index in range(n_clients):
        mac = MacAddress.from_string(f"02:00:00:00:01:{index:02x}")
        ip = ip_address(f"10.0.1.{index + 1}")
        clients.append(ClientNode(
            sim, topology.tors[client_tor], mac, ip, name=f"client{index}",
        ))
        topology.register_endpoint(mac, client_tor)

    # 4. Per-host stack assembly, in index order.
    built: list[Host] = []
    for index, spec in enumerate(specs):
        mac, ip = host_mac(index), host_ip(index)
        port_name = "server" if index == 0 else f"host{index}"
        nic_name = (None if index == 0
                    else f"{_NIC_BASENAMES[spec.stack]}-h{index}")
        common = dict(mac=mac, ip=ip, port_name=port_name,
                      nic_name=nic_name)
        tor_fabric = topology.tors[spec.tor]
        if spec.stack == "linux":
            bed = _assemble_linux(
                machines[index], tor_fabric, clients,
                n_queues=4 if spec.n_queues is None else spec.n_queues,
                **common,
            )
        elif spec.stack in ("snap", "bypass"):
            bed = _assemble_bypass(
                machines[index], tor_fabric, clients,
                n_queues=1 if spec.n_queues is None else spec.n_queues,
                **common,
            )
        else:
            bed = _assemble_lauberhorn(machines[index], tor_fabric, clients,
                                       **common)
        topology.register_endpoint(mac, spec.tor)
        built.append(_host_from_bed(bed, index, spec.stack, spec.tor))

    fleet = Fleet(topology=topology, hosts=built, clients=clients,
                  seed=seed, plan=machines[0].faults)
    if fleet.plan is not None:
        from ..faults.inject import InjectionStats, install_fleet_faults

        fleet.fault_stats = InjectionStats()
        install_fleet_faults(fleet)
    return fleet
