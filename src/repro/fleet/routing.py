"""ECMP/RSS-style load balancing across service replicas.

An :class:`EcmpBalancer` maps a flow (client IP, UDP source port,
service port) to one replica the way a rack fabric or an L4 balancer
would: a seed-salted hash of the flow tuple, no per-request state.
The two properties the fleet invariants lean on:

* **deterministic** — the choice is a pure function of (seed, flow),
  so replaying a run reproduces the exact assignment; and
* **flow-affine** — all requests of one flow land on one replica, so
  per-flow FIFO order is preserved end to end.

The balancer also keeps a ledger (per-replica ``routed`` counts and
the flow->replica map) that :mod:`repro.check.fleet` reconciles
against what each replica actually served.
"""

from __future__ import annotations

from typing import Sequence

from ..nic.rss import rss_hash
from ..sim.rng import derive_seed

__all__ = ["EcmpBalancer"]


class EcmpBalancer:
    """Deterministic, flow-affine replica chooser with a ledger."""

    def __init__(self, replicas: Sequence, seed: int = 0,
                 dst_port: int = 9000):
        if not replicas:
            raise ValueError("a balancer needs at least one replica")
        self.replicas = list(replicas)
        self.dst_port = dst_port
        # rss_hash wants a 32-bit "destination address"; fold the
        # 64-bit derived seed into one.
        salt = derive_seed(seed, "fleet", "lb")
        self.salt = (salt ^ (salt >> 32)) & 0xFFFFFFFF
        #: requests routed per replica index (the balancer's ledger)
        self.routed = [0] * len(self.replicas)
        #: flow key -> replica index, for affinity auditing
        self.affinity: dict[tuple[int, int], int] = {}

    def index_for(self, src_ip: int, src_port: int) -> int:
        """Replica index for a flow; pure, records nothing."""
        value = rss_hash(src_ip, self.salt, src_port, self.dst_port)
        # FNV-1a's low bits avalanche poorly; fold the high half in
        # before reducing so small replica counts still spread.
        value ^= value >> 32
        value ^= value >> 16
        return value % len(self.replicas)

    def pick(self, src_ip: int, src_port: int):
        """Choose (and ledger) the replica for one request of a flow."""
        index = self.index_for(src_ip, src_port)
        self.routed[index] += 1
        self.affinity[(src_ip, src_port)] = index
        return self.replicas[index]

    def spread(self) -> dict:
        """Summary of how flows and requests landed (for reports)."""
        per_replica_flows = [0] * len(self.replicas)
        for index in self.affinity.values():
            per_replica_flows[index] += 1
        return {
            "replicas": len(self.replicas),
            "flows": len(self.affinity),
            "requests": sum(self.routed),
            "routed": list(self.routed),
            "flows_per_replica": per_replica_flows,
        }
