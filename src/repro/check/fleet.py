"""Fleet-wide runtime invariants (rack-scale counterpart of
:mod:`repro.check.invariants`).

:func:`install_fleet_checks` arms one :class:`CheckRegistry` over a
whole :class:`repro.fleet.Fleet`:

* every per-host invariant the single-machine harness has (MESI,
  rings, scheduler, Lauberhorn accounting), installed per host;
* **packet conservation**, per port *and* fleet-summed: frames
  injected across every link of every switch (ToRs, spine, trunks)
  equal delivered + dropped + lost once the run drains;
* **flow order** — under reorder-free fault plans, requests of one
  flow (client IP, UDP source port) must reach their replica in
  strictly increasing request-id order; ECMP flow affinity makes this
  a hard guarantee, so any regression in the hashing or trunk
  shuttles trips it;
* **replica ledger** — what the ECMP balancer routed to each replica
  reconciles with what that replica's handler actually served
  (exact at drained quiesce under calm plans), and the recorded
  flow->replica affinity map replays through the hash unchanged.

Call after ``fleet.deploy(...)`` so the ledger can see the replicas.
Like everything in :mod:`repro.check`, nothing is installed unless a
harness opts in.
"""

from __future__ import annotations

from typing import Iterable

from ..net.headers import HeaderError
from ..net.packet import parse_udp_frame
from .invariants import (
    _install_clock_checks,
    _install_conservation_checks,
    _install_lauberhorn_checks,
    _install_mesi_checks,
    _install_ring_checks,
    _install_scheduler_checks,
)
from .registry import CheckRegistry

__all__ = ["install_fleet_checks", "fleet_links"]

#: cap per-run flow-order problem accumulation (mirrors the registry's
#: own violation cap)
_MAX_FLOW_PROBLEMS = 50


def fleet_links(fleet) -> list:
    """Every link of every switch in the fleet, ToRs first."""
    links = []
    for switch in fleet.switches:
        for port in switch.ports.values():
            links.append(port.ingress)
            links.append(port.egress)
    return links


def _install_fleet_conservation(reg: CheckRegistry, links) -> None:
    """Fleet-summed conservation on top of the per-link equalities."""

    def totals() -> tuple[int, int]:
        injected = settled = 0
        for link in links:
            s = link.stats
            injected += s.frames + s.fault_duplicated
            settled += s.delivered + s.dropped + s.fault_lost
        return injected, settled

    def quiesce(drained: bool) -> Iterable[str]:
        injected, settled = totals()
        if drained and injected != settled:
            return [
                f"fleet-summed: {injected} frames injected across "
                f"{len(links)} links but {settled} settled at quiesce"
            ]
        if settled > injected:
            return [
                f"fleet-summed: {settled} frames settled but only "
                f"{injected} injected"
            ]
        return ()

    reg.add_quiesce("fleet-conservation", quiesce)


def _install_flow_order_checks(reg: CheckRegistry, fleet) -> None:
    """Tap each host's RX link; request ids per flow must ascend.

    Installed only for reorder-free plans — loss/corruption provoke
    retransmits and duplication/reordering legitimately break
    monotonic delivery, so the invariant would be vacuously noisy.
    """
    last_seen: dict[tuple, int] = {}
    problems: list[str] = []

    def tap(link, frame) -> None:
        request_id = frame.peek_meta("request_id")
        if request_id is None:
            return
        try:
            parsed = parse_udp_frame(frame, verify=False)
        except (HeaderError, ValueError):
            return
        key = (link.name, parsed.ip.src, parsed.udp.src_port)
        prev = last_seen.get(key)
        if (prev is not None and request_id <= prev
                and len(problems) < _MAX_FLOW_PROBLEMS):
            problems.append(
                f"flow {parsed.ip.src:#010x}:{parsed.udp.src_port} on "
                f"{link.name!r}: request {request_id} delivered after "
                f"{prev} (intra-flow reordering)"
            )
        if prev is None or request_id > prev:
            last_seen[key] = request_id

    for host in fleet.hosts:
        host.nic.port.egress.on_deliver = tap

    def drain() -> Iterable[str]:
        out = list(problems)
        problems.clear()
        return out

    reg.add("flow-order", drain)
    reg.add_quiesce("flow-order", lambda drained: drain())


def _install_replica_ledger_checks(reg: CheckRegistry, fleet) -> None:
    balancer = fleet.balancer
    deployments = list(fleet.deployments)
    served = [0] * len(deployments)
    for index, deployment in enumerate(deployments):
        orig = deployment.method.handler

        def counted(args, _index=index, _orig=orig):
            served[_index] += 1
            return _orig(args)

        deployment.method.handler = counted

    calm_wire = fleet.plan is None or not fleet.plan.link.active

    def consistency() -> Iterable[str]:
        problems = []
        for (src_ip, src_port), index in balancer.affinity.items():
            replay = balancer.index_for(src_ip, src_port)
            if replay != index:
                problems.append(
                    f"flow {src_ip:#010x}:{src_port}: balancer routed to "
                    f"replica {index} but the hash replays to {replay}"
                )
        if calm_wire:
            for index in range(len(deployments)):
                if served[index] > balancer.routed[index]:
                    problems.append(
                        f"replica {index}: served {served[index]} requests "
                        f"but only {balancer.routed[index]} were routed "
                        "to it"
                    )
        return problems

    def quiesce(drained: bool) -> Iterable[str]:
        problems = list(consistency())
        if drained and calm_wire:
            for index, deployment in enumerate(deployments):
                if served[index] != balancer.routed[index]:
                    problems.append(
                        f"replica {index} (host{deployment.host.index}): "
                        f"routed {balancer.routed[index]} != served "
                        f"{served[index]} at quiesce"
                    )
        return problems

    reg.add("replica-ledger", consistency)
    reg.add_quiesce("replica-ledger", quiesce)


def install_fleet_checks(
    fleet,
    *,
    interval_ns: float = 250_000.0,
    flow_order: bool = True,
) -> CheckRegistry:
    """Register every applicable invariant over a fleet; returns the
    registry.  Same protocol as :func:`repro.check.install_checks`:
    ``reg.start(horizon)``, run, ``reg.assert_clean()``."""
    reg = CheckRegistry(fleet.sim, interval_ns=interval_ns)
    _install_clock_checks(reg)
    for host in fleet.hosts:
        if host.machine.fabric is not None:
            _install_mesi_checks(reg, host.machine.fabric)
        if hasattr(host.nic, "queues") or hasattr(host.nic, "endpoints"):
            _install_ring_checks(reg, host.nic)
        if host.kernel is not None:
            _install_scheduler_checks(reg, host.kernel)
        if hasattr(host.nic, "lstats"):
            _install_lauberhorn_checks(reg, host.nic)
        if getattr(host.nic, "tenants", None) is not None:
            from .tenancy import install_tenancy_checks

            install_tenancy_checks(reg, host.nic)
    links = fleet_links(fleet)
    _install_conservation_checks(reg, links)
    _install_fleet_conservation(reg, links)
    reorder_free = (fleet.plan is None or not fleet.plan.link.active)
    if flow_order and reorder_free:
        _install_flow_order_checks(reg, fleet)
    if fleet.balancer is not None:
        _install_replica_ledger_checks(reg, fleet)
    return reg
