"""The repo's runtime invariants, wired onto live components.

:func:`install_checks` takes an assembled testbed (or the pieces of
one) and registers every applicable invariant on a fresh
:class:`~repro.check.registry.CheckRegistry`:

* **clock** — simulation time never runs backwards, and the next
  scheduled event is never in the past;
* **mesi** — validated after every fabric operation: at most one
  EXCLUSIVE/MODIFIED holder per line, an owner excludes all other
  holders, and no cache performs an illegal transition (S→E, M→E
  without passing through INVALID);
* **packet-conservation** — per link,
  ``frames + duplicated == delivered + dropped + lost`` (≥ while
  frames are still in flight, exact once the run drains);
* **ring** — descriptor rings and backlogs never exceed capacity and
  counters never go negative;
* **scheduler** — queued threads are READY, pinned threads sit on
  their pinned core's queue, and once the run drains no thread is
  lost (everything is DONE or deliberately BLOCKED, queues empty);
* **lauberhorn-accounting** — every CONTROL-line fill is answered at
  most once (delivered, Tryagain, or Retire), parked fills are
  counted, aggregate counters agree with per-endpoint counters, and
  responses never exceed deliveries.

The MESI checks wrap the fabric's *bound methods* on the one instance
being checked; uninstrumented machines are untouched.  Nothing here
runs unless a harness calls :func:`install_checks` — experiments and
benchmarks without checks execute exactly the code they always did.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..hw.coherence import CoherenceFabric, LineState
from .registry import CheckRegistry

__all__ = ["install_checks"]

#: per-core MESI transitions that must never be observed (everything
#: else either is legal or passes through INVALID, which is always
#: reachable/leavable)
_ILLEGAL_TRANSITIONS = {("S", "E"), ("M", "E")}


# -- clock ---------------------------------------------------------------


def _install_clock_checks(reg: CheckRegistry) -> None:
    last = [reg.sim.now]

    def clock() -> Iterable[str]:
        problems = []
        now = reg.sim.now
        if now < last[0]:
            problems.append(
                f"clock ran backwards: {last[0]:.3f} -> {now:.3f}"
            )
        last[0] = now
        head = reg.sim.peek()
        if head < now:
            problems.append(
                f"next event at {head:.3f} is before now={now:.3f}"
            )
        return problems

    reg.add("clock", clock)


# -- MESI ----------------------------------------------------------------


def _line_problems(addr: int, line) -> list[str]:
    owners = [
        core for core, state in line.holders.items()
        if state in (LineState.EXCLUSIVE, LineState.MODIFIED)
    ]
    problems = []
    if len(owners) > 1:
        problems.append(
            f"line {addr:#x}: multiple writers/owners {sorted(owners)}"
        )
    if owners and len(line.holders) > 1:
        states = {c: s.value for c, s in line.holders.items()}
        problems.append(
            f"line {addr:#x}: owner {owners[0]} coexists with holders {states}"
        )
    for core, state in line.holders.items():
        if state is LineState.INVALID:
            problems.append(
                f"line {addr:#x}: core {core} recorded as INVALID holder"
            )
    return problems


def _install_mesi_checks(reg: CheckRegistry, fabric: CoherenceFabric) -> None:
    # line addr -> {core: state letter} as of the last observed op
    prev: dict[int, dict[int, str]] = {}

    def note(addr: int, op: str) -> None:
        line_addr = fabric._line_addr(addr)
        line = fabric._lines.get(line_addr)
        if line is None:
            return
        reg._record(f"mesi:{op}", _line_problems(line_addr, line))
        current = {c: s.value for c, s in line.holders.items()}
        before = prev.get(line_addr, {})
        transitions = []
        for core in set(before) | set(current):
            old = before.get(core, "I")
            new = current.get(core, "I")
            if (old, new) in _ILLEGAL_TRANSITIONS:
                transitions.append(
                    f"line {line_addr:#x}: core {core} made illegal "
                    f"transition {old}->{new} during {op}"
                )
        reg._record("mesi:transition", transitions)
        prev[line_addr] = current

    def wrap_generator(name: str):
        orig = getattr(fabric, name)

        def wrapper(*args, **kwargs):
            result = yield from orig(*args, **kwargs)
            # addr is the last/only positional address argument
            addr = args[1] if len(args) > 1 else args[0]
            note(addr, name)
            return result

        setattr(fabric, name, wrapper)

    for name in ("load", "store", "evict", "device_recall"):
        wrap_generator(name)

    orig_claim = fabric.device_claim

    def device_claim(addr: int):
        result = orig_claim(addr)
        note(addr, "device_claim")
        return result

    fabric.device_claim = device_claim

    orig_write = fabric.device_write

    def device_write(addr: int, data: bytes):
        result = orig_write(addr, data)
        note(addr, "device_write")
        return result

    fabric.device_write = device_write

    def scan() -> Iterable[str]:
        problems = []
        for addr, line in fabric._lines.items():
            problems.extend(_line_problems(addr, line))
        return problems

    reg.add("mesi:scan", scan)


# -- packet conservation -------------------------------------------------


def _install_conservation_checks(reg: CheckRegistry, links) -> None:
    def accounted(stats) -> tuple[int, int]:
        injected = stats.frames + stats.fault_duplicated
        settled = stats.dropped + stats.fault_lost + stats.delivered
        return injected, settled

    def sampled() -> Iterable[str]:
        problems = []
        for link in links:
            injected, settled = accounted(link.stats)
            if settled > injected:
                problems.append(
                    f"link {link.name!r}: {settled} frames accounted for "
                    f"but only {injected} injected"
                )
        return problems

    def quiesce(drained: bool) -> Iterable[str]:
        if not drained:
            return sampled()
        problems = []
        for link in links:
            injected, settled = accounted(link.stats)
            if injected != settled:
                s = link.stats
                problems.append(
                    f"link {link.name!r}: injected {injected} != settled "
                    f"{settled} at quiesce (frames={s.frames} "
                    f"dup={s.fault_duplicated} delivered={s.delivered} "
                    f"dropped={s.dropped} lost={s.fault_lost})"
                )
        return problems

    reg.add("packet-conservation", sampled)
    reg.add_quiesce("packet-conservation", quiesce)


# -- descriptor rings / backlogs -----------------------------------------


def _install_ring_checks(reg: CheckRegistry, nic) -> None:
    def rings() -> Iterable[str]:
        problems = []
        for queue in getattr(nic, "queues", ()):
            if hasattr(queue, "completed"):       # DmaNic RxQueue
                depth = len(queue.completed)
            elif hasattr(queue, "ring"):          # BypassQueue
                depth = len(queue.ring)
            else:                                  # pragma: no cover
                continue
            if depth > queue.capacity:
                problems.append(
                    f"{nic.name} queue {queue.index}: depth {depth} "
                    f"exceeds capacity {queue.capacity}"
                )
            if queue.drops < 0:
                problems.append(
                    f"{nic.name} queue {queue.index}: negative drop "
                    f"count {queue.drops}"
                )
        for ep in getattr(nic, "endpoints", ()):
            if len(ep.backlog) > ep.backlog_capacity:
                problems.append(
                    f"endpoint {ep.id}: backlog {len(ep.backlog)} exceeds "
                    f"capacity {ep.backlog_capacity}"
                )
        return problems

    reg.add("ring", rings)
    reg.add_quiesce("ring", lambda drained: rings())


# -- scheduler -----------------------------------------------------------


def _all_threads(kernel):
    for process in kernel.processes:
        yield from process.threads


def _install_scheduler_checks(reg: CheckRegistry, kernel) -> None:
    from ..os.process import ThreadState

    scheduler = kernel.scheduler

    def sampled() -> Iterable[str]:
        problems = []
        for core_id in range(scheduler.n_cores):
            for thread in scheduler.queued_threads(core_id):
                if thread.state is not ThreadState.READY:
                    problems.append(
                        f"thread {thread.name!r} queued on core {core_id} "
                        f"in state {thread.state.value}"
                    )
                if (thread.pinned_core is not None
                        and thread.pinned_core != core_id):
                    problems.append(
                        f"thread {thread.name!r} pinned to core "
                        f"{thread.pinned_core} but queued on {core_id}"
                    )
        stats = kernel.stats
        for name in ("context_switches", "thread_switches", "irqs",
                     "ipis", "preemptions", "syscalls"):
            if getattr(stats, name) < 0:
                problems.append(f"kernel stat {name} went negative")
        return problems

    def quiesce(drained: bool) -> Iterable[str]:
        problems = list(sampled())
        if not drained:
            return problems
        queued = scheduler.total_queued()
        if queued:
            problems.append(
                f"{queued} thread(s) still queued after the run drained"
            )
        for thread in _all_threads(kernel):
            if thread.state in (ThreadState.READY, ThreadState.RUNNING):
                problems.append(
                    f"thread {thread.name!r} lost in state "
                    f"{thread.state.value} after the run drained"
                )
        return problems

    reg.add("scheduler", sampled)
    reg.add_quiesce("scheduler", quiesce)


# -- Lauberhorn accounting -----------------------------------------------


def _install_lauberhorn_checks(reg: CheckRegistry, nic) -> None:
    def accounting(drained: bool) -> Iterable[str]:
        problems = []
        lstats = nic.lstats
        agg_tryagains = agg_retires = agg_delivered = agg_completed = 0
        for ep in nic.endpoints:
            s = ep.stats
            agg_tryagains += s.tryagains
            agg_retires += s.retires
            agg_delivered += s.delivered
            agg_completed += s.completed
            answered = s.delivered + s.tryagains + s.retires
            outstanding = 1 if ep.parked is not None else 0
            if answered + outstanding > s.ctrl_loads:
                problems.append(
                    f"endpoint {ep.id}: {answered} answers + "
                    f"{outstanding} parked exceed {s.ctrl_loads} "
                    "CONTROL fills (a fill was answered twice)"
                )
            if drained and answered + outstanding != s.ctrl_loads:
                problems.append(
                    f"endpoint {ep.id}: {s.ctrl_loads} CONTROL fills but "
                    f"only {answered} answers + {outstanding} parked at "
                    "quiesce (a fill was dropped)"
                )
            if s.completed > s.delivered:
                problems.append(
                    f"endpoint {ep.id}: completed {s.completed} exceeds "
                    f"delivered {s.delivered}"
                )
        if lstats.tryagains != agg_tryagains:
            problems.append(
                f"tryagain ledger mismatch: nic counted {lstats.tryagains}, "
                f"endpoints counted {agg_tryagains}"
            )
        if lstats.retires != agg_retires:
            problems.append(
                f"retire ledger mismatch: nic counted {lstats.retires}, "
                f"endpoints counted {agg_retires}"
            )
        if lstats.delivered_fast + lstats.delivered_kernel > agg_delivered:
            problems.append(
                "delivery ledger mismatch: nic counted "
                f"{lstats.delivered_fast + lstats.delivered_kernel}, "
                f"endpoints counted {agg_delivered}"
            )
        if lstats.responses_sent != agg_completed:
            problems.append(
                f"response ledger mismatch: nic sent {lstats.responses_sent}, "
                f"endpoints completed {agg_completed}"
            )
        return problems

    reg.add("lauberhorn-accounting", lambda: accounting(False))
    reg.add_quiesce("lauberhorn-accounting", accounting)


# -- entry point ---------------------------------------------------------


def install_checks(
    bed=None,
    *,
    machine=None,
    kernel=None,
    nic=None,
    links: Optional[list] = None,
    interval_ns: float = 250_000.0,
) -> CheckRegistry:
    """Register every applicable invariant; returns the registry.

    Pass a :class:`~repro.experiments.testbed.Testbed` (preferred) or
    the individual components.  Call ``reg.start(horizon_ns)`` before
    running to sample periodically, and ``reg.assert_clean()`` after.
    """
    if bed is not None:
        machine = machine or bed.machine
        kernel = kernel if kernel is not None else bed.kernel
        nic = nic if nic is not None else bed.nic
        if links is None:
            links = []
            for port in bed.switch.ports.values():
                links.append(port.ingress)
                links.append(port.egress)
    if machine is None:
        raise ValueError("install_checks needs a testbed or a machine")

    reg = CheckRegistry(machine.sim, interval_ns=interval_ns)
    _install_clock_checks(reg)
    if machine.fabric is not None:
        _install_mesi_checks(reg, machine.fabric)
    if links:
        _install_conservation_checks(reg, links)
    if nic is not None and (hasattr(nic, "queues") or hasattr(nic, "endpoints")):
        _install_ring_checks(reg, nic)
    if kernel is not None:
        _install_scheduler_checks(reg, kernel)
    if nic is not None and hasattr(nic, "lstats"):
        _install_lauberhorn_checks(reg, nic)
    if nic is not None and getattr(nic, "tenants", None) is not None:
        from .tenancy import install_tenancy_checks

        install_tenancy_checks(reg, nic)
    return reg
