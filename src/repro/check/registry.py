"""Runtime invariant machinery.

A :class:`CheckRegistry` holds named invariant checks over one
simulation.  Each check is a callable returning an iterable of problem
strings (empty/None = healthy).  Checks come in two flavours:

* **sampled** checks (:meth:`add`) are safe to evaluate at any event
  boundary; a sampler process runs them periodically until a horizon,
  and :meth:`check_now` runs them on demand;
* **quiesce** checks (:meth:`add_quiesce`) may assume the run is over;
  they receive ``drained`` (True when the event queue is empty, i.e.
  nothing is in flight) so conservation-style equalities can be exact
  when drained and inequalities otherwise.

Violations are *recorded*, not raised, so one broken invariant does
not mask the rest; :meth:`assert_clean` raises
:class:`InvariantViolation` with the full list at the end.  Nothing in
this module touches the simulator unless :meth:`start` is called, and
nothing at all is installed unless a harness builds a registry — the
zero-cost-when-disabled contract that keeps BENCH_engine honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["InvariantViolation", "Violation", "CheckRegistry"]

#: stop recording after this many violations (a broken invariant in a
#: tight loop should not OOM the test run)
MAX_VIOLATIONS = 200


class InvariantViolation(AssertionError):
    """One or more runtime invariants failed."""


@dataclass(frozen=True)
class Violation:
    """One recorded invariant failure."""

    name: str
    time_ns: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.name} @ {self.time_ns:.0f} ns] {self.detail}"


class CheckRegistry:
    """Named invariant checks over one simulator."""

    def __init__(self, sim, interval_ns: float = 250_000.0):
        self.sim = sim
        self.interval_ns = interval_ns
        self._checks: list[tuple[str, Callable[[], Optional[Iterable[str]]]]] = []
        self._quiesce: list[tuple[str, Callable[[bool], Optional[Iterable[str]]]]] = []
        self.violations: list[Violation] = []
        self.samples = 0
        self.finished = False
        #: optional :class:`repro.obs.flight.FlightRecorder`; when set,
        #: the first recorded violation freezes a post-mortem dump of
        #: the flight ring into :attr:`flight_dump` (and to
        #: :attr:`flight_dump_path` as JSON, if a path is set)
        self.flight = None
        self.flight_dump_path: Optional[str] = None
        self.flight_dump: Optional[dict] = None

    # -- registration ---------------------------------------------------

    def add(self, name: str,
            check: Callable[[], Optional[Iterable[str]]]) -> None:
        """Register a sampled check: ``check() -> problems``."""
        self._checks.append((name, check))

    def add_quiesce(self, name: str,
                    check: Callable[[bool], Optional[Iterable[str]]]) -> None:
        """Register an end-of-run check: ``check(drained) -> problems``."""
        self._quiesce.append((name, check))

    # -- evaluation -----------------------------------------------------

    def _record(self, name: str, problems: Optional[Iterable[str]]) -> None:
        if not problems:
            return
        recorded = False
        for detail in problems:
            if len(self.violations) >= MAX_VIOLATIONS:
                break
            self.violations.append(
                Violation(name=name, time_ns=self.sim.now, detail=detail)
            )
            recorded = True
        if recorded and self.flight is not None and self.flight_dump is None:
            self._dump_flight(self.violations[-1])

    def _dump_flight(self, trigger: Violation) -> None:
        """Freeze the flight ring at the first violation (post-mortem).

        The dump is taken exactly once — at the *first* violation — so
        it shows the system in the moments leading up to the failure,
        not after a possibly long cascade.  The violation itself is
        noted into the ring first, so the dump records its own trigger.
        """
        flight = self.flight
        flight.note("invariant.violation", check=trigger.name,
                    detail=trigger.detail)
        reason = {
            "check": trigger.name,
            "time_ns": trigger.time_ns,
            "detail": trigger.detail,
        }
        if self.flight_dump_path is not None:
            self.flight_dump = flight.dump_json(self.flight_dump_path,
                                                reason=reason)
        else:
            self.flight_dump = flight.dump(reason=reason)

    def check_now(self) -> None:
        """Evaluate every sampled check at the current instant."""
        self.samples += 1
        for name, check in self._checks:
            self._record(name, check())

    def start(self, horizon_ns: float) -> None:
        """Spawn the periodic sampler, bounded by ``horizon_ns``.

        The bound matters: an unbounded ticker would keep the event
        queue populated forever and break run-to-exhaustion callers.
        """
        self.sim.periodic(self.interval_ns, self.check_now, horizon_ns,
                          name="invariant-sampler")

    def finish(self) -> list[Violation]:
        """Run the final sweep: sampled checks plus quiesce checks."""
        self.finished = True
        drained = self.sim.peek() == math.inf
        self.check_now()
        for name, check in self._quiesce:
            self._record(name, check(drained))
        return self.violations

    def assert_clean(self) -> None:
        """Raise :class:`InvariantViolation` if anything was recorded."""
        if not self.finished:
            self.finish()
        if self.violations:
            lines = "\n".join(f"  {v}" for v in self.violations)
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s):\n{lines}"
            )
