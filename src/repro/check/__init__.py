"""Runtime invariant checks (see docs/faults.md).

Public surface::

    from repro.check import install_checks

    reg = install_checks(bed)
    reg.start(horizon_ns=HORIZON)
    bed.sim.run(until=HORIZON)
    reg.assert_clean()

Checks are recorded, not raised mid-run; :meth:`assert_clean` raises
:class:`InvariantViolation` with every recorded problem.  Nothing is
installed (and nothing costs anything) unless a harness opts in.
"""

from .fleet import install_fleet_checks
from .invariants import install_checks
from .registry import CheckRegistry, InvariantViolation, Violation
from .tenancy import install_tenancy_checks

__all__ = [
    "install_checks",
    "install_fleet_checks",
    "install_tenancy_checks",
    "CheckRegistry",
    "InvariantViolation",
    "Violation",
]
