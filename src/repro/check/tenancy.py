"""Tenant-isolation invariants (multi-tenant counterpart of the
Lauberhorn accounting checks).

Installed automatically by :func:`repro.check.install_checks` and
:func:`repro.check.fleet.install_fleet_checks` whenever the NIC has a
:class:`repro.tenancy.TenantTable` attached; never armed otherwise.

* **tenant-conservation** — per tenant, every demuxed frame is
  accounted for: ``arrivals == admitted + rate_dropped`` always, and
  at drained quiesce ``admitted == dropped + delivered`` with nothing
  queued, nothing held, and every delivery completed;
* **tenant-budget** — a budgeted tenant never *holds* more CONTROL
  lines than its cap, the ledger never goes negative, and the
  ``held_now`` gauge reconciles exactly with the end-points' actual
  in-flight deliveries (the ledger cannot drift from reality);
* **tenant-fairness** — the DWRR arbiter's contention spans show
  normalised service (served/weight) diverging by no more than the
  deficit bound between tenants that stayed continuously backlogged
  (evidence gathered by
  :class:`repro.tenancy.DeficitRoundRobin`, judged at quiesce).
"""

from __future__ import annotations

from typing import Iterable

from .registry import CheckRegistry

__all__ = ["install_tenancy_checks"]


def install_tenancy_checks(reg: CheckRegistry, nic) -> None:
    table = nic.tenants
    if table is None:
        raise ValueError("install_tenancy_checks needs a tenanted NIC")
    dwrr = nic._tenant_backlog

    # -- conservation -----------------------------------------------------

    def conservation(drained: bool) -> Iterable[str]:
        problems = []
        for spec in table:
            s = table.stats[spec.tenant_id]
            if s.arrivals != s.admitted + s.rate_dropped:
                problems.append(
                    f"tenant {spec.name!r}: {s.arrivals} arrivals != "
                    f"{s.admitted} admitted + {s.rate_dropped} rate-dropped")
            delivered = s.delivered_fast + s.delivered_kernel
            # Between admission and dispatch a request can be mid-pipe
            # (crypto/deserialise), so mid-run this is an inequality.
            if s.dropped + delivered + s.queued_now > s.admitted:
                problems.append(
                    f"tenant {spec.name!r}: {s.dropped} drops + {delivered} "
                    f"deliveries + {s.queued_now} queued exceed "
                    f"{s.admitted} admissions")
            if s.completed > delivered:
                problems.append(
                    f"tenant {spec.name!r}: {s.completed} completions "
                    f"exceed {delivered} deliveries")
            if drained:
                if s.admitted != s.dropped + delivered:
                    problems.append(
                        f"tenant {spec.name!r}: {s.admitted} admitted != "
                        f"{s.dropped} dropped + {delivered} delivered "
                        "at quiesce")
                if s.queued_now:
                    problems.append(
                        f"tenant {spec.name!r}: {s.queued_now} requests "
                        "still queued at quiesce")
                if s.held_now:
                    problems.append(
                        f"tenant {spec.name!r}: {s.held_now} CONTROL "
                        "lines still held at quiesce")
                if s.completed != delivered:
                    problems.append(
                        f"tenant {spec.name!r}: {s.completed} completed != "
                        f"{delivered} delivered at quiesce")
        return problems

    reg.add("tenant-conservation", lambda: conservation(False))
    reg.add_quiesce("tenant-conservation", conservation)

    # -- budget -----------------------------------------------------------

    def budget() -> Iterable[str]:
        problems = []
        actual: dict = {}
        for ep in nic.endpoints:
            inflight = ep.inflight
            if inflight is None:
                continue
            service = inflight.request.service
            if service is nic._cont_service:
                continue
            spec = table.tenant_for_service(service.service_id)
            actual[spec.tenant_id] = actual.get(spec.tenant_id, 0) + 1
        for spec in table:
            s = table.stats[spec.tenant_id]
            if s.held_now < 0:
                problems.append(
                    f"tenant {spec.name!r}: held_now went negative "
                    f"({s.held_now})")
            if (spec.ctrl_budget is not None
                    and s.held_now > spec.ctrl_budget):
                problems.append(
                    f"tenant {spec.name!r}: holds {s.held_now} CONTROL "
                    f"lines, budget is {spec.ctrl_budget}")
            held = actual.get(spec.tenant_id, 0)
            if s.held_now != held:
                problems.append(
                    f"tenant {spec.name!r}: ledger says {s.held_now} lines "
                    f"held but end-points show {held} in flight")
        return problems

    reg.add("tenant-budget", budget)
    reg.add_quiesce("tenant-budget", lambda drained: budget())

    # -- weighted fairness ------------------------------------------------

    def fairness(drained: bool) -> Iterable[str]:
        # check_fairness() closes any still-open contention span and
        # returns every recorded divergence; quiesce-only so problems
        # are reported exactly once.
        return dwrr.check_fairness()

    reg.add_quiesce("tenant-fairness", fairness)
