"""High-level facade: build and drive a simulated RPC cluster.

For users who want the paper's systems without assembling machines,
kernels, NICs, and worker loops by hand::

    from repro.api import SimulatedCluster

    cluster = SimulatedCluster(stack="lauberhorn")

    @cluster.service("kv", port=9000)
    def get(args, cost=800):
        return [f"value-of-{args[0]}"]

    cluster.start()
    result = cluster.call("kv", "get", ["key1"])
    print(result.results, result.rtt_ns)

One ``SimulatedCluster`` is one server machine (with the chosen stack),
a switch, and a client node.  Services are registered with the
:meth:`service` decorator; :meth:`start` spawns the per-stack workers
(user loops + NIC-driven dispatchers for Lauberhorn, socket workers for
Linux, pinned PMD workers for bypass).  :meth:`call` runs the simulator
until the response arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .experiments.testbed import (
    Testbed,
    build_bypass_testbed,
    build_lauberhorn_testbed,
    build_linux_testbed,
)
from .nic.lauberhorn import EndpointKind
from .os.nicsched import NicScheduler, lauberhorn_user_loop
from .rpc.server import bypass_worker, linux_udp_worker
from .rpc.service import MethodDef, ServiceDef
from .sim.clock import MS
from .workloads.client import RpcResult

__all__ = ["SimulatedCluster", "ClusterError"]

STACKS = ("lauberhorn", "linux", "bypass")


class ClusterError(RuntimeError):
    """Misuse of the cluster facade."""


@dataclass
class _ServiceSpec:
    service: ServiceDef
    methods: dict[str, MethodDef]
    dedicated_core: Optional[int]


class SimulatedCluster:
    """A one-server simulated deployment with a pluggable stack."""

    def __init__(
        self,
        stack: str = "lauberhorn",
        seed: int = 0,
        n_dispatchers: int = 2,
        **testbed_kwargs,
    ):
        if stack not in STACKS:
            raise ClusterError(f"unknown stack {stack!r}; pick from {STACKS}")
        self.stack = stack
        self.n_dispatchers = n_dispatchers
        builders = {
            "lauberhorn": build_lauberhorn_testbed,
            "linux": build_linux_testbed,
            "bypass": build_bypass_testbed,
        }
        if stack == "bypass":
            testbed_kwargs.setdefault("n_queues", 8)
        self.testbed: Testbed = builders[stack](seed=seed, **testbed_kwargs)
        self._services: dict[str, _ServiceSpec] = {}
        self._next_port = 9000
        self._next_core = 0
        self._started = False

    # -- registration ---------------------------------------------------------

    def service(
        self,
        name: str,
        port: Optional[int] = None,
        cost: int = 1000,
        encrypted: bool = False,
        dedicated_core: Optional[int] = None,
    ) -> Callable:
        """Decorator registering ``fn(args) -> results`` as a method.

        Multiple methods may be attached to one service name; the first
        registration creates the service.  ``cost`` is the handler's
        simulated CPU cost in instructions.
        """
        if self._started:
            raise ClusterError("register services before start()")

        def decorator(fn: Callable[[Sequence], Sequence]) -> Callable:
            spec = self._services.get(name)
            if spec is None:
                udp_port = port if port is not None else self._next_port
                self._next_port = max(self._next_port, udp_port) + 1
                service = self.testbed.registry.create_service(
                    name, udp_port=udp_port, encrypted=encrypted
                )
                spec = _ServiceSpec(service=service, methods={},
                                    dedicated_core=dedicated_core)
                self._services[name] = spec
            method = self.testbed.registry.add_method(
                spec.service, fn.__name__, fn, cost_instructions=cost
            )
            spec.methods[fn.__name__] = method
            return fn

        return decorator

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Spawn the stack's per-service machinery (idempotent)."""
        if self._started:
            return
        if not self._services:
            raise ClusterError("no services registered")
        self._started = True
        starter = getattr(self, f"_start_{self.stack}")
        starter()

    def _claim_core(self, spec: _ServiceSpec) -> int:
        if spec.dedicated_core is not None:
            return spec.dedicated_core
        core = self._next_core
        self._next_core = (self._next_core + 1) % self.testbed.machine.n_cores
        return core

    def _start_lauberhorn(self) -> None:
        bed = self.testbed
        for spec in self._services.values():
            process = bed.kernel.spawn_process(spec.service.name)
            process.service = spec.service
            bed.nic.register_service(spec.service, process.pid)
            endpoint = bed.nic.create_endpoint(
                EndpointKind.USER, service=spec.service
            )
            if spec.dedicated_core is not None:
                bed.kernel.spawn_thread(
                    process,
                    lauberhorn_user_loop(bed.nic, endpoint, bed.registry),
                    name=f"{spec.service.name}-loop",
                    pinned_core=spec.dedicated_core,
                )
        # Dispatchers pick up every service without a dedicated loop.
        self.scheduler = NicScheduler(
            bed.kernel, bed.nic, bed.registry,
            n_dispatchers=self.n_dispatchers, promote=True,
        )

    def _start_linux(self) -> None:
        bed = self.testbed
        for spec in self._services.values():
            socket = bed.netstack.bind(spec.service.udp_port)
            process = bed.kernel.spawn_process(spec.service.name)
            process.service = spec.service
            bed.kernel.spawn_thread(
                process,
                linux_udp_worker(socket, bed.registry),
                name=f"{spec.service.name}-worker",
                pinned_core=spec.dedicated_core,
            )

    def _start_bypass(self) -> None:
        bed = self.testbed
        for index, spec in enumerate(self._services.values()):
            queue_index = index % len(bed.nic.queues)
            bed.nic.steer_port(spec.service.udp_port, queue_index)
            process = bed.kernel.spawn_process(spec.service.name)
            process.service = spec.service
            bed.kernel.spawn_thread(
                process,
                bypass_worker(bed.nic, bed.nic.queues[queue_index],
                              bed.user_netctx, bed.registry),
                name=f"{spec.service.name}-pmd",
                pinned_core=self._claim_core(spec),
            )

    # -- driving -----------------------------------------------------------------

    def call(
        self,
        service_name: str,
        method_name: str,
        args: Sequence,
        timeout_ms: float = 100.0,
    ) -> RpcResult:
        """Synchronous convenience: one RPC, advancing the simulation."""
        if not self._started:
            raise ClusterError("start() the cluster first")
        spec = self._services.get(service_name)
        if spec is None:
            raise ClusterError(f"unknown service {service_name!r}")
        method = spec.methods.get(method_name)
        if method is None:
            raise ClusterError(
                f"service {service_name!r} has no method {method_name!r}"
            )
        bed = self.testbed
        done = bed.clients[0].send_request(
            bed.server_mac, bed.server_ip, spec.service.udp_port,
            spec.service.service_id, method.method_id, args,
        )
        deadline = bed.sim.now + timeout_ms * MS
        while not done.processed and bed.sim.peek() <= deadline:
            bed.sim.step()
        if not done.processed:
            raise ClusterError(
                f"no response from {service_name}.{method_name} within "
                f"{timeout_ms} ms of simulated time"
            )
        return done._value

    def run(self, duration_ms: float) -> None:
        """Advance the simulation by ``duration_ms`` of virtual time."""
        self.testbed.machine.run(until=self.testbed.sim.now + duration_ms * MS)

    # -- introspection ---------------------------------------------------------------

    @property
    def stats(self):
        """The NIC's stats object (stack-specific shape)."""
        return getattr(self.testbed.nic, "lstats", self.testbed.nic.stats)

    def busy_ns(self) -> float:
        return self.testbed.machine.total_busy_ns()
