"""Process crash/restart injection (the serverless path).

A :class:`WorkerSupervisor` owns one logical worker: it spawns the
thread from a *factory* (so a fresh generator body exists per
incarnation), kills it at seed-derived exponential intervals, and
respawns it after the configured restart delay — the serverless
cold-start the paper's consolidation argument (E17) cares about.

Killing uses :meth:`repro.os.kernel.Kernel.kill_thread`, which refuses
to kill a thread that is actively RUNNING an op (the supervisor simply
retries at the next crash instant) — deterministic, and it never
corrupts a core's dispatch loop mid-op.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..os.process import ThreadState
from .plan import FaultPlan

__all__ = ["WorkerSupervisor"]


class WorkerSupervisor:
    """Crash/restart supervision of one worker thread."""

    def __init__(
        self,
        kernel,
        factory: Callable[[], Generator],
        plan: FaultPlan,
        name: str = "worker",
        pinned_core: Optional[int] = None,
        process=None,
        until_ns: Optional[float] = None,
    ):
        if not plan.process.active:
            raise ValueError("plan has no process faults configured")
        self.kernel = kernel
        self.factory = factory
        self.cfg = plan.process
        self.rng = plan.rng("process", name)
        self.name = name
        self.pinned_core = pinned_core
        self.process = process or kernel.spawn_process(name)
        #: stop crashing after this sim time so runs can drain (None =
        #: crash forever; only horizon-bounded runs should do that)
        self.until_ns = until_ns
        self.crashes = 0
        self.restarts = 0
        self.thread = self._spawn()
        kernel.sim.process(self._crash_loop(), name=f"supervise-{name}")

    def _spawn(self):
        return self.kernel.spawn_thread(
            self.process, self.factory(), name=self.name,
            pinned_core=self.pinned_core,
        )

    def _crash_loop(self):
        sim = self.kernel.sim
        while True:
            wait = self.rng.expovariate(1.0 / self.cfg.crash_mean_ns)
            if self.until_ns is not None and sim.now + wait >= self.until_ns:
                return
            yield sim.timeout(wait)
            thread = self.thread
            if thread.state is ThreadState.DONE:
                # Worker exited on its own (bounded workloads): restart
                # it only if it died to one of our crashes; a normal
                # exit ends supervision.
                return
            if not self.kernel.kill_thread(thread):
                continue  # RUNNING right now; try again next interval
            self.crashes += 1
            stats = getattr(self.kernel.machine, "fault_stats", None)
            if stats is not None:
                stats.crashes += 1
            yield sim.timeout(self.cfg.restart_delay_ns)
            self.thread = self._spawn()
            self.restarts += 1
            if stats is not None:
                stats.restarts += 1
