"""Deterministic fault injection (see docs/faults.md).

Public surface::

    from repro.faults import FaultPlan, active

    plan = FaultPlan.from_spec("default,loss=0.01")
    with active(plan):
        bed = build_linux_testbed()   # faults installed transparently

Everything is seed-derived and per-instance; a zero plan (or no plan)
is byte-identical to a build without this package.
"""

from .context import active, active_plan, set_active_plan
from .inject import (
    InjectionStats,
    install_link_faults,
    install_machine_faults,
    install_nic_faults,
    install_testbed_faults,
)
from .plan import (
    CoherenceFaultConfig,
    CoreFaultConfig,
    FaultPlan,
    LinkFaultConfig,
    NicFaultConfig,
    ProcessFaultConfig,
)
from .process import WorkerSupervisor

__all__ = [
    "FaultPlan",
    "LinkFaultConfig",
    "NicFaultConfig",
    "CoreFaultConfig",
    "CoherenceFaultConfig",
    "ProcessFaultConfig",
    "InjectionStats",
    "WorkerSupervisor",
    "active",
    "active_plan",
    "set_active_plan",
    "install_machine_faults",
    "install_testbed_faults",
    "install_link_faults",
    "install_nic_faults",
]
