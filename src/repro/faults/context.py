"""Ambient fault-plan propagation.

Experiments are pure functions of (params, seed) that build their own
machines and testbeds deep inside library code, so a fault plan cannot
always be passed down explicitly.  Instead a plan can be made
*ambient*:

* :func:`active` — a context manager scoping a plan to a ``with``
  block (what the test harnesses and ``fault_sweep`` use);
* the ``REPRO_FAULTS`` environment variable — a
  :meth:`~repro.faults.plan.FaultPlan.from_spec` string, which is how
  ``run_all --faults`` reaches experiment jobs running in pool worker
  *processes* (children inherit the environment).

:class:`~repro.hw.machine.Machine` consults :func:`active_plan` at
construction and the testbed builders finish the job (links, NIC,
client retransmission).  With no plan set, both lookups are a couple
of dict probes — nothing is installed and behaviour is byte-identical
to a build that predates this module.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from .plan import FaultPlan

__all__ = ["ENV_VAR", "active", "active_plan", "set_active_plan"]

ENV_VAR = "REPRO_FAULTS"

_active: Optional[FaultPlan] = None
#: memoised parse of the env var (spec string -> plan)
_env_cache: tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def set_active_plan(plan: Optional[FaultPlan]) -> None:
    """Set (or clear, with ``None``) the process-wide ambient plan."""
    global _active
    _active = plan


def active_plan() -> Optional[FaultPlan]:
    """The ambient plan: explicit scope first, then ``REPRO_FAULTS``."""
    if _active is not None:
        return _active
    global _env_cache
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    cached_spec, cached_plan = _env_cache
    if spec != cached_spec:
        _env_cache = (spec, FaultPlan.from_spec(spec))
    return _env_cache[1]


@contextmanager
def active(plan: Optional[FaultPlan]):
    """Scope ``plan`` as the ambient fault plan for a ``with`` block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous
