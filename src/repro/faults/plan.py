"""Fault plans: deterministic, seed-derived chaos configuration.

A :class:`FaultPlan` is a frozen value object describing *what* can go
wrong and *how often*, one sub-config per hardware domain:

* :class:`LinkFaultConfig` — wire-level packet loss, single-bit
  corruption, reordering (extra propagation delay), duplication;
* :class:`NicFaultConfig` — descriptor-ring stalls and DMA delay
  spikes in the device pipeline;
* :class:`CoreFaultConfig` — execution hiccups (SMI-style pauses) and
  frequency dips (a CPI multiplier);
* :class:`CoherenceFaultConfig` — jitter on coherence-message timing;
* :class:`ProcessFaultConfig` — crash/restart of server worker
  threads (the serverless consolidation story).

Every random decision an injector makes flows from
:meth:`FaultPlan.rng`, which derives an independent stream per *path*
via :func:`repro.sim.rng.derive_seed` — the same discipline the rest
of the simulation uses, so fault schedules are bit-reproducible and
adding an injector never perturbs another's stream.

A domain whose rates are all zero is *inactive*: installers skip it
entirely, so a zero :class:`FaultPlan` produces byte-identical results
to running with no plan at all (pinned by
``tests/properties/test_null_plan.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields

from ..sim.rng import derive_seed

__all__ = [
    "LinkFaultConfig",
    "NicFaultConfig",
    "CoreFaultConfig",
    "CoherenceFaultConfig",
    "ProcessFaultConfig",
    "FaultPlan",
]


@dataclass(frozen=True)
class LinkFaultConfig:
    """Wire-level disturbances, applied per frame on every link."""

    #: probability a frame silently vanishes on the wire
    loss_rate: float = 0.0
    #: probability one random bit of the frame flips in transit
    corrupt_rate: float = 0.0
    #: probability a frame is held back so later frames overtake it
    reorder_rate: float = 0.0
    #: probability a frame is delivered twice
    duplicate_rate: float = 0.0
    #: extra propagation delay for a reordered frame
    reorder_delay_ns: float = 2_000.0

    @property
    def active(self) -> bool:
        return (self.loss_rate > 0 or self.corrupt_rate > 0
                or self.reorder_rate > 0 or self.duplicate_rate > 0)

    @property
    def lossy(self) -> bool:
        """True when frames can fail to arrive intact (loss or
        corruption) — the cases where clients need retransmission."""
        return self.loss_rate > 0 or self.corrupt_rate > 0


@dataclass(frozen=True)
class NicFaultConfig:
    """Device-pipeline disturbances (all NIC flavours)."""

    #: probability the RX pipeline stalls before processing a frame
    ring_stall_rate: float = 0.0
    ring_stall_ns: float = 20_000.0
    #: probability a DMA transfer takes an extra latency spike
    dma_spike_rate: float = 0.0
    dma_spike_ns: float = 5_000.0

    @property
    def active(self) -> bool:
        return self.ring_stall_rate > 0 or self.dma_spike_rate > 0


@dataclass(frozen=True)
class CoreFaultConfig:
    """CPU-side disturbances, applied per ``execute`` charge."""

    #: probability an execute charge is preceded by a hiccup (SMI,
    #: thermal throttle event, ...) of ``hiccup_ns`` of stall time
    hiccup_rate: float = 0.0
    hiccup_ns: float = 2_000.0
    #: multiplier on instruction latency (> 1.0 models a frequency dip)
    freq_dip_factor: float = 1.0

    @property
    def active(self) -> bool:
        return self.hiccup_rate > 0 or self.freq_dip_factor != 1.0


@dataclass(frozen=True)
class CoherenceFaultConfig:
    """Timing jitter on coherence fabric messages."""

    #: probability any one fabric message is delayed by ``jitter_ns``
    jitter_rate: float = 0.0
    jitter_ns: float = 200.0

    @property
    def active(self) -> bool:
        return self.jitter_rate > 0


@dataclass(frozen=True)
class ProcessFaultConfig:
    """Crash/restart of supervised worker threads."""

    #: mean time between crash attempts (exponential); 0 disables
    crash_mean_ns: float = 0.0
    #: delay before the supervisor respawns the worker
    restart_delay_ns: float = 100_000.0

    @property
    def active(self) -> bool:
        return self.crash_mean_ns > 0


@dataclass(frozen=True)
class FaultPlan:
    """The complete fault configuration for one simulation."""

    seed: int = 0
    link: LinkFaultConfig = field(default_factory=LinkFaultConfig)
    nic: NicFaultConfig = field(default_factory=NicFaultConfig)
    core: CoreFaultConfig = field(default_factory=CoreFaultConfig)
    coherence: CoherenceFaultConfig = field(default_factory=CoherenceFaultConfig)
    process: ProcessFaultConfig = field(default_factory=ProcessFaultConfig)

    @property
    def active(self) -> bool:
        return (self.link.active or self.nic.active or self.core.active
                or self.coherence.active or self.process.active)

    def rng(self, *path) -> random.Random:
        """An independent deterministic stream for one injector site."""
        parts = [str(part) for part in path]
        return random.Random(derive_seed(self.seed, "faults", *parts))

    @classmethod
    def default(cls, seed: int = 0) -> "FaultPlan":
        """The ``--faults`` preset: every injector on at modest rates.

        Rates are chosen so every experiment still *completes* (lost
        traffic is recovered by client retransmission) while all the
        paths the invariant layer guards are exercised.  Crash faults
        stay off here — they need a supervised worker, which only the
        fault-aware harnesses set up.
        """
        return cls(
            seed=seed,
            link=LinkFaultConfig(
                loss_rate=0.002,
                corrupt_rate=0.001,
                reorder_rate=0.005,
                duplicate_rate=0.002,
            ),
            nic=NicFaultConfig(ring_stall_rate=0.005, dma_spike_rate=0.005),
            core=CoreFaultConfig(hiccup_rate=0.002),
            coherence=CoherenceFaultConfig(jitter_rate=0.01),
        )

    # -- CLI/env spec parsing ------------------------------------------

    _SPEC_KEYS = {
        "seed": ("seed", int),
        "loss": ("link.loss_rate", float),
        "corrupt": ("link.corrupt_rate", float),
        "reorder": ("link.reorder_rate", float),
        "dup": ("link.duplicate_rate", float),
        "reorder_ns": ("link.reorder_delay_ns", float),
        "stall": ("nic.ring_stall_rate", float),
        "stall_ns": ("nic.ring_stall_ns", float),
        "spike": ("nic.dma_spike_rate", float),
        "spike_ns": ("nic.dma_spike_ns", float),
        "hiccup": ("core.hiccup_rate", float),
        "hiccup_ns": ("core.hiccup_ns", float),
        "dip": ("core.freq_dip_factor", float),
        "jitter": ("coherence.jitter_rate", float),
        "jitter_ns": ("coherence.jitter_ns", float),
        "crash": ("process.crash_mean_ns", float),
        "restart_ns": ("process.restart_delay_ns", float),
    }

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"loss=0.01,stall=0.02,seed=3"`` into a plan.

        The literal ``"default"`` (optionally with overrides, e.g.
        ``"default,loss=0.05"``) starts from :meth:`default`.
        """
        parts = [p.strip() for p in spec.split(",") if p.strip()]
        base = cls()
        if parts and parts[0] == "default":
            base = cls.default()
            parts = parts[1:]
        overrides: dict[str, dict[str, object]] = {}
        seed = base.seed
        for part in parts:
            key, sep, raw = part.partition("=")
            if not sep:
                raise ValueError(f"bad fault spec entry {part!r} (need key=value)")
            try:
                target, cast = cls._SPEC_KEYS[key]
            except KeyError:
                known = ", ".join(sorted(cls._SPEC_KEYS))
                raise ValueError(
                    f"unknown fault spec key {key!r}; known keys: {known}"
                ) from None
            value = cast(raw)
            if target == "seed":
                seed = value
                continue
            domain, attr = target.split(".")
            overrides.setdefault(domain, {})[attr] = value

        def rebuild(domain: str, current):
            extra = overrides.get(domain)
            if not extra:
                return current
            kwargs = {f.name: getattr(current, f.name) for f in fields(current)}
            kwargs.update(extra)
            return type(current)(**kwargs)

        return cls(
            seed=seed,
            link=rebuild("link", base.link),
            nic=rebuild("nic", base.nic),
            core=rebuild("core", base.core),
            coherence=rebuild("coherence", base.coherence),
            process=rebuild("process", base.process),
        )
