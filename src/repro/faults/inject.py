"""Fault injectors: wrap simulation components per a FaultPlan.

Installation is strictly additive and per-instance: injectors rebind
*bound attributes* on the objects they disturb (a link's fault hook, a
core's ``execute``, the fabric's timing helpers), never classes — so
an un-faulted machine in the same process is untouched, and a plan
whose domains are inactive installs nothing at all.

Two entry points:

* :func:`install_machine_faults` — called by ``Machine.__init__``:
  core hiccups/frequency dips, coherence jitter, DMA delay spikes.
* :func:`install_testbed_faults` — called by the testbed builders once
  all ports exist: link faults on every switch port, the NIC RX stall
  hook, and client retransmission when frames can be lost.

Every injector draws from its own named stream
(``plan.rng("link", port_name)`` etc.), so schedules are deterministic
and independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .plan import FaultPlan

__all__ = [
    "InjectionStats",
    "LinkFaultInjector",
    "install_machine_faults",
    "install_testbed_faults",
    "install_fleet_faults",
    "install_link_faults",
    "install_nic_faults",
]

#: client retransmission timer when loss/corruption is active: well
#: above any healthy RTT in the repo's testbeds (tens of us), well
#: below experiment horizons.
RETRY_TIMEOUT_NS = 2_000_000.0


@dataclass
class InjectionStats:
    """What the injectors actually did (one instance per machine)."""

    frames_lost: int = 0
    frames_corrupted: int = 0
    frames_reordered: int = 0
    frames_duplicated: int = 0
    ring_stalls: int = 0
    dma_spikes: int = 0
    core_hiccups: int = 0
    coherence_jitters: int = 0
    crashes: int = 0
    restarts: int = 0

    def total(self) -> int:
        return (self.frames_lost + self.frames_corrupted
                + self.frames_reordered + self.frames_duplicated
                + self.ring_stalls + self.dma_spikes + self.core_hiccups
                + self.coherence_jitters + self.crashes)


# -- link faults ---------------------------------------------------------


def _corrupt_frame(frame, rng: random.Random):
    data = bytearray(frame.data)
    index = rng.randrange(len(data))
    data[index] ^= 1 << rng.randrange(8)
    return type(frame)(data=bytes(data), born_ns=frame.born_ns,
                       meta=frame.copy_meta())


class LinkFaultInjector:
    """Per-link frame fate decider, installed as ``link.fault``.

    :meth:`fate` maps one transmitted frame to zero or more
    ``(frame, extra_delay_ns)`` deliveries, updating the link's fault
    counters so the packet-conservation invariant can balance
    ``frames + duplicated == delivered + dropped + lost`` at quiesce.
    """

    def __init__(self, cfg, rng: random.Random, stats: InjectionStats):
        self.cfg = cfg
        self.rng = rng
        self.stats = stats
        #: optional flight recorder (set by repro.obs.instrument.arm_flight);
        #: None keeps fate() free of any observability work
        self.flight = None

    def fate(self, link, frame):
        cfg = self.cfg
        rng = self.rng
        flight = self.flight
        if cfg.loss_rate and rng.random() < cfg.loss_rate:
            link.stats.fault_lost += 1
            self.stats.frames_lost += 1
            if flight is not None:
                flight.note("fault.loss", link=link.name)
            if link.on_drop is not None:
                link.on_drop(link, frame, "fault-loss")
            return ()
        delivered = frame
        if cfg.corrupt_rate and rng.random() < cfg.corrupt_rate and frame.data:
            delivered = _corrupt_frame(frame, rng)
            link.stats.fault_corrupted += 1
            self.stats.frames_corrupted += 1
            if flight is not None:
                flight.note("fault.corrupt", link=link.name)
        extra = 0.0
        if cfg.reorder_rate and rng.random() < cfg.reorder_rate:
            extra = cfg.reorder_delay_ns
            link.stats.fault_reordered += 1
            self.stats.frames_reordered += 1
            if flight is not None:
                flight.note("fault.reorder", link=link.name,
                            delay_ns=extra)
        deliveries = [(delivered, extra)]
        if cfg.duplicate_rate and rng.random() < cfg.duplicate_rate:
            link.stats.fault_duplicated += 1
            self.stats.frames_duplicated += 1
            if flight is not None:
                flight.note("fault.duplicate", link=link.name)
            deliveries.append((delivered, extra))
        return deliveries


def install_link_faults(link, plan: FaultPlan, stats: InjectionStats,
                        path: str) -> None:
    """Attach a :class:`LinkFaultInjector` to one link."""
    if not plan.link.active:
        return
    link.fault = LinkFaultInjector(plan.link, plan.rng("link", path), stats)


# -- NIC faults ----------------------------------------------------------


def install_nic_faults(nic, plan: FaultPlan, stats: InjectionStats) -> None:
    """Install the RX-pipeline stall hook on one NIC instance."""
    cfg = plan.nic
    if cfg.ring_stall_rate <= 0:
        return
    rng = plan.rng("nic", nic.name)
    sim = nic.sim

    def rx_stall():
        if rng.random() < cfg.ring_stall_rate:
            stats.ring_stalls += 1
            flight = getattr(nic, "flight", None)
            if flight is not None:
                flight.note("fault.ring_stall", nic=nic.name,
                            stall_ns=cfg.ring_stall_ns)
            yield sim.timeout(cfg.ring_stall_ns)
        return None

    nic.rx_fault = rx_stall


def _install_dma_faults(machine, plan: FaultPlan,
                        stats: InjectionStats) -> None:
    cfg = plan.nic
    if cfg.dma_spike_rate <= 0:
        return
    link = machine.link
    rng = plan.rng("dma")
    sim = machine.sim
    orig_read, orig_write = link.dma_read, link.dma_write

    def dma_read(nbytes, addr=None):
        if rng.random() < cfg.dma_spike_rate:
            stats.dma_spikes += 1
            yield sim.timeout(cfg.dma_spike_ns)
        yield from orig_read(nbytes, addr)
        return None

    def dma_write(nbytes, addr=None):
        if rng.random() < cfg.dma_spike_rate:
            stats.dma_spikes += 1
            yield sim.timeout(cfg.dma_spike_ns)
        yield from orig_write(nbytes, addr)
        return None

    link.dma_read = dma_read
    link.dma_write = dma_write


# -- core faults ---------------------------------------------------------


def _install_core_faults(machine, plan: FaultPlan,
                         stats: InjectionStats) -> None:
    cfg = plan.core
    if not cfg.active:
        return
    for core in machine.cores:
        rng = plan.rng("core", core.id)
        _wrap_core(core, cfg, rng, stats)


def _wrap_core(core, cfg, rng: random.Random,
               stats: InjectionStats) -> None:
    if cfg.freq_dip_factor != 1.0:
        orig_ins_ns = core.instructions_ns
        factor = cfg.freq_dip_factor

        def instructions_ns(instructions):
            return orig_ins_ns(instructions) * factor

        core.instructions_ns = instructions_ns

    if cfg.hiccup_rate > 0:
        orig_execute = core.execute
        sim = core.sim

        def execute(instructions):
            if rng.random() < cfg.hiccup_rate:
                stats.core_hiccups += 1
                # The pipeline is paused, not retiring: stall time.
                core.counters.stall_ns += cfg.hiccup_ns
                yield sim.timeout(cfg.hiccup_ns)
            yield from orig_execute(instructions)
            return None

        core.execute = execute


# -- coherence faults ----------------------------------------------------


def _install_coherence_faults(machine, plan: FaultPlan,
                              stats: InjectionStats) -> None:
    cfg = plan.coherence
    if not cfg.active or machine.fabric is None:
        return
    fabric = machine.fabric
    rng = plan.rng("coherence")
    orig_transfer, orig_request = fabric._transfer_ns, fabric._request_ns

    def transfer_ns():
        ns = orig_transfer()
        if rng.random() < cfg.jitter_rate:
            stats.coherence_jitters += 1
            ns += cfg.jitter_ns
        return ns

    def request_ns():
        ns = orig_request()
        if rng.random() < cfg.jitter_rate:
            stats.coherence_jitters += 1
            ns += cfg.jitter_ns
        return ns

    fabric._transfer_ns = transfer_ns
    fabric._request_ns = request_ns


# -- entry points --------------------------------------------------------


def install_machine_faults(machine, plan: FaultPlan) -> InjectionStats:
    """Install the machine-scoped injectors; returns the stats sink.

    Idempotent per machine (``Machine.__init__`` calls it exactly
    once).  Inactive domains install nothing.
    """
    stats = InjectionStats()
    machine.fault_stats = stats
    _install_core_faults(machine, plan, stats)
    _install_coherence_faults(machine, plan, stats)
    _install_dma_faults(machine, plan, stats)
    return stats


def install_testbed_faults(bed) -> None:
    """Finish fault installation once a testbed is fully assembled.

    Covers the parts a bare machine cannot see: every switch port's
    ingress/egress links, the NIC RX pipeline, and — when frames can
    be lost — client retransmission so closed-loop drivers still
    complete.
    """
    plan = getattr(bed.machine, "faults", None)
    if plan is None or not plan.active:
        return
    stats = bed.machine.fault_stats
    for port in bed.switch.ports.values():
        install_link_faults(port.ingress, plan, stats, f"{port.name}.in")
        install_link_faults(port.egress, plan, stats, f"{port.name}.out")
    install_nic_faults(bed.nic, plan, stats)
    if plan.link.lossy:
        for client in bed.clients:
            client.retry_timeout_ns = RETRY_TIMEOUT_NS


def install_fleet_faults(fleet) -> None:
    """Testbed-style fault finishing for a whole fleet.

    Every port of every switch (ToRs and spine) gets link injectors
    exactly once; a port owned by a host's NIC charges that host's
    machine-level stats, while client and trunk ports charge the
    fleet-level sink.  Fault RNG streams are keyed by port name alone,
    so a 1-host fleet draws the same schedules as the legacy testbed.
    """
    plan = fleet.plan
    if plan is None or not plan.active:
        return
    stats_by_port = {
        host.nic.port.name: host.machine.fault_stats
        for host in fleet.hosts
    }
    for switch in fleet.switches:
        for port in switch.ports.values():
            stats = stats_by_port.get(port.name, fleet.fault_stats)
            install_link_faults(port.ingress, plan, stats, f"{port.name}.in")
            install_link_faults(port.egress, plan, stats, f"{port.name}.out")
    for host in fleet.hosts:
        install_nic_faults(host.nic, plan, host.machine.fault_stats)
    if plan.link.lossy:
        for client in fleet.clients:
            client.retry_timeout_ns = RETRY_TIMEOUT_NS
