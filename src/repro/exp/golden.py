"""Canonical hashing for hash-pinned golden experiments.

E1-E18 pin their full structured results as JSON files under
``tests/golden/``.  E19-E23 produce large payloads (per-point fault
matrices, trace events, windowed time series, control tournaments,
fleet grids) where a full-JSON pin would dwarf the corpus, so they pin
a SHA-256 digest instead — ``tests/golden/hashes.json`` maps
experiment name to digest, and ``tools/regen_golden.py --hashes``
re-records it.

The digest set deliberately stops at E23: E24 is the multi-tenant
experiment, and the E1-E23 pins are exactly the contract that an
*unconfigured* tenancy layer leaves every historical experiment
byte-identical.

Both the pin test and the regen tool import :func:`golden_digest` from
here so the canonicalisation can never drift between them.  The only
volatile fields in those experiments' results are E20's host
wall-clock measurements (``host_s_unarmed``/``host_s_armed``); they
are stripped before hashing, everything else is simulated time and
fully deterministic at a fixed root seed.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["HASHED_EXPERIMENTS", "VOLATILE_KEYS", "canonical",
           "golden_digest"]

#: experiments pinned by digest rather than full JSON
HASHED_EXPERIMENTS = ("e19", "e20", "e21", "e22", "e23")

#: result fields measured in host wall-clock (nondeterministic)
VOLATILE_KEYS = frozenset({"host_s_unarmed", "host_s_armed"})


def canonical(value):
    """``value`` with volatile (wall-clock) fields removed, recursively."""
    if isinstance(value, dict):
        return {
            key: canonical(item)
            for key, item in value.items() if key not in VOLATILE_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    return value


def golden_digest(value) -> str:
    """SHA-256 of the canonical JSON of ``value``."""
    material = json.dumps(canonical(value), sort_keys=True,
                          separators=(",", ":"), default=str)
    return hashlib.sha256(material.encode()).hexdigest()
