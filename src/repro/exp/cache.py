"""Content-addressed result cache for experiment jobs.

A job's cache key is the SHA-256 of the canonical JSON of::

    {experiment id, fn, canonicalised params, seed, code fingerprint,
     active fault plan, active policy spec}

The *active fault plan* term is whatever
:func:`repro.faults.context.active_plan` resolves to at lookup time
(explicit scope or the ``REPRO_FAULTS`` env var), canonicalised to its
dataclass fields — so a plain run, ``--faults``, and two different
fault specs all key (and cache) separately, and ``run_all --faults``
no longer needs to disable the cache to stay correct.  A zero plan
keys identically to no plan, matching the null-plan byte-identity
property.

The *active policy spec* term mirrors the fault-plan fix for the
control plane (:mod:`repro.ctrl`): the ambient
:func:`repro.ctrl.context.active_policy_spec` is result-determining
state, so two different policy specs never collide in the cache.  An
inert spec keys as ``None``, matching the inert-controller
byte-identity contract.

The *code fingerprint* hashes the source bytes of every
``repro.*`` module the job's function transitively imports (resolved
statically from the import statements, including function-local ones).
Touching any module an experiment depends on — its own file, the
testbed, the NIC model, the sim engine — changes the fingerprint and
invalidates exactly the jobs that import it; editing the runner itself
(`repro.exp.*` is not imported by experiment code) invalidates nothing.

Entries are JSON files under ``.repro-cache/<experiment>/<key>.json``
(override the root with ``REPRO_CACHE_DIR``), carrying the job's
JSON-able value, captured stdout, and timings.  Writes are atomic
(tmp + rename) and only the parent process writes, so concurrent
readers never observe torn entries.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import os
import time
from importlib import util as importlib_util
from pathlib import Path
from typing import Optional

from ..ctrl.context import active_policy_spec
from ..faults.context import active_plan
from .pool import JobResult, JobSpec

__all__ = ["ResultCache", "code_fingerprint", "module_closure"]

CACHE_VERSION = 3
_DEFAULT_ROOT = ".repro-cache"

# Per-process memos: module -> (path, direct repro imports), path -> sha.
_module_files: dict[str, Optional[str]] = {}
_direct_imports: dict[str, tuple[str, ...]] = {}
_file_hashes: dict[tuple[str, float, int], str] = {}


def _module_file(name: str) -> Optional[str]:
    """Source file for a ``repro.*`` module, or None if unresolvable."""
    if name in _module_files:
        return _module_files[name]
    path = None
    try:
        spec = importlib_util.find_spec(name)
        if spec is not None and spec.origin and spec.origin.endswith(".py"):
            path = spec.origin
    except (ImportError, AttributeError, ValueError):
        path = None
    _module_files[name] = path
    return path


def _resolve_from(package_parts: list[str], level: int,
                  module: Optional[str]) -> Optional[str]:
    """Absolute module named by a ``from ... import`` statement."""
    if level == 0:
        return module
    if level > len(package_parts):
        return None
    base = package_parts[:len(package_parts) - (level - 1)]
    if module:
        base = base + module.split(".")
    return ".".join(base)


def _direct_repro_imports(module_name: str) -> tuple[str, ...]:
    """``repro.*`` modules imported anywhere in ``module_name``'s source."""
    cached = _direct_imports.get(module_name)
    if cached is not None:
        return cached
    path = _module_file(module_name)
    found: set[str] = set()
    if path is not None:
        if path.endswith("__init__.py"):
            package_parts = module_name.split(".")
        else:
            package_parts = module_name.split(".")[:-1]
        tree = ast.parse(Path(path).read_bytes())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        found.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_from(package_parts, node.level, node.module)
                if not base or not (base == "repro"
                                    or base.startswith("repro.")):
                    continue
                if _module_file(base) is not None:
                    found.add(base)
                # `from repro.pkg import sub` may name a submodule.
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    if _module_file(candidate) is not None:
                        found.add(candidate)
    result = tuple(sorted(found))
    _direct_imports[module_name] = result
    return result


def module_closure(module_name: str) -> list[str]:
    """Transitive ``repro.*`` import closure, including the root."""
    seen: set[str] = set()
    queue = [module_name]
    while queue:
        name = queue.pop()
        if name in seen or _module_file(name) is None:
            continue
        seen.add(name)
        queue.extend(_direct_repro_imports(name))
    return sorted(seen)


def _file_hash(path: str) -> str:
    stat = os.stat(path)
    memo_key = (path, stat.st_mtime, stat.st_size)
    cached = _file_hashes.get(memo_key)
    if cached is None:
        cached = hashlib.sha256(Path(path).read_bytes()).hexdigest()
        _file_hashes[memo_key] = cached
    return cached


def code_fingerprint(module_name: str) -> str:
    """Hash of the source of every module in ``module_name``'s closure."""
    digest = hashlib.sha256()
    for name in module_closure(module_name):
        path = _module_file(name)
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(_file_hash(path).encode())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """JSON result store addressed by job content keys."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", _DEFAULT_ROOT)
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key(self, spec: JobSpec) -> str:
        module_name = spec.fn.partition(":")[0]
        # The ambient fault plan changes every testbed a job builds, so
        # it is result-determining state exactly like params and seed.
        # An inactive (zero) plan behaves byte-identically to no plan
        # and keys the same way.
        plan = active_plan()
        if plan is not None and not plan.active:
            plan = None
        # Same contract for the control plane: an inert spec behaves
        # byte-identically to no spec and keys the same way.
        policy = active_policy_spec()
        if policy is not None and policy.inert:
            policy = None
        material = json.dumps(
            {
                "version": CACHE_VERSION,
                "experiment": spec.experiment,
                "fn": spec.fn,
                "params": spec.params,
                "seed": spec.seed,
                "fingerprint": code_fingerprint(module_name),
                "faults": None if plan is None else dataclasses.asdict(plan),
                "policy": None if policy is None else policy.as_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, spec: JobSpec) -> Path:
        return self.root / spec.experiment / f"{self.key(spec)}.json"

    def lookup(self, spec: JobSpec) -> Optional[JobResult]:
        """Return the cached result for ``spec``, or None on a miss."""
        path = self._path(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return JobResult(
            job_id=spec.job_id,
            experiment=spec.experiment,
            ok=True,
            value=payload["value"],
            stdout=payload.get("stdout", ""),
            wall_s=payload.get("wall_s", 0.0),
            cpu_s=payload.get("cpu_s", 0.0),
            cached=True,
        )

    def store(self, spec: JobSpec, result: JobResult) -> None:
        """Persist a successful result (atomic write, parent-only)."""
        path = self._path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "job_id": spec.job_id,
            "experiment": spec.experiment,
            "fn": spec.fn,
            "params": {name: value for name, value in spec.params},
            "seed": spec.seed,
            "value": result.value,
            "stdout": result.stdout,
            "wall_s": result.wall_s,
            "cpu_s": result.cpu_s,
            "created_unix": time.time(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
