"""Experiment orchestration: job registry, process pool, result cache.

``repro.experiments.run_all`` is a thin CLI over this package:

* :mod:`repro.exp.jobs`  — every experiment decomposed into pure,
  independently schedulable *jobs* (one per sweep point where the
  experiment is a sweep), plus the orchestrator that runs a selection
  and reassembles the paper-shaped tables;
* :mod:`repro.exp.pool`  — the ``multiprocessing`` fan-out with
  deterministic per-job seeding, crash isolation, and per-job timing;
* :mod:`repro.exp.cache` — the content-addressed result cache under
  ``.repro-cache/`` keyed by (experiment, params, seed, code
  fingerprint).
"""

from .cache import ResultCache
from .jobs import EXPERIMENT_SPECS, run_experiments
from .pool import JobResult, JobSpec, default_jobs, execute_job, run_jobs

__all__ = [
    "EXPERIMENT_SPECS",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "default_jobs",
    "execute_job",
    "run_experiments",
    "run_jobs",
]
