"""Process-pool job execution with crash isolation and timing.

A *job* is a pure function call: an importable callable plus primitive
keyword arguments, identified by a stable ``job_id``.  Jobs never share
state — every experiment point builds a fresh testbed from its
parameters and seed — so they can run in any order on any worker and
produce bit-identical results.

Workers return a structured :class:`JobResult` even when the job
raises: a crash in one sweep point must not kill the other 17
experiments.  Captured stdout rides along so monolithic experiments
(which print their own tables) replay byte-for-byte from cache or from
a worker.
"""

from __future__ import annotations

import dataclasses
import io
import multiprocessing
import os
import re
import sys
import time
import traceback
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "JobSpec",
    "JobResult",
    "default_jobs",
    "execute_job",
    "jsonable",
    "resolve",
    "run_jobs",
]


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` env var, else 1 (pure serial)."""
    value = os.environ.get("REPRO_JOBS", "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 1


def jsonable(value: Any) -> Any:
    """Recursively convert results to JSON-friendly data.

    Dataclass instances become field dicts, tuples become lists, and
    anything non-primitive falls back to ``repr``.  This is the shape
    stored in the result cache and emitted by ``run_all --json``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Default object reprs embed the instance address, which differs per
    # process; strip it so results compare equal across workers and runs.
    return re.sub(r" at 0x[0-9a-fA-F]+", "", repr(value))


def resolve(fn_path: str) -> Callable:
    """Import ``"package.module:callable"`` and return the callable."""
    module_name, _, attr = fn_path.partition(":")
    if not attr:
        raise ValueError(f"job fn must be 'module:callable', got {fn_path!r}")
    return getattr(import_module(module_name), attr)


@dataclass(frozen=True)
class JobSpec:
    """One schedulable unit of experiment work.

    ``params`` is a sorted tuple of (name, value) pairs so specs hash
    and canonicalise deterministically; values must be primitives (they
    cross the process boundary and enter the cache key).
    """

    job_id: str
    experiment: str
    fn: str
    params: tuple[tuple[str, Any], ...] = ()
    #: the seed baked into ``params`` (None when the callable's own
    #: deterministic defaults apply); recorded in the cache key.
    seed: Optional[int] = None
    #: monolithic experiment bodies print their own tables; point
    #: functions are silent and the parent renders.
    capture: bool = True

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    @staticmethod
    def make(job_id: str, experiment: str, fn: str,
             seed: Optional[int] = None, capture: bool = True,
             **params: Any) -> "JobSpec":
        return JobSpec(
            job_id=job_id,
            experiment=experiment,
            fn=fn,
            params=tuple(sorted(params.items())),
            seed=seed,
            capture=capture,
        )


@dataclass
class JobResult:
    """Outcome of one job: value (JSON-able), stdout, timing, status."""

    job_id: str
    experiment: str
    ok: bool
    value: Any = None
    stdout: str = ""
    error: str = ""
    wall_s: float = 0.0
    cpu_s: float = 0.0
    cached: bool = False


class _Tee(io.TextIOBase):
    """Capture writes while passing them through to the real stream."""

    def __init__(self, through):
        self._through = through
        self._buffer = io.StringIO()

    def write(self, text):
        self._through.write(text)
        self._buffer.write(text)
        return len(text)

    def flush(self):
        self._through.flush()

    def getvalue(self) -> str:
        return self._buffer.getvalue()


def execute_job(spec: JobSpec, tee: bool = False) -> JobResult:
    """Run one job in this process; never raises.

    Stdout emitted by the job body is captured (and, with ``tee``,
    still streamed live).  Exceptions become structured failures with
    the traceback in ``error``.
    """
    sink = _Tee(sys.stdout) if tee else io.StringIO()
    real_stdout = sys.stdout
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        sys.stdout = sink
        value = resolve(spec.fn)(**spec.kwargs)
        ok, payload, error = True, jsonable(value), ""
    except Exception:
        ok, payload, error = False, None, traceback.format_exc()
    finally:
        sys.stdout = real_stdout
    return JobResult(
        job_id=spec.job_id,
        experiment=spec.experiment,
        ok=ok,
        value=payload,
        stdout=sink.getvalue(),
        error=error,
        wall_s=time.perf_counter() - wall0,
        cpu_s=time.process_time() - cpu0,
    )


def run_jobs(
    specs: Iterable[JobSpec],
    jobs: int = 1,
    cache=None,
    tee: bool = False,
) -> dict[str, JobResult]:
    """Run jobs (cache-aware), return results keyed by ``job_id``.

    Cache hits are resolved in the parent; only misses reach the pool.
    With ``jobs <= 1`` everything runs in-process (``tee`` then streams
    monolithic job output live).  Results come back in spec order
    regardless of completion order, and the parent — never a worker —
    writes cache entries, so ``.repro-cache/`` sees a single writer.
    """
    specs = list(specs)
    results: dict[str, JobResult] = {}
    misses: list[JobSpec] = []
    for spec in specs:
        hit = cache.lookup(spec) if cache is not None else None
        if hit is not None:
            results[spec.job_id] = hit
        else:
            misses.append(spec)
    if misses:
        if jobs <= 1 or len(misses) == 1:
            fresh = [execute_job(spec, tee=tee and spec.capture)
                     for spec in misses]
        else:
            with multiprocessing.Pool(processes=min(jobs, len(misses))) as pool:
                fresh = pool.map(execute_job, misses, chunksize=1)
        for spec, result in zip(misses, fresh):
            results[spec.job_id] = result
            if cache is not None and result.ok:
                cache.store(spec, result)
    return {spec.job_id: results[spec.job_id] for spec in specs}
