"""The job registry: every experiment as independently schedulable jobs.

Monolithic experiments (a single ``run_*`` body that prints its own
tables) map to one job per printed section; sweep experiments map to
one job per sweep *point* — each (stack, rate) of the load sweep, each
(size, delivery mode) of the DMA crossover, each stack of the design
space — so a multi-core host can fan the whole artifact out, and the
cache can invalidate single points.

Every job is a pure function of its params + seed (fresh testbed per
point), so execution order and worker placement never change results.
``run_experiments`` reassembles point values into exactly the tables
the serial ``run_*`` functions print: the renderers are shared code,
so ``--jobs N`` output is byte-identical to the serial runner's.
"""

from __future__ import annotations

import sys
import time
from contextlib import redirect_stdout
from dataclasses import dataclass, field
from io import StringIO
from typing import Any, Callable, Optional

from ..experiments import crossover as _crossover
from ..experiments import dynamic_mix as _dynamic_mix
from ..experiments import e21_timeline as _timeline
from ..experiments import e22_control as _control
from ..experiments import e23_fleet as _fleet
from ..experiments import e24_tenancy as _tenancy
from ..experiments import e25_slo as _slo
from ..experiments import fault_sweep as _fault_sweep
from ..experiments import four_stacks as _four_stacks
from ..experiments import load_sweep as _load_sweep
from ..experiments import obs_attribution as _obs
from ..experiments import sensitivity as _sensitivity
from ..experiments import serverless as _serverless
from ..sim.rng import derive_seed
from .pool import JobResult, JobSpec, execute_job, jsonable, run_jobs

__all__ = ["ExperimentSpec", "EXPERIMENT_SPECS", "RunOutcome",
           "run_experiments"]

_EXP = "repro.experiments"

# Sweep axes mirror the serial runners' defaults exactly.
_MIX_COUNTS = (2, 8, 32)
_MIX_STACKS = ("linux", "bypass", "lauberhorn")
_CROSSOVER_SIZES = _crossover.DEFAULT_SIZES
_SWEEP_STACKS = ("linux", "bypass", "lauberhorn")
_SWEEP_RATES = (50e3, 150e3, 300e3, 600e3)
_SERVERLESS_STACKS = ("linux", "lauberhorn")
_SENSITIVITY_SWEEP = (125, 250, 350, 500, 700, 1000, 1400)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment: its jobs plus how to reassemble/render them."""

    name: str
    title: str
    build_jobs: Callable[[int], list[JobSpec]]
    #: points experiments only: values-in-job-order -> final value
    #: (printing the tables to stdout); monolithic experiments return
    #: their jobs' values directly and their stdout is replayed.
    assemble: Optional[Callable[[list[Any]], Any]] = None


def _mono(name: str, title: str, parts: list[tuple[str, str]]) -> ExperimentSpec:
    """A monolithic experiment: one stdout-printing job per section."""

    def build_jobs(root_seed: int) -> list[JobSpec]:
        return [
            JobSpec.make(f"{name}/{part}", name, f"{_EXP}.{fn}", capture=True)
            for part, fn in parts
        ]

    return ExperimentSpec(name=name, title=title, build_jobs=build_jobs)


def _point_seed(root_seed: int, name: str, job_id: str,
                default: int = 0) -> int:
    """Seed for a seed-accepting point job.

    Root seed 0 (the default) reproduces the serial runners' built-in
    seeds bit-for-bit; any other root derives an independent per-job
    seed, stable across workers and execution order.
    """
    return default if root_seed == 0 else derive_seed(root_seed, name, job_id)


def _seeded_spec(job_id: str, experiment: str, fn: str, seed: int,
                 **params: Any) -> JobSpec:
    """A point job whose function takes an explicit ``seed`` kwarg."""
    params["seed"] = seed
    return JobSpec(
        job_id=job_id,
        experiment=experiment,
        fn=fn,
        params=tuple(sorted(params.items())),
        seed=seed,
        capture=False,
    )


def _dynamic_mix_jobs(root_seed: int) -> list[JobSpec]:
    return [
        _seeded_spec(
            f"e4/{stack}@{count}", "e4",
            f"{_EXP}.dynamic_mix:measure_mix_point",
            _point_seed(root_seed, "e4", f"{stack}@{count}"),
            stack=stack, n_services=count,
        )
        for count in _MIX_COUNTS
        for stack in _MIX_STACKS
    ]


def _assemble_dynamic_mix(values: list[Any]) -> Any:
    results = [_dynamic_mix.MixResult(**v) for v in values]
    _dynamic_mix.render_dynamic_mix(results)
    return jsonable(results)


def _crossover_jobs(root_seed: int) -> list[JobSpec]:
    jobs = []
    for size in _CROSSOVER_SIZES:
        for mode, force_dma in (("line", False), ("dma", True)):
            jobs.append(JobSpec.make(
                f"e5/{mode}@{size}", "e5",
                f"{_EXP}.crossover:measure_rtt_for_size",
                capture=False,
                payload_bytes=size, force_dma=force_dma,
            ))
    return jobs


def _assemble_crossover(values: list[Any]) -> Any:
    points, cross = _crossover.assemble_crossover(
        _CROSSOVER_SIZES, values[0::2], values[1::2]
    )
    _crossover.render_crossover(points, cross)
    return jsonable((points, cross))


def _four_stacks_jobs(root_seed: int) -> list[JobSpec]:
    return [
        JobSpec.make(
            f"e11/{stack}", "e11", f"{_EXP}.four_stacks:measure_stack",
            capture=False, stack=stack,
        )
        for stack in _four_stacks.STACKS
    ]


def _assemble_four_stacks(values: list[Any]) -> Any:
    results = [_four_stacks.StackResult(**v) for v in values]
    _four_stacks.render_four_stacks(results)
    return jsonable(results)


def _load_sweep_jobs(root_seed: int) -> list[JobSpec]:
    return [
        JobSpec.make(
            f"e15/{stack}@{rate:.0f}", "e15",
            f"{_EXP}.load_sweep:measure_load_point",
            capture=False, stack=stack, rate_per_sec=rate,
        )
        for stack in _SWEEP_STACKS
        for rate in _SWEEP_RATES
    ]


def _assemble_load_sweep(values: list[Any]) -> Any:
    results = [_load_sweep.LoadPoint(**v) for v in values]
    _load_sweep.render_load_sweep(results)
    return jsonable(results)


def _serverless_jobs(root_seed: int) -> list[JobSpec]:
    return [
        _seeded_spec(
            f"e17/{stack}", "e17",
            f"{_EXP}.serverless:measure_serverless_stack",
            _point_seed(root_seed, "e17", stack),
            stack=stack,
        )
        for stack in _SERVERLESS_STACKS
    ]


def _assemble_serverless(values: list[Any]) -> Any:
    results = [_serverless.ServerlessResult(**v) for v in values]
    _serverless.render_serverless(results)
    return jsonable(results)


def _fault_sweep_jobs(root_seed: int) -> list[JobSpec]:
    return [
        _seeded_spec(
            f"e19/{stack}@{label}", "e19",
            f"{_EXP}.fault_sweep:measure_fault_point",
            _point_seed(root_seed, "e19", f"{stack}@{label}"),
            stack=stack, label=label, loss_rate=loss, stall_rate=stall,
        )
        for stack in _four_stacks.STACKS
        for (label, loss, stall) in _fault_sweep.FAULT_POINTS
    ]


def _assemble_fault_sweep(values: list[Any]) -> Any:
    results = [_fault_sweep.FaultPoint(**v) for v in values]
    _fault_sweep.render_fault_sweep(results)
    return jsonable(results)


def _sensitivity_jobs(root_seed: int) -> list[JobSpec]:
    jobs = [JobSpec.make(
        "e18/bypass", "e18", f"{_EXP}.sensitivity:bypass_baseline_rtt",
        capture=False,
    )]
    jobs += [
        JobSpec.make(
            f"e18/lauberhorn@{one_way}", "e18",
            f"{_EXP}.sensitivity:lauberhorn_rtt_at",
            capture=False, one_way_ns=float(one_way),
        )
        for one_way in _SENSITIVITY_SWEEP
    ]
    return jobs


def _assemble_sensitivity(values: list[Any]) -> Any:
    points, break_even = _sensitivity.assemble_sensitivity(
        _SENSITIVITY_SWEEP, values[1:], values[0]
    )
    _sensitivity.render_sensitivity(points, break_even)
    return jsonable((points, break_even))


def _obs_jobs(root_seed: int) -> list[JobSpec]:
    return [
        JobSpec.make(
            f"e20/{stack}", "e20",
            f"{_EXP}.obs_attribution:measure_obs_stack",
            capture=False, stack=stack,
        )
        for stack in _four_stacks.STACKS
    ]


def _assemble_obs(values: list[Any]) -> Any:
    results = [_obs.ObsResult(**v) for v in values]
    _obs.render_obs_attribution(results)
    payload = _obs.write_trace_artifact(results)
    print(f"\n[wrote {_obs.TRACE_ARTIFACT}: "
          f"{len(payload['traceEvents'])} trace events]")
    return jsonable(results)


def _timeline_jobs(root_seed: int) -> list[JobSpec]:
    return [
        _seeded_spec(
            f"e21/{stack}", "e21",
            f"{_EXP}.e21_timeline:measure_timeline_stack",
            _point_seed(root_seed, "e21", stack),
            stack=stack,
        )
        for stack in _four_stacks.STACKS
    ]


def _assemble_timeline(values: list[Any]) -> Any:
    results = [_timeline.TimelineResult(**v) for v in values]
    _timeline.render_timeline(results)
    payload = _timeline.write_timeline_artifact(results)
    _timeline.validate_timeline_payload(payload)
    print(f"\n[wrote {_timeline.TIMELINE_ARTIFACT}: "
          f"{len(payload['stacks'])} stacks]")
    return jsonable(results)


def _control_jobs(root_seed: int) -> list[JobSpec]:
    jobs = [
        _seeded_spec(
            f"e22/{stack}@{plan}@{policy}", "e22",
            f"{_EXP}.e22_control:measure_control_cell",
            _point_seed(root_seed, "e22", f"{stack}@{plan}@{policy}"),
            stack=stack, plan_label=plan, policy=policy,
        )
        for stack in _four_stacks.STACKS
        for plan in _control.FAULT_PLANS
        for policy in _control.POLICY_SPECS
    ]
    jobs.append(_seeded_spec(
        "e22/adaptive", "e22",
        f"{_EXP}.e22_control:measure_adaptive_mix",
        _point_seed(root_seed, "e22", "adaptive"),
    ))
    return jobs


def _assemble_control(values: list[Any]) -> Any:
    *cell_values, adaptive = values
    cells = [_control.ControlCell(**v) for v in cell_values]
    _control.render_control(cells, adaptive)
    payload = _control.write_control_artifact(cells, adaptive)
    _control.validate_control_payload(payload)
    print(f"\n[wrote {_control.CONTROL_ARTIFACT}: "
          f"{len(payload['cells'])} cells]")
    return jsonable({"cells": cells, "adaptive": adaptive})


def _fleet_jobs(root_seed: int) -> list[JobSpec]:
    return [
        _seeded_spec(
            f"e23/{section}@{label}", "e23",
            f"{_EXP}.e23_fleet:measure_fleet_cell",
            _point_seed(root_seed, "e23", f"{section}@{label}"),
            section=section, label=label,
        )
        for section in _fleet.SECTIONS
        for label in _fleet.cell_labels(section)
    ]


def _assemble_fleet(values: list[Any]) -> Any:
    cells = [_fleet.FleetCell(**v) for v in values]
    _fleet.render_fleet(cells)
    payload = _fleet.write_fleet_artifact(cells)
    _fleet.validate_fleet_payload(payload)
    print(f"[wrote {_fleet.FLEET_ARTIFACT}: {len(payload['cells'])} cells]")
    return jsonable(cells)


def _tenancy_jobs(root_seed: int) -> list[JobSpec]:
    fns = {"single": "measure_single_cell", "fleet": "measure_fleet_cell"}
    return [
        _seeded_spec(
            f"e24/{section}@{label}", "e24",
            f"{_EXP}.e24_tenancy:{fns[section]}",
            _point_seed(root_seed, "e24", f"{section}@{label}"),
            label=label,
        )
        for section in _tenancy.SECTIONS
        for label in _tenancy.cell_labels(section)
    ]


def _assemble_tenancy(values: list[Any]) -> Any:
    cells = [_tenancy.TenancyCell(**v) for v in values]
    _tenancy.render_tenancy(cells)
    payload = _tenancy.write_tenancy_artifact(cells)
    _tenancy.validate_tenancy_payload(payload)
    print(f"[wrote {_tenancy.TENANCY_ARTIFACT}: "
          f"{len(payload['cells'])} cells]")
    return jsonable(cells)


def _slo_jobs(root_seed: int) -> list[JobSpec]:
    fns = {"single": "measure_single_cell", "fleet": "measure_fleet_cell"}
    return [
        _seeded_spec(
            f"e25/{section}@{label}", "e25",
            f"{_EXP}.e25_slo:{fns[section]}",
            _point_seed(root_seed, "e25", f"{section}@{label}"),
            label=label,
        )
        for section in _slo.SECTIONS
        for label in _slo.cell_labels(section)
    ]


def _assemble_slo(values: list[Any]) -> Any:
    cells = [_slo.SloCell(**v) for v in values]
    _slo.render_slo(cells)
    payload = _slo.write_slo_artifact(cells)
    _slo.validate_slo_payload(payload)
    print(f"[wrote {_slo.SLO_ARTIFACT}: {len(payload['cells'])} cells]")
    return jsonable(cells)


def _points(name: str, title: str, build_jobs, assemble) -> ExperimentSpec:
    return ExperimentSpec(name=name, title=title, build_jobs=build_jobs,
                          assemble=assemble)


EXPERIMENT_SPECS: dict[str, ExperimentSpec] = {
    spec.name: spec for spec in [
        _mono("e1", "Figure 2 — 64 B round-trip latencies",
              [("main", "fig2_roundtrip:run_fig2")]),
        _mono("e2", "Section 2 — receive-path steps",
              [("main", "fig1_steps:run_fig1_steps")]),
        _mono("e3", "Figure 5 — dispatch comparison",
              [("main", "fig5_dispatch:run_fig5_dispatch")]),
        _points("e4", "Dynamic workload mix",
                _dynamic_mix_jobs, _assemble_dynamic_mix),
        _points("e5", "Section 6 — DMA crossover",
                _crossover_jobs, _assemble_crossover),
        _mono("e6", "Section 5.1 — Tryagain & energy",
              [("energy", "tryagain:run_tryagain_energy"),
               ("timeout", "tryagain:run_timeout_ablation")]),
        _mono("e7", "Section 6 — model checking",
              [("main", "model_check:run_model_check")]),
        _mono("e8", "Section 5.2 — sched-state push",
              [("main", "sched_state:run_sched_state")]),
        _mono("e9", "Section 6 — nested RPCs",
              [("main", "nested_rpc:run_nested_rpc")]),
        _mono("e10", "Figure 4 — protocol cost",
              [("main", "protocol_cost:run_protocol_cost")]),
        _points("e11", "Section 2 design space — four stacks",
                _four_stacks_jobs, _assemble_four_stacks),
        _mono("e12", "Ablations — deserialisation offload & crypto placement",
              [("deserialize", "ablation:run_deserialize_ablation"),
               ("crypto", "ablation:run_crypto_ablation")]),
        _mono("e13", "Section 6 — NIC telemetry breakdown",
              [("main", "telemetry_breakdown:run_telemetry_breakdown")]),
        _mono("e14", "Peak throughput & end-point scaling",
              [("throughput", "throughput:run_throughput"),
               ("scaling", "throughput:run_lauberhorn_scaling")]),
        _points("e15", "Latency vs offered load",
                _load_sweep_jobs, _assemble_load_sweep),
        _mono("e16", "Section 3 — the IOMMU tax",
              [("main", "iommu_tax:run_iommu_tax")]),
        _points("e17", "Serverless consolidation trace",
                _serverless_jobs, _assemble_serverless),
        _points("e18", "Sensitivity — coherent-link latency",
                _sensitivity_jobs, _assemble_sensitivity),
        _points("e19", "Fault sweep — invariants under injected faults",
                _fault_sweep_jobs, _assemble_fault_sweep),
        _points("e20", "Observability — span attribution & overhead",
                _obs_jobs, _assemble_obs),
        _points("e21", "Time-series telemetry, flight recorder & "
                       "tail forensics",
                _timeline_jobs, _assemble_timeline),
        _points("e22", "Adaptive control plane — policy tournaments & "
                       "epoch migration",
                _control_jobs, _assemble_control),
        _points("e23", "Rack-scale fleets — replica scaling, skew & "
                       "coherent-NIC placement",
                _fleet_jobs, _assemble_fleet),
        _points("e24", "Multi-tenant isolation — budgets, weighted-fair "
                       "demux & noisy neighbours",
                _tenancy_jobs, _assemble_tenancy),
        _points("e25", "Tenant SLOs — burn-rate alerts, budget ledgers & "
                       "flame attribution",
                _slo_jobs, _assemble_slo),
    ]
}


@dataclass
class RunOutcome:
    """Everything a ``run_all`` invocation produced."""

    values: dict[str, Any] = field(default_factory=dict)
    timings_s: dict[str, float] = field(default_factory=dict)
    job_results: list[JobResult] = field(default_factory=list)
    failed: bool = False


def _header(name: str, title: str) -> str:
    bar = "=" * 72
    return f"\n{bar}\n{name.upper()}: {title}\n{bar}"


def _finish(spec: ExperimentSpec, results: list[JobResult]):
    """(final value, table text still to print) for one experiment."""
    bad = [r for r in results if not r.ok]
    if bad:
        text = "".join(
            f"\nJOB FAILED: {r.job_id}\n{r.error}" for r in bad
        )
        value = {"error": [
            {"job_id": r.job_id, "error": r.error} for r in bad
        ]}
        return value, text
    if spec.assemble is None:
        values = [r.value for r in results]
        return (values[0] if len(values) == 1 else values), ""
    sink = StringIO()
    with redirect_stdout(sink):
        value = spec.assemble([r.value for r in results])
    return value, sink.getvalue()


def run_experiments(
    selected: list[str],
    jobs: int = 1,
    cache=None,
    root_seed: int = 0,
) -> RunOutcome:
    """Run a selection of experiments and print the paper artifact.

    ``jobs <= 1`` streams each experiment in order (monolithic bodies
    print live, exactly like the historical serial runner); ``jobs > 1``
    fans every job of every selected experiment over the pool at once,
    then prints the experiment blocks in order from captured output.
    """
    outcome = RunOutcome()
    job_lists = {
        name: EXPERIMENT_SPECS[name].build_jobs(root_seed)
        for name in selected
    }

    if jobs <= 1:
        for name in selected:
            spec = EXPERIMENT_SPECS[name]
            print(_header(name, spec.title))
            started = time.perf_counter()
            results = []
            for job in job_lists[name]:
                hit = cache.lookup(job) if cache is not None else None
                if hit is not None:
                    if hit.stdout:
                        sys.stdout.write(hit.stdout)
                    results.append(hit)
                    continue
                result = execute_job(job, tee=True)
                if cache is not None and result.ok:
                    cache.store(job, result)
                results.append(result)
            value, tail = _finish(spec, results)
            if tail:
                sys.stdout.write(tail)
            wall = time.perf_counter() - started
            _record(outcome, name, value, wall, results)
    else:
        flat = [job for name in selected for job in job_lists[name]]
        by_id = run_jobs(flat, jobs=jobs, cache=cache)
        for name in selected:
            spec = EXPERIMENT_SPECS[name]
            print(_header(name, spec.title))
            results = [by_id[job.job_id] for job in job_lists[name]]
            for result in results:
                if result.stdout:
                    sys.stdout.write(result.stdout)
            value, tail = _finish(spec, results)
            if tail:
                sys.stdout.write(tail)
            wall = sum(r.wall_s for r in results)
            _record(outcome, name, value, wall, results)
    return outcome


def _record(outcome: RunOutcome, name: str, value: Any, wall: float,
            results: list[JobResult]) -> None:
    outcome.values[name] = value
    outcome.timings_s[name] = wall
    outcome.job_results.extend(results)
    if any(not r.ok for r in results):
        outcome.failed = True
    print(f"\n[{name} completed in {wall:.1f} s wall clock]")
