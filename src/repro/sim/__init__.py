"""Discrete-event simulation substrate (S1 in DESIGN.md)."""

from .clock import GHZ, MS, NS, SEC, US, Frequency, bytes_time_ns
from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .profile import EngineProfile, ProfileSnapshot, attach_profile
from .resources import Gate, PriorityStore, Resource, Store
from .rng import RngRegistry
from .trace import SpanTimer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "EngineProfile",
    "Event",
    "Frequency",
    "GHZ",
    "Gate",
    "ProfileSnapshot",
    "Interrupt",
    "MS",
    "NS",
    "PriorityStore",
    "Process",
    "Resource",
    "RngRegistry",
    "SEC",
    "SimulationError",
    "Simulator",
    "SpanTimer",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "US",
    "attach_profile",
    "bytes_time_ns",
]
