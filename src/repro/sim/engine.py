"""Discrete-event simulation engine.

This module is the foundation of the whole reproduction: every hardware
and software component (cores, caches, interconnects, NICs, the kernel)
is expressed as a set of simulation processes exchanging events on a
shared virtual clock.

The design follows the classic generator-based style (as popularised by
SimPy) but is implemented from scratch so the reproduction has no
third-party runtime dependencies:

* :class:`Simulator` owns the event heap and the virtual clock.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` wraps a Python generator; each ``yield`` suspends the
  process until the yielded event fires.
* :class:`Timeout` is an event that fires after a fixed delay.

Time is measured in **nanoseconds** (floats).  Helper constants for
other units live in :mod:`repro.sim.clock`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation API (e.g. double-trigger)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary payload describing why
    the interrupt happened (for example, an IPI descriptor in the OS
    model).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities for events scheduled at the same timestamp.  Urgent events
# (process resumptions) run before normal events so that chains of
# zero-delay wake-ups complete before the clock is allowed to advance.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and is *processed* once the simulator has
    run its callbacks.  Processes wait on events by ``yield``-ing them.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception) attached."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been dispatched."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        if not self._ok:
            raise SimulationError("event failed; check .exception")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._ok = False
        self._exception = exc
        self.sim._enqueue(self.sim.now, priority, self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event fires.

        If the event has already been processed the callback runs
        immediately, which lets late waiters join without racing.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at t={self.sim.now}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self.delay = delay
        sim._enqueue(sim.now + delay, NORMAL, self)


class _Initialize(Event):
    """Internal event used to start a process at creation time."""

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._enqueue(sim.now, URGENT, self)


class Process(Event):
    """A simulation process wrapping a generator.

    The process object doubles as an event that fires when the generator
    terminates; its value is the generator's return value.  Waiting on a
    process therefore means "wait until it finishes".
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The interrupt is delivered asynchronously (as an urgent event at
        the current time) so the caller's own execution is not nested
        inside the target's frame.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        event = Event(self.sim)
        event._ok = False
        event._exception = exc
        event._defused = True  # handled by the interrupted process
        event.callbacks.append(self._resume)
        self.sim._enqueue(self.sim.now, URGENT, event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if not self.is_alive:
            # The process finished before a queued interrupt arrived;
            # drop the stale resumption.
            return
        self.sim._active_process = self
        # Detach from whatever we were officially waiting on: an
        # interrupt may arrive while a different event is outstanding.
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._exception)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value, priority=URGENT)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc, priority=URGENT)
            return
        self.sim._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._fired = 0
        for event in self.events:
            if event.sim is not self.sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        # ``processed`` rather than ``triggered``: Timeout pre-sets its
        # value at construction, so only dispatch marks a real firing.
        return {e: e._value for e in self.events if e.processed and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._exception)
            return
        self._fired += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any one of the given events fires."""

    def _satisfied(self) -> bool:
        return self._fired >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    def _satisfied(self) -> bool:
        return self._fired == len(self.events)


class Simulator:
    """The event loop: a virtual clock plus a priority queue of events."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None

    # -- scheduling ---------------------------------------------------

    def _enqueue(self, when: float, priority: int, event: Event) -> None:
        heapq.heappush(self._heap, (when, priority, next(self._counter), event))

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new simulation process from ``generator``."""
        return Process(self, generator, name=name)

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- execution ----------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # An unhandled failure with nobody waiting would silently
            # disappear; surface it instead.
            raise event._exception

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a timestamp, or
        an :class:`Event` (run until the event fires; returns its
        value).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._heap:
                    raise SimulationError(
                        "event queue empty before the awaited event fired"
                    )
                self.step()
            if stop_event._ok:
                return stop_event._value
            raise stop_event._exception
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise ValueError(f"until={horizon} is in the past (now={self.now})")
            while self._heap and self.peek() <= horizon:
                self.step()
            self.now = horizon
            return None
        while self._heap:
            self.step()
        return None
